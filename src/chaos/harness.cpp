#include "src/chaos/harness.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>

#include "src/chunk/codec.hpp"
#include "src/common/resource_governor.hpp"
#include "src/common/rng.hpp"
#include "src/netsim/multipath.hpp"
#include "src/netsim/router.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/spans.hpp"
#include "src/obs/timeseries.hpp"
#include "src/obs/trace.hpp"
#include "src/transport/demux.hpp"
#include "src/transport/sender.hpp"
#include "src/transport/signalling.hpp"

namespace chunknet {

namespace {

/// Deterministic stream content, independent of the run's Rng stream so
/// the oracles can recompute any byte from (seed, index) alone.
std::uint8_t stream_byte(std::uint64_t seed, std::size_t i) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (i + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return static_cast<std::uint8_t>(z >> 56);
}

LinkConfig to_link_config(const ChaosHop& h, ObsContext* obs,
                          std::uint16_t site) {
  LinkConfig cfg;
  cfg.rate_bps = h.rate_bps;
  cfg.prop_delay = h.prop_delay;
  cfg.mtu = h.mtu;
  cfg.loss_rate = h.loss_rate;
  cfg.dup_rate = h.dup_rate;
  cfg.jitter = h.jitter;
  cfg.lanes = h.lanes;
  cfg.lane_skew = h.lane_skew;
  cfg.route_flap_interval = h.route_flap_interval;
  cfg.obs = obs;
  cfg.obs_site = site;
  return cfg;
}

RelayFn make_relay(const ChaosHop& h, Rng& rng) {
  switch (h.relay) {
    case ChaosRelayKind::kTransparent: return transparent_relay();
    case ChaosRelayKind::kRepack: return chunk_relay(RepackPolicy::kRepack);
    case ChaosRelayKind::kReassembleRelay:
      return chunk_relay(RepackPolicy::kReassemble);
    case ChaosRelayKind::kRewriting: {
      HeaderRewriteConfig cfg;
      cfg.rewrite_rate = h.rewrite_rate;
      cfg.field = h.rewrite_field;
      return header_rewriting_relay(cfg, rng);
    }
  }
  return transparent_relay();
}

std::string fmt(const char* f, std::uint64_t a) {
  char buf[160];
  std::snprintf(buf, sizeof buf, f, static_cast<unsigned long long>(a));
  return buf;
}

std::string fmt(const char* f, std::uint64_t a, std::uint64_t b) {
  char buf[160];
  std::snprintf(buf, sizeof buf, f, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

std::string fmt(const char* f, std::uint64_t a, std::uint64_t b,
                const char* c) {
  char buf[256];
  std::snprintf(buf, sizeof buf, f, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b), c);
  return buf;
}

ChaosResult run_chaos_overload(const ChaosScenario& sc,
                               ChaosCapture* capture);

/// Flight-recorder instrumentation for one run: owns the rings and the
/// sampler, wires them into the shared ObsContext, and serializes the
/// bundle artefacts at the end. Inert when no capture was requested.
struct CaptureRig {
  std::unique_ptr<ChunkTracer> tracer;
  std::unique_ptr<SpanRecorder> spans;
  std::unique_ptr<TimeSeriesSampler> sampler;

  void arm(const ChaosCapture& cap, ObsContext& obs,
           const MetricsRegistry& reg, const ChaosScenario& sc,
           Simulator& sim) {
    tracer = std::make_unique<ChunkTracer>(cap.trace_capacity);
    spans = std::make_unique<SpanRecorder>(cap.span_capacity);
    obs.tracer = tracer.get();
    obs.spans = spans.get();
    TimeSeriesConfig ts;
    ts.interval = cap.sample_interval;
    sampler = std::make_unique<TimeSeriesSampler>(reg, ts);
    // Tracked metrics resolve lazily, so names that never materialize
    // in this run (governor/flow on the single path) just read 0.
    const std::string p =
        std::string("receiver.") + to_string(sc.mode) + ".";
    sampler->track_counter(p + "data_chunks");
    sampler->track_counter(p + "chunks_placed");
    sampler->track_counter(p + "tpdus_accepted");
    sampler->track_counter(p + "tpdus_rejected");
    sampler->track_counter(p + "dropped_unplaced_bytes");
    sampler->track_gauge(p + "held_bytes");
    sampler->track_quantile(p + "delivery_latency_ns", 50.0);
    sampler->track_counter("sender.retransmissions");
    sampler->track_counter("sender.gave_up");
    sampler->track_counter("sender.tpdus_acked");
    sampler->track_counter("mpath.failovers");
    sampler->track_counter("mpath.failbacks");
    sampler->track_gauge("governor.charged_bytes");
    sampler->track_counter("governor.sheds");
    sampler->track_counter("flow.grants_sent");
    attach_sampler(sim, *sampler);
  }

  void finish(ChaosCapture& cap, Simulator& sim,
              const MetricsRegistry& reg) {
    // Final row AFTER quiescence cleanup: the bundle's last sample
    // agrees exactly with the registry snapshot beside it.
    sampler->sample(sim.now());
    cap.trace_json = trace_to_json(*tracer);
    cap.timeseries_json = sampler->to_json();
    cap.chrome_json = spans_to_chrome_json(*spans, sampler.get());
    cap.metrics_json = metrics_to_json(reg);
  }
};

}  // namespace

ChaosResult run_chaos(const ChaosScenario& sc) {
  return run_chaos(sc, nullptr);
}

ChaosResult run_chaos(const ChaosScenario& sc, ChaosCapture* capture) {
  if (sc.overloaded()) return run_chaos_overload(sc, capture);
  ChaosResult res;
  Simulator sim;
  // The run's randomness is a different stream than the generator's, so
  // scenario knobs and link noise stay decoupled.
  Rng rng(sc.seed ^ 0xC4A05C4A05ULL);
  MetricsRegistry reg;
  ObsContext obs{&reg, nullptr};
  CaptureRig rig;
  if (capture != nullptr) rig.arm(*capture, obs, reg, sc, sim);

  const std::size_t nbytes = sc.stream_bytes();
  std::vector<std::uint8_t> stream(nbytes);
  for (std::size_t i = 0; i < nbytes; ++i) stream[i] = stream_byte(sc.seed, i);

  // ---- receiver
  std::vector<TpduOutcome> outcomes;
  ReceiverConfig rc;
  rc.connection_id = 7;
  rc.element_size = sc.element_size;
  rc.first_conn_sn = sc.first_conn_sn;
  rc.app_buffer_bytes = nbytes;
  rc.mode = sc.mode;
  rc.max_held_bytes = sc.max_held_bytes;
  rc.max_open_tpdus = sc.max_open_tpdus;
  rc.gap_nak_delay = sc.gap_nak_delay;
  rc.max_gap_naks = sc.max_gap_naks;
  rc.obs = &obs;
  rc.on_tpdu = [&outcomes](const TpduOutcome& o) { outcomes.push_back(o); };

  // ---- forward path, built back-to-front: the last hop delivers to
  // the receiver; each earlier hop feeds a router applying that hop's
  // relay; the fault injector sits right after the first hop.
  const std::size_t nh = sc.hops.size();
  std::vector<std::unique_ptr<Link>> links(nh);
  std::vector<std::unique_ptr<Router>> routers;

  // The reverse (ACK) link is wired up after the sender exists; the
  // control lambda dereferences it at call time, never at capture time.
  std::unique_ptr<Link> reverse;

  rc.send_control = [&sim, &reverse](Chunk ack) {
    auto pkt = encode_packet(std::vector<Chunk>{std::move(ack)}, 1500);
    SimPacket sp;
    sp.bytes = std::move(pkt);
    sp.id = sim.next_packet_id();
    sp.created_at = sim.now();
    reverse->send(std::move(sp));
  };
  auto receiver =
      std::make_unique<ChunkTransportReceiver>(sim, std::move(rc));

  PacketSink* downstream = receiver.get();
  for (std::size_t i = nh; i-- > 1;) {
    links[i] = std::make_unique<Link>(
        sim, to_link_config(sc.hops[i], &obs, static_cast<std::uint16_t>(i)),
        *downstream, rng);
    routers.push_back(std::make_unique<Router>(
        sim, make_relay(sc.hops[i], rng), *links[i], &obs,
        static_cast<std::uint16_t>(i)));
    downstream = routers.back().get();
  }

  FaultConfig fc;
  fc.gilbert_elliott = GilbertElliottConfig::with_mean_loss(
      sc.fault_mean_loss, sc.fault_mean_burst);
  fc.payload_flip_rate = sc.payload_flip_rate;
  fc.header_flip_rate = sc.header_flip_rate;
  fc.blackout_interval = sc.blackout_interval;
  fc.blackout_duration = sc.blackout_duration;
  fc.obs = &obs;
  FaultInjector injector(sim, fc, *downstream, rng);

  // Hop 0 is either one link or a multipath plane spraying across
  // mp_paths skewed copies of it (aggregate rate preserved), feeding
  // the same fault injector either way.
  std::unique_ptr<MultipathScheduler> mpath;
  if (sc.multipath()) {
    MultipathConfig mc;
    mc.mode = static_cast<SprayMode>(sc.mp_mode);
    mc.obs = &obs;
    std::vector<MultipathPathConfig> mpc(sc.mp_paths);
    for (std::uint32_t i = 0; i < sc.mp_paths; ++i) {
      mpc[i].link = to_link_config(sc.hops[0], nullptr, 0);
      mpc[i].link.rate_bps /= sc.mp_paths;
      mpc[i].link.prop_delay += i * sc.mp_skew;
      if (sc.mp_loss > 0.0) {
        mpc[i].faults =
            GilbertElliottConfig::with_mean_loss(sc.mp_loss, 4.0);
      }
    }
    mpath = std::make_unique<MultipathScheduler>(sim, mc, std::move(mpc),
                                                 injector, rng);
    if (sc.mp_kill_at > 0) {
      MultipathScheduler* mp = mpath.get();
      const std::size_t victim = sc.mp_kill_path % sc.mp_paths;
      sim.schedule_at(sc.mp_kill_at,
                      [mp, victim] { mp->kill_path(victim); });
      if (sc.mp_revive_at > sc.mp_kill_at) {
        sim.schedule_at(sc.mp_revive_at,
                        [mp, victim] { mp->revive_path(victim); });
      }
    }
  } else {
    links[0] = std::make_unique<Link>(
        sim, to_link_config(sc.hops[0], &obs, 0), injector, rng);
  }

  // ---- sender
  SenderConfig sd;
  sd.framer.connection_id = 7;
  sd.framer.element_size = sc.element_size;
  sd.framer.tpdu_elements = sc.tpdu_elements;
  sd.framer.xpdu_elements = sc.xpdu_elements;
  sd.framer.max_chunk_elements = sc.max_chunk_elements;
  sd.framer.first_conn_sn = sc.first_conn_sn;
  sd.mtu = sc.hops[0].mtu;
  sd.max_retransmits = sc.max_retransmits;
  sd.retransmit_timeout = sc.retransmit_timeout;
  sd.rto.adaptive = sc.adaptive_rto;
  sd.selective_retransmit = sc.selective_retransmit;
  sd.obs = &obs;
  sd.send_packet = [&sim, &links, &mpath](std::vector<std::uint8_t> bytes) {
    SimPacket sp;
    sp.bytes = std::move(bytes);
    sp.id = sim.next_packet_id();
    sp.created_at = sim.now();
    if (mpath != nullptr) {
      mpath->send(std::move(sp));
    } else {
      links[0]->send(std::move(sp));
    }
  };
  auto sender = std::make_unique<ChunkTransportSender>(sim, std::move(sd));

  LinkConfig rev_cfg;
  rev_cfg.prop_delay = sc.hops[0].prop_delay;
  rev_cfg.loss_rate = sc.ack_loss_rate;
  reverse = std::make_unique<Link>(sim, rev_cfg, *sender, rng);

  // ---- run to quiescence under the watchdog
  if (std::getenv("CHUNKNET_DEBUG_SOAK") != nullptr) {
    auto probe = std::make_shared<std::function<void()>>();
    *probe = [&sim, &sender, &receiver, probe]() {
      const auto& ss = sender->stats();
      const auto& rs = receiver->stats();
      std::fprintf(stderr,
                   "t=%.3fs retx=%llu sel_elems=%llu naks_rx=%llu "
                   "held=%llu reorder=%zu unfinished=%zu acks_resent=%llu\n",
                   static_cast<double>(sim.now()) / 1e9,
                   static_cast<unsigned long long>(ss.retransmissions),
                   static_cast<unsigned long long>(ss.selective_retx_elements),
                   static_cast<unsigned long long>(ss.naks),
                   static_cast<unsigned long long>(rs.held_bytes_now),
                   receiver->reorder_queue_chunks(),
                   receiver->unfinished_tpdus(),
                   static_cast<unsigned long long>(rs.acks_resent));
      sim.schedule_in(100 * kMillisecond, *probe);
    };
    sim.schedule_in(100 * kMillisecond, *probe);
  }
  sender->send_stream(stream);
  sim.run(sc.watchdog);
  res.sim_end = sim.now();

  const auto& ss = sender->stats();
  const auto gave_up = sender->gave_up_tpdus();
  res.tpdus_gave_up = ss.gave_up;
  res.retransmissions = ss.retransmissions;

  // ---- oracle 4: no livelock / no retransmit storm
  if (sim.pending()) {
    res.fail("oracle-4: watchdog expired with events still pending "
             "(livelock)");
  }
  if (!sender->finished()) {
    res.fail("oracle-4: sender neither delivered nor abandoned every "
             "TPDU at quiescence");
  }
  const std::uint64_t retx_budget =
      ss.tpdus_sent * (static_cast<std::uint64_t>(sc.max_retransmits) + 1);
  if (ss.retransmissions > retx_budget) {
    res.fail(fmt("oracle-4: %llu retransmissions exceed the retry budget "
                 "%llu (retransmit storm)",
                 ss.retransmissions, retx_budget));
  }

  // ---- quiescence cleanup: the sender is done, so no unfinished
  // receiver TPDU can ever complete. First abort what the sender
  // abandoned, then — in scenarios whose faults can mint phantom TPDU
  // ids (header corruption) or resurrect state past an evicted
  // tombstone (duplication, open-cap eviction) — whatever garbage
  // remains. In strict scenarios nothing may remain.
  for (std::uint32_t id : gave_up) receiver->abort_tpdu(id);

  // Payload flips count as header corruption here: the flip region is
  // everything past the envelope + FIRST chunk header, so a flip can
  // land in a later chunk's header and mint a phantom TPDU id whose
  // context never completes (production bounds that with eviction caps,
  // disabled in strict scenarios).
  bool strict_leak = !sc.corrupts_headers() && sc.payload_flip_rate == 0.0 &&
                     sc.max_open_tpdus == 0;
  for (const ChaosHop& h : sc.hops) {
    if (h.dup_rate > 0.0) strict_leak = false;
  }
  const auto leftovers = receiver->unfinished_tpdu_ids();
  if (strict_leak && !leftovers.empty()) {
    std::string ids;
    for (std::uint32_t id : leftovers) ids += fmt(" %llu", id);
    res.fail(fmt("oracle-3: %llu unfinished TPDU contexts remain after "
                 "aborting the %llu given-up TPDUs (ids:%s)",
                 leftovers.size(), gave_up.size(), ids.c_str()));
  }
  for (std::uint32_t id : leftovers) receiver->abort_tpdu(id);

  const auto& rs = receiver->stats();
  res.tpdus_accepted = rs.tpdus_accepted;
  res.tpdus_rejected = rs.tpdus_rejected;
  res.data_chunks = rs.data_chunks;
  res.acks_resent = rs.acks_resent;

  // ---- oracle 3: no held state after cleanup
  if (rs.held_bytes_now != 0) {
    res.fail(fmt("oracle-3: %llu bytes still held after quiescence cleanup",
                 rs.held_bytes_now));
  }
  if (receiver->reorder_queue_chunks() != 0) {
    res.fail(fmt("oracle-3: %llu chunks still queued for reorder after "
                 "quiescence cleanup",
                 receiver->reorder_queue_chunks()));
  }
  if (receiver->unfinished_tpdus() != 0) {
    res.fail(fmt("oracle-3: %llu unfinished TPDU contexts survived abort",
                 receiver->unfinished_tpdus()));
  }

  // ---- oracle 2: conservation. Every data chunk the receiver triaged
  // has exactly one disposition; with zero held after cleanup the
  // balance must close exactly.
  const std::uint64_t dispositions =
      rs.framing_error_chunks + rs.duplicate_chunks + rs.overlap_chunks +
      rs.chunks_placed + rs.oob_chunks + rs.dropped_unplaced_chunks;
  if (rs.data_chunks != dispositions) {
    res.fail(fmt("oracle-2: %llu data chunks vs %llu dispositions — the "
                 "conservation balance does not close",
                 rs.data_chunks, dispositions));
  }
  const auto& fs = injector.stats();
  if (fs.offered !=
      fs.delivered + fs.dropped_loss + fs.dropped_blackout) {
    res.fail(fmt("oracle-2: fault injector offered %llu != delivered + "
                 "dropped %llu",
                 fs.offered,
                 fs.delivered + fs.dropped_loss + fs.dropped_blackout));
  }
  if (ss.tpdus_sent != ss.tpdus_acked + ss.gave_up) {
    res.fail(fmt("oracle-2: sender sent %llu TPDUs but acked+gave_up is "
                 "%llu",
                 ss.tpdus_sent, ss.tpdus_acked + ss.gave_up));
  }
  // Cross-check the PR 1 metrics registry against the struct counters:
  // both views of the run must agree exactly.
  const std::string p = std::string("receiver.") + to_string(sc.mode) + ".";
  const struct {
    const char* name;
    std::uint64_t expect;
  } reg_checks[] = {
      {"data_chunks", rs.data_chunks},
      {"chunks_placed", rs.chunks_placed},
      {"dropped_unplaced_chunks", rs.dropped_unplaced_chunks},
      {"dropped_unplaced_bytes", rs.dropped_unplaced_bytes},
      {"duplicate_chunks", rs.duplicate_chunks},
      {"tpdus_accepted", rs.tpdus_accepted},
      {"tpdus_rejected", rs.tpdus_rejected},
      {"acks_resent", rs.acks_resent},
  };
  for (const auto& c : reg_checks) {
    const std::uint64_t v = reg.counter(p + c.name).value();
    if (v != c.expect) {
      res.fail(fmt((std::string("oracle-2: registry ") + p + c.name +
                    " = %llu but receiver stats say %llu")
                       .c_str(),
                   v, c.expect));
    }
  }
  if (reg.counter("sender.gave_up").value() != ss.gave_up) {
    res.fail(fmt("oracle-2: registry sender.gave_up %llu != stats %llu",
                 reg.counter("sender.gave_up").value(), ss.gave_up));
  }
  if (sc.adaptive_rto &&
      reg.counter("sender.rto_backoffs").value() != ss.rto_backoffs) {
    res.fail(fmt("oracle-2: registry sender.rto_backoffs %llu != stats "
                 "%llu",
                 reg.counter("sender.rto_backoffs").value(),
                 ss.rto_backoffs));
  }

  // ---- oracle 1: truthful delivery. The sender reports every TPDU it
  // did not give up on as delivered; each such TPDU must have been
  // accepted by the receiver with exactly the transmitted bytes in
  // application memory.
  std::set<std::uint32_t> accepted_ids;
  for (const TpduOutcome& o : outcomes) {
    if (o.verdict == TpduVerdict::kAccepted) accepted_ids.insert(o.tpdu_id);
  }
  const std::set<std::uint32_t> gave_up_ids(gave_up.begin(), gave_up.end());
  const std::uint32_t tpdu_count =
      (sc.stream_elements + sc.tpdu_elements - 1) / sc.tpdu_elements;
  const auto app = receiver->app_data();
  for (std::uint32_t k = 0; k < tpdu_count; ++k) {
    const std::uint32_t id = 1 + k;  // frame_stream's first_tpdu_id
    if (gave_up_ids.count(id) != 0) continue;  // reported undelivered
    if (accepted_ids.count(id) == 0) {
      res.fail(fmt("oracle-1: TPDU %llu was positively acked but the "
                   "receiver never reported it accepted",
                   id));
      continue;
    }
    const std::size_t lo =
        static_cast<std::size_t>(k) * sc.tpdu_elements * sc.element_size;
    const std::size_t hi =
        std::min(nbytes, lo + static_cast<std::size_t>(sc.tpdu_elements) *
                                  sc.element_size);
    for (std::size_t i = lo; i < hi; ++i) {
      if (app[i] != stream[i]) {
        res.fail(fmt("oracle-1: TPDU %llu reported delivered but byte %llu "
                     "differs from the transmitted stream",
                     id, i));
        break;
      }
    }
  }
  if (gave_up.empty() && sender->all_acked()) {
    if (!receiver->stream_complete(sc.stream_elements)) {
      res.fail("oracle-1: every TPDU acked yet the element coverage map "
               "reports the stream incomplete");
    }
  }

  // ---- oracle 5: invariant soundness. Without any corruption source,
  // arbitrary re-enveloping (splits, merges, repacking, disorder,
  // loss-induced retransmission) must never produce a rejected TPDU or
  // a NAK: WSC-2 over the fragmentation-invariant layout plus the SN
  // consistency checks are exact under Appendix C/D transforms.
  if (!sc.corrupts_anything()) {
    if (rs.tpdus_rejected != 0) {
      res.fail(fmt("oracle-5: %llu TPDUs rejected in a corruption-free "
                   "scenario (false reject across re-enveloping)",
                   rs.tpdus_rejected));
    }
    if (ss.naks != 0) {
      res.fail(fmt("oracle-5: %llu NAKs in a corruption-free scenario",
                   ss.naks));
    }
  }

  // ---- oracle 7: no stranded packets on a dead path. Every packet
  // the spray plane transmitted is accounted as delivered or as loss
  // evidence (dead-path drops included), nothing is still tracked in
  // flight at quiescence, a killed path never carried traffic while a
  // live one existed, and the kill itself surfaced as a failover. The
  // registry's per-path counters must agree with the scheduler.
  if (mpath != nullptr) {
    const auto& ms = mpath->stats();
    res.mp_failovers = ms.failovers;
    res.mp_failbacks = ms.failbacks;
    if (mpath->inflight() != 0) {
      res.fail(fmt("oracle-7: %llu packets still tracked in flight on "
                   "the multipath plane after quiescence",
                   mpath->inflight()));
    }
    std::uint64_t sprayed_sum = 0;
    for (std::size_t i = 0; i < mpath->path_count(); ++i) {
      const auto& ps = mpath->path_stats(i);
      sprayed_sum += ps.tx_packets;
      res.mp_lost += ps.lost;
      if (ps.tx_packets != ps.delivered + ps.lost) {
        res.fail(fmt((std::string("oracle-7: path ") + std::to_string(i) +
                      " conservation does not close: %llu tx != %llu "
                      "delivered+lost")
                         .c_str(),
                     ps.tx_packets, ps.delivered + ps.lost));
      }
      const std::string mp =
          "mpath.path" + std::to_string(i) + ".tx_packets";
      if (reg.counter(mp).value() != ps.tx_packets) {
        res.fail(fmt((std::string("oracle-7: registry ") + mp +
                      " = %llu but scheduler stats say %llu")
                         .c_str(),
                     reg.counter(mp).value(), ps.tx_packets));
      }
    }
    if (sprayed_sum != ms.sprayed) {
      res.fail(fmt("oracle-7: %llu sprayed packets but per-path tx sums "
                   "to %llu",
                   ms.sprayed, sprayed_sum));
    }
    if (ms.killed_path_sends != 0) {
      res.fail(fmt("oracle-7: %llu packets were routed onto a killed "
                   "path while a live path existed",
                   ms.killed_path_sends));
    }
    if (sc.mp_kill_at > 0 && ms.failovers == 0) {
      res.fail("oracle-7: a path was killed mid-run but no failover was "
               "ever recorded");
    }
    if (reg.counter("mpath.failovers").value() != ms.failovers) {
      res.fail(fmt("oracle-7: registry mpath.failovers %llu != stats %llu",
                   reg.counter("mpath.failovers").value(), ms.failovers));
    }
  }

  if (capture != nullptr) rig.finish(*capture, sim, reg);
  return res;
}

// ------------------------------------------------------- overload path

namespace {

/// Everything owned per connection on the overload path. The forward
/// path (links, routers, fault injector, demultiplexer) is shared; the
/// reverse (ACK/credit) link is private per connection.
struct OverloadConn {
  std::uint32_t id{0};
  std::vector<std::uint8_t> stream;
  std::vector<TpduOutcome> outcomes;
  std::unique_ptr<ChunkTransportReceiver> receiver;
  std::unique_ptr<ChunkTransportSender> sender;
  std::unique_ptr<Link> reverse;
};

/// Multi-connection contention run: `sc.connections` senders share the
/// forward path into one demultiplexer; receivers charge held state to
/// a common ResourceGovernor; credit flow control (when enabled) turns
/// overload into sender-side queueing. Evaluates oracles 1–5 per
/// connection / in aggregate, plus the overload oracle 6.
ChaosResult run_chaos_overload(const ChaosScenario& sc,
                               ChaosCapture* capture) {
  ChaosResult res;
  Simulator sim;
  Rng rng(sc.seed ^ 0xC4A05C4A05ULL);
  MetricsRegistry reg;
  ObsContext obs{&reg, nullptr};
  CaptureRig rig;
  if (capture != nullptr) rig.arm(*capture, obs, reg, sc, sim);

  const std::uint32_t nconn = std::max<std::uint32_t>(1, sc.connections);
  const std::size_t nbytes = sc.stream_bytes();

  std::unique_ptr<ResourceGovernor> gov;
  if (sc.governor_budget != 0) {
    GovernorConfig gc;
    gc.hard_watermark_bytes = sc.governor_budget;
    gc.soft_watermark_bytes = sc.governor_budget * 3 / 4;
    gc.policy = static_cast<ShedPolicy>(sc.governor_policy);
    gc.obs = &obs;
    gc.now = [&sim] { return static_cast<std::uint64_t>(sim.now()); };
    gov = std::make_unique<ResourceGovernor>(gc);
  }

  // Sharded connection table (4 shards here: enough to spread the
  // connection ids across shards every run without dwarfing the small
  // connection counts). Churn runs additionally get the timer wheel so
  // remembered refusals age out on their TTL mid-run.
  const std::uint32_t churn_n = sc.churn_connections;
  const SimTime churn_step =
      sc.churn_interval > 0 ? sc.churn_interval : kMillisecond;
  SimTimerWheel wheel(sim);
  DemuxConfig dcfg;
  dcfg.shards = 4;
  if (churn_n > 0) {
    dcfg.timers = &wheel;
    dcfg.refused_ttl =
        std::max<SimTime>(40 * churn_step, 100 * kMillisecond);
  }
  ChunkDemultiplexer demux(dcfg);
  demux.set_obs(&obs, &sim);

  // Churn connections are opened through the SIGNAL path (a real
  // ConnectionOpen chunk through the demultiplexer), so they exercise
  // admission, the refused-connection memory, and the sharded flow
  // table the same way a remote endpoint would. Their receivers carry
  // no data; the interesting state is the demultiplexer's.
  std::vector<std::unique_ptr<ChunkTransportReceiver>> churn_rxs;
  std::set<std::uint32_t> churn_live;
  std::uint64_t churn_admitted = 0;
  std::uint64_t churn_refused = 0;

  if (gov != nullptr || churn_n > 0) {
    DemuxAdmissionConfig adm;
    adm.governor = gov.get();
    adm.reserve_bytes = 8 * 1024;
    if (churn_n > 0) {
      adm.open_connection =
          [&](const ConnectionOpen& open) -> ChunkTransportReceiver* {
        ReceiverConfig crc;
        crc.connection_id = open.connection_id;
        crc.element_size = sc.element_size;
        crc.first_conn_sn = open.first_conn_sn;
        crc.app_buffer_bytes = 1024;
        crc.mode = sc.mode;
        churn_rxs.push_back(
            std::make_unique<ChunkTransportReceiver>(sim, std::move(crc)));
        ++churn_admitted;
        churn_live.insert(open.connection_id);
        return churn_rxs.back().get();
      };
      adm.send_refusal = [&churn_refused](Chunk) { ++churn_refused; };
    }
    demux.configure_admission(std::move(adm));
  }

  // ---- shared forward path (same back-to-front construction as the
  // single-connection run, ending at the demultiplexer). The offered-
  // load multiplier divides the first hop's rate: >1 means aggregate
  // demand exceeds the bottleneck.
  const std::size_t nh = sc.hops.size();
  std::vector<std::unique_ptr<Link>> links(nh);
  std::vector<std::unique_ptr<Router>> routers;
  PacketSink* downstream = &demux;
  for (std::size_t i = nh; i-- > 1;) {
    links[i] = std::make_unique<Link>(
        sim, to_link_config(sc.hops[i], &obs, static_cast<std::uint16_t>(i)),
        *downstream, rng);
    routers.push_back(std::make_unique<Router>(
        sim, make_relay(sc.hops[i], rng), *links[i], &obs,
        static_cast<std::uint16_t>(i)));
    downstream = routers.back().get();
  }

  FaultConfig fc;
  fc.gilbert_elliott = GilbertElliottConfig::with_mean_loss(
      sc.fault_mean_loss, sc.fault_mean_burst);
  fc.payload_flip_rate = sc.payload_flip_rate;
  fc.header_flip_rate = sc.header_flip_rate;
  fc.blackout_interval = sc.blackout_interval;
  fc.blackout_duration = sc.blackout_duration;
  fc.obs = &obs;
  FaultInjector injector(sim, fc, *downstream, rng);

  LinkConfig hop0 = to_link_config(sc.hops[0], &obs, 0);
  if (sc.offered_load > 0.0) hop0.rate_bps /= sc.offered_load;
  links[0] = std::make_unique<Link>(sim, hop0, injector, rng);

  // ---- per-connection endpoints
  std::vector<OverloadConn> conns;
  conns.reserve(nconn);
  for (std::uint32_t i = 0; i < nconn; ++i) {
    const std::uint32_t id = 7 + i;
    if (gov != nullptr && !demux.try_admit(id)) continue;  // refused

    conns.emplace_back();
    OverloadConn& c = conns.back();
    c.id = id;
    c.stream.resize(nbytes);
    const std::uint64_t stream_seed =
        sc.seed ^ (0x5DEECE66DULL * (i + 1));
    for (std::size_t b = 0; b < nbytes; ++b) {
      c.stream[b] = stream_byte(stream_seed, b);
    }

    ReceiverConfig rc;
    rc.connection_id = id;
    rc.element_size = sc.element_size;
    rc.first_conn_sn = sc.first_conn_sn;
    rc.app_buffer_bytes = nbytes;
    rc.mode = sc.mode;
    rc.max_held_bytes = sc.max_held_bytes;
    rc.max_open_tpdus = sc.max_open_tpdus;
    rc.gap_nak_delay = sc.gap_nak_delay;
    rc.max_gap_naks = sc.max_gap_naks;
    rc.governor = gov.get();
    rc.shed_priority = 1 + static_cast<int>(i % 3);
    rc.grant_credit = sc.flow_control;
    if (sc.governor_budget != 0) {
      rc.credit_window_bytes = std::max<std::uint64_t>(
          sc.governor_budget / nconn, 8 * 1024);
    }
    rc.obs = &obs;
    OverloadConn* cp = &c;
    rc.on_tpdu = [cp](const TpduOutcome& o) { cp->outcomes.push_back(o); };
    rc.send_control = [&sim, cp](Chunk ack) {
      auto pkt = encode_packet(std::vector<Chunk>{std::move(ack)}, 1500);
      SimPacket sp;
      sp.bytes = std::move(pkt);
      sp.id = sim.next_packet_id();
      sp.created_at = sim.now();
      cp->reverse->send(std::move(sp));
    };
    c.receiver = std::make_unique<ChunkTransportReceiver>(sim, std::move(rc));
    demux.attach(id, *c.receiver);

    SenderConfig sd;
    sd.framer.connection_id = id;
    sd.framer.element_size = sc.element_size;
    sd.framer.tpdu_elements = sc.tpdu_elements;
    sd.framer.xpdu_elements = sc.xpdu_elements;
    sd.framer.max_chunk_elements = sc.max_chunk_elements;
    sd.framer.first_conn_sn = sc.first_conn_sn;
    sd.mtu = sc.hops[0].mtu;
    sd.max_retransmits = sc.max_retransmits;
    sd.retransmit_timeout = sc.retransmit_timeout;
    sd.rto.adaptive = sc.adaptive_rto;
    sd.selective_retransmit = sc.selective_retransmit;
    sd.flow.enabled = sc.flow_control;
    sd.obs = &obs;
    sd.send_packet = [&sim, &links](std::vector<std::uint8_t> bytes) {
      SimPacket sp;
      sp.bytes = std::move(bytes);
      sp.id = sim.next_packet_id();
      sp.created_at = sim.now();
      links[0]->send(std::move(sp));
    };
    c.sender = std::make_unique<ChunkTransportSender>(sim, std::move(sd));

    LinkConfig rev_cfg;
    rev_cfg.prop_delay = sc.hops[0].prop_delay;
    rev_cfg.loss_rate = sc.ack_loss_rate;
    c.reverse = std::make_unique<Link>(sim, rev_cfg, *c.sender, rng);
  }

  // OverloadConn holds unique_ptrs only, but the lambdas above capture
  // raw element addresses: the vector must never reallocate past this
  // point (reserve(nconn) above guarantees it never does at all).

  // ---- churn schedule: one ConnectionOpen per churn_interval. Ids
  // repeat (half as many distinct ids as opens) so re-opens hit the
  // established fast path and the refused-memory fast path, not just
  // fresh admissions; each open schedules its own close a few intervals
  // later, which hands the admission reservation back to the governor.
  if (churn_n > 0) {
    const std::uint32_t distinct = std::max<std::uint32_t>(1, churn_n / 2);
    const SimTime close_after = 5 * churn_step;
    for (std::uint32_t k = 0; k < churn_n; ++k) {
      const std::uint32_t cid = 0x40000000u + (k % distinct);
      sim.schedule_at(
          (k + 1) * churn_step,
          [&sim, &demux, &churn_live, &gov, cid, close_after] {
            ConnectionOpen open;
            open.connection_id = cid;
            SimPacket sp;
            sp.bytes = encode_packet(
                std::vector<Chunk>{make_signal_chunk(open)}, 1500);
            sp.id = sim.next_packet_id();
            sp.created_at = sim.now();
            demux.on_packet(std::move(sp));
            sim.schedule_in(close_after, [&demux, &churn_live, &gov, cid] {
              if (churn_live.erase(cid) == 0) return;  // refused / closed
              demux.detach(cid);
              if (gov != nullptr) gov->unbind_client(cid);
            });
          });
    }
  }

  // ---- run to quiescence under the watchdog
  for (OverloadConn& c : conns) c.sender->send_stream(c.stream);
  sim.run(sc.watchdog);
  res.sim_end = sim.now();

  const auto& dstats = demux.stats();
  res.connections_admitted =
      gov != nullptr ? dstats.connections_admitted : conns.size();
  res.connections_refused = dstats.connections_refused;

  // ---- oracle 4 (aggregate livelock + per-sender completion/budget)
  if (sim.pending()) {
    res.fail("oracle-4: watchdog expired with events still pending "
             "(livelock)");
  }
  const std::uint32_t tpdu_count =
      (sc.stream_elements + sc.tpdu_elements - 1) / sc.tpdu_elements;
  for (OverloadConn& c : conns) {
    const auto& ss = c.sender->stats();
    res.tpdus_gave_up += ss.gave_up;
    res.retransmissions += ss.retransmissions;
    if (!c.sender->finished()) {
      res.fail(fmt("oracle-4: connection %llu neither delivered nor "
                   "abandoned every TPDU at quiescence",
                   c.id));
    }
    const std::uint64_t retx_budget =
        ss.tpdus_sent * (static_cast<std::uint64_t>(sc.max_retransmits) + 1);
    if (ss.retransmissions > retx_budget) {
      res.fail(fmt("oracle-4: connection %llu: %llu retransmissions exceed "
                   "the retry budget (retransmit storm)",
                   c.id, ss.retransmissions));
    }
    if (ss.tpdus_sent != ss.tpdus_acked + ss.gave_up) {
      res.fail(fmt("oracle-2: connection %llu sent TPDUs != acked+gave_up "
                   "(%llu missing)",
                   c.id, ss.tpdus_sent - ss.tpdus_acked - ss.gave_up));
    }
  }

  // ---- quiescence cleanup, then oracle 3 per connection. Governor
  // shedding and open-cap eviction can leave tombstone-resurrected
  // state just like the single-connection eviction scenarios, so only
  // the post-abort zero-held checks are strict here.
  for (OverloadConn& c : conns) {
    for (std::uint32_t id : c.sender->gave_up_tpdus()) {
      c.receiver->abort_tpdu(id);
    }
    for (std::uint32_t id : c.receiver->unfinished_tpdu_ids()) {
      c.receiver->abort_tpdu(id);
    }
    const auto& rs = c.receiver->stats();
    if (rs.held_bytes_now != 0) {
      res.fail(fmt("oracle-3: connection %llu still holds %llu bytes after "
                   "quiescence cleanup",
                   c.id, rs.held_bytes_now));
    }
    if (c.receiver->reorder_queue_chunks() != 0) {
      res.fail(fmt("oracle-3: connection %llu still queues chunks for "
                   "reorder after cleanup (%llu)",
                   c.id, c.receiver->reorder_queue_chunks()));
    }
    if (c.receiver->unfinished_tpdus() != 0) {
      res.fail(fmt("oracle-3: connection %llu has %llu unfinished TPDU "
                   "contexts after abort",
                   c.id, c.receiver->unfinished_tpdus()));
    }
  }

  // ---- oracle 2: per-connection conservation + registry cross-check
  // (every receiver shares the mode-prefixed counters, so the registry
  // holds the SUM across connections).
  std::uint64_t sum_data_chunks = 0, sum_placed = 0, sum_dropped = 0,
                sum_dropped_bytes = 0, sum_dups = 0, sum_accepted = 0,
                sum_rejected = 0, sum_acks_resent = 0, sum_gave_up = 0;
  for (OverloadConn& c : conns) {
    const auto& rs = c.receiver->stats();
    const std::uint64_t dispositions =
        rs.framing_error_chunks + rs.duplicate_chunks + rs.overlap_chunks +
        rs.chunks_placed + rs.oob_chunks + rs.dropped_unplaced_chunks;
    if (rs.data_chunks != dispositions) {
      res.fail(fmt("oracle-2: connection %llu: %llu data chunks do not "
                   "balance against dispositions",
                   c.id, rs.data_chunks));
    }
    sum_data_chunks += rs.data_chunks;
    sum_placed += rs.chunks_placed;
    sum_dropped += rs.dropped_unplaced_chunks;
    sum_dropped_bytes += rs.dropped_unplaced_bytes;
    sum_dups += rs.duplicate_chunks;
    sum_accepted += rs.tpdus_accepted;
    sum_rejected += rs.tpdus_rejected;
    sum_acks_resent += rs.acks_resent;
    sum_gave_up += c.sender->stats().gave_up;
    res.tpdus_accepted += rs.tpdus_accepted;
    res.tpdus_rejected += rs.tpdus_rejected;
    res.data_chunks += rs.data_chunks;
    res.acks_resent += rs.acks_resent;
  }
  const auto& fs = injector.stats();
  if (fs.offered != fs.delivered + fs.dropped_loss + fs.dropped_blackout) {
    res.fail(fmt("oracle-2: fault injector offered %llu != delivered + "
                 "dropped %llu",
                 fs.offered,
                 fs.delivered + fs.dropped_loss + fs.dropped_blackout));
  }
  const std::string p = std::string("receiver.") + to_string(sc.mode) + ".";
  const struct {
    const char* name;
    std::uint64_t expect;
  } reg_checks[] = {
      {"data_chunks", sum_data_chunks},
      {"chunks_placed", sum_placed},
      {"dropped_unplaced_chunks", sum_dropped},
      {"dropped_unplaced_bytes", sum_dropped_bytes},
      {"duplicate_chunks", sum_dups},
      {"tpdus_accepted", sum_accepted},
      {"tpdus_rejected", sum_rejected},
      {"acks_resent", sum_acks_resent},
  };
  for (const auto& ck : reg_checks) {
    const std::uint64_t v = reg.counter(p + ck.name).value();
    if (v != ck.expect) {
      res.fail(fmt((std::string("oracle-2: registry ") + p + ck.name +
                    " = %llu but summed receiver stats say %llu")
                       .c_str(),
                   v, ck.expect));
    }
  }
  if (reg.counter("sender.gave_up").value() != sum_gave_up) {
    res.fail(fmt("oracle-2: registry sender.gave_up %llu != summed stats "
                 "%llu",
                 reg.counter("sender.gave_up").value(), sum_gave_up));
  }

  // ---- oracle 1: truthful delivery, per connection against its own
  // deterministic stream.
  for (OverloadConn& c : conns) {
    std::set<std::uint32_t> accepted_ids;
    for (const TpduOutcome& o : c.outcomes) {
      if (o.verdict == TpduVerdict::kAccepted) accepted_ids.insert(o.tpdu_id);
    }
    const auto gave_up = c.sender->gave_up_tpdus();
    const std::set<std::uint32_t> gave_up_ids(gave_up.begin(), gave_up.end());
    const auto app = c.receiver->app_data();
    for (std::uint32_t k = 0; k < tpdu_count; ++k) {
      const std::uint32_t id = 1 + k;
      if (gave_up_ids.count(id) != 0) continue;
      if (accepted_ids.count(id) == 0) {
        res.fail(fmt("oracle-1: connection %llu TPDU %llu was positively "
                     "acked but never reported accepted",
                     c.id, id));
        continue;
      }
      const std::size_t lo =
          static_cast<std::size_t>(k) * sc.tpdu_elements * sc.element_size;
      const std::size_t hi =
          std::min(nbytes, lo + static_cast<std::size_t>(sc.tpdu_elements) *
                                    sc.element_size);
      for (std::size_t b = lo; b < hi; ++b) {
        if (app[b] != c.stream[b]) {
          res.fail(fmt("oracle-1: connection %llu TPDU %llu delivered with "
                       "wrong bytes",
                       c.id, id));
          break;
        }
      }
    }
    if (gave_up.empty() && c.sender->all_acked() &&
        !c.receiver->stream_complete(sc.stream_elements)) {
      res.fail(fmt("oracle-1: connection %llu fully acked yet the element "
                   "coverage map reports the stream incomplete",
                   c.id));
    }
  }

  // ---- oracle 5: invariant soundness (aggregate; generated overload
  // scenarios are corruption-free by construction)
  if (!sc.corrupts_anything()) {
    if (sum_rejected != 0) {
      res.fail(fmt("oracle-5: %llu TPDUs rejected in a corruption-free "
                   "scenario",
                   sum_rejected));
      for (OverloadConn& c : conns) {
        for (const TpduOutcome& o : c.outcomes) {
          if (o.verdict != TpduVerdict::kAccepted) {
            res.fail(std::string("oracle-5:   connection ") +
                     std::to_string(c.id) + " TPDU " +
                     std::to_string(o.tpdu_id) + " verdict " +
                     to_string(o.verdict));
          }
        }
      }
    }
    for (OverloadConn& c : conns) {
      if (c.sender->stats().naks != 0) {
        res.fail(fmt("oracle-5: connection %llu saw NAKs in a "
                     "corruption-free scenario",
                     c.id));
      }
    }
  }

  // ---- oracle 6: overload fairness. Governed memory stays under the
  // hard watermark at its PEAK, drains at quiescence, admission
  // accounting closes, and no admitted connection silently starves.
  if (gov != nullptr) {
    const auto gs = gov->stats();
    res.governor_charged_peak = gs.charged_peak;
    res.governor_sheds = gs.sheds;
    if (gs.charged_peak > sc.governor_budget) {
      res.fail(fmt("oracle-6: governor charged_peak %llu exceeded the hard "
                   "watermark %llu",
                   gs.charged_peak, sc.governor_budget));
    }
    if (gs.charged_now != 0) {
      res.fail(fmt("oracle-6: governor still accounts %llu charged bytes "
                   "after quiescence cleanup",
                   gs.charged_now));
    }
    // Every main connection gets exactly one admission decision; every
    // churn decision was observed through the open/refusal callbacks —
    // the two independent tallies must agree with the shard counters.
    if (dstats.connections_admitted + dstats.connections_refused !=
        nconn + churn_admitted + churn_refused) {
      res.fail(fmt("oracle-6: admission accounting does not close: "
                   "admitted+refused %llu != offered %llu",
                   dstats.connections_admitted + dstats.connections_refused,
                   nconn + churn_admitted + churn_refused));
    }
  }
  if (churn_n > 0) {
    // Churn must not leak connection-table state: every ephemeral flow
    // was closed, and every remembered refusal aged out on its TTL.
    if (demux.flows() != conns.size()) {
      res.fail(fmt("oracle-3: connection table holds %llu flows after the "
                   "churn drained but only %llu long-lived connections "
                   "exist",
                   demux.flows(), conns.size()));
    }
    if (demux.refused_size() != 0) {
      res.fail(fmt("oracle-3: %llu refused-connection entries survived "
                   "their TTL",
                   demux.refused_size()));
    }
    if (churn_admitted + churn_refused == 0) {
      res.fail(fmt("oracle-6: churn dimension requested (%llu opens) but "
                   "no admission decision was ever made",
                   churn_n));
    }
  }
  for (OverloadConn& c : conns) {
    std::uint64_t accepted = 0;
    for (const TpduOutcome& o : c.outcomes) {
      if (o.verdict == TpduVerdict::kAccepted) ++accepted;
    }
    if (accepted == 0 && c.sender->stats().gave_up < tpdu_count) {
      res.fail(fmt("oracle-6: admitted connection %llu starved: zero TPDUs "
                   "accepted and not every TPDU truthfully given up",
                   c.id));
    }
  }

  if (capture != nullptr) rig.finish(*capture, sim, reg);
  return res;
}

}  // namespace

// ------------------------------------------------------- minimization

ChaosScenario minimize_scenario(const ChaosScenario& sc, int steps) {
  using Pass = bool (*)(ChaosScenario&);
  // Each pass tries one simplification; minimization keeps it only if
  // the scenario still fails. Ordered most-destructive first so the
  // greedy walk sheds whole subsystems before fiddling with rates.
  static constexpr Pass passes[] = {
      [](ChaosScenario& s) {
        // Shed the whole overload dimension (back to the single-
        // connection pipeline) in one step.
        if (!s.overloaded()) return false;
        s.connections = 1;
        s.offered_load = 1.0;
        s.governor_budget = 0;
        s.governor_policy = 0;
        s.flow_control = false;
        s.churn_connections = 0;
        s.churn_interval = 0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.churn_connections == 0) return false;
        s.churn_connections = 0;
        s.churn_interval = 0;
        return true;
      },
      [](ChaosScenario& s) {
        // Shed the whole multipath plane back to a single first hop.
        if (!s.multipath()) return false;
        s.mp_paths = 0;
        s.mp_mode = 0;
        s.mp_skew = 0;
        s.mp_loss = 0.0;
        s.mp_kill_at = s.mp_revive_at = 0;
        s.mp_kill_path = 0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.mp_kill_at == 0) return false;
        s.mp_kill_at = s.mp_revive_at = 0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.mp_loss == 0.0 && s.mp_skew == 0) return false;
        s.mp_loss = 0.0;
        s.mp_skew = 0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.connections <= 2) return false;
        s.connections /= 2;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.governor_budget == 0) return false;
        s.governor_budget = 0;
        s.governor_policy = 0;
        return true;
      },
      [](ChaosScenario& s) {
        if (!s.flow_control) return false;
        s.flow_control = false;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.offered_load == 1.0) return false;
        s.offered_load = 1.0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.hops.size() <= 1) return false;
        s.hops.resize(1);
        return true;
      },
      [](ChaosScenario& s) {
        bool changed = false;
        for (ChaosHop& h : s.hops) {
          if (h.relay != ChaosRelayKind::kTransparent) {
            h.relay = ChaosRelayKind::kTransparent;
            h.rewrite_rate = 0.0;
            changed = true;
          }
        }
        return changed;
      },
      [](ChaosScenario& s) {
        if (s.blackout_interval == 0) return false;
        s.blackout_interval = s.blackout_duration = 0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.header_flip_rate == 0.0) return false;
        s.header_flip_rate = 0.0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.payload_flip_rate == 0.0) return false;
        s.payload_flip_rate = 0.0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.fault_mean_loss == 0.0) return false;
        s.fault_mean_loss = 0.0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.ack_loss_rate == 0.0) return false;
        s.ack_loss_rate = 0.0;
        return true;
      },
      [](ChaosScenario& s) {
        bool changed = false;
        for (ChaosHop& h : s.hops) {
          if (h.loss_rate != 0.0 || h.dup_rate != 0.0 || h.jitter != 0 ||
              h.route_flap_interval != 0) {
            h.loss_rate = h.dup_rate = 0.0;
            h.jitter = 0;
            h.route_flap_interval = 0;
            changed = true;
          }
        }
        return changed;
      },
      [](ChaosScenario& s) {
        bool changed = false;
        for (ChaosHop& h : s.hops) {
          if (h.lanes != 1) {
            h.lanes = 1;
            h.lane_skew = 0;
            changed = true;
          }
        }
        return changed;
      },
      [](ChaosScenario& s) {
        if (!s.selective_retransmit && s.gap_nak_delay == 0) return false;
        s.selective_retransmit = false;
        s.gap_nak_delay = 0;
        return true;
      },
      [](ChaosScenario& s) {
        if (!s.adaptive_rto) return false;
        s.adaptive_rto = false;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.max_held_bytes == 0 && s.max_open_tpdus == 0) return false;
        s.max_held_bytes = 0;
        s.max_open_tpdus = 0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.first_conn_sn == 0) return false;
        s.first_conn_sn = 0;
        return true;
      },
      [](ChaosScenario& s) {
        if (s.stream_elements <= 2 * s.tpdu_elements) return false;
        s.stream_elements /= 2;
        return true;
      },
  };

  ChaosScenario best = sc;
  if (run_chaos(best).ok) return best;  // nothing to minimize

  bool progress = true;
  while (progress && steps > 0) {
    progress = false;
    for (const Pass pass : passes) {
      if (steps <= 0) break;
      ChaosScenario candidate = best;
      if (!pass(candidate)) continue;
      --steps;
      if (!run_chaos(candidate).ok) {
        best = candidate;
        progress = true;
      }
    }
  }
  return best;
}

}  // namespace chunknet
