#include "src/common/buffer_pool.hpp"

#include <algorithm>

namespace chunknet {

void PacketBufferPool::attach_governor(ResourceGovernor* governor,
                                       std::uint32_t client) {
  governor_ = governor;
  governor_client_ = client;
  if (governor_ == nullptr) return;
  governor_->bind_client(client, /*priority=*/1, [this] {
    // Shed hook: drop half the freelist (at least one buffer).
    std::uint64_t dropped;
    {
      std::lock_guard<std::mutex> lk(mu_);
      dropped = drop_locked(std::max<std::size_t>(free_.size() / 2,
                                                  free_.empty() ? 0 : 1));
    }
    if (dropped > 0) {
      governor_->release(governor_client_, ResourceClass::kPool, dropped);
    }
    return dropped;
  });
  std::uint64_t retained;
  {
    std::lock_guard<std::mutex> lk(mu_);
    retained = retained_;
  }
  if (retained > 0) {
    governor_->charge(governor_client_, ResourceClass::kPool, retained);
  }
}

void PacketBufferPool::attach_obs(ObsContext* obs) {
  if (obs == nullptr || obs->metrics == nullptr) return;
  g_retained_ = &obs->metrics->gauge("pool.retained_bytes");
  c_trimmed_ = &obs->metrics->counter("pool.trimmed_buffers");
  std::lock_guard<std::mutex> lk(mu_);
  g_retained_->set(static_cast<std::int64_t>(retained_));
}

PooledBuffer PacketBufferPool::acquire() {
  PacketBytes storage;
  std::uint64_t popped = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!free_.empty()) {
      storage = std::move(free_.back());
      free_.pop_back();
      popped = storage.capacity();
      retained_ -= std::min<std::uint64_t>(retained_, popped);
      min_free_since_tick_ = std::min(min_free_since_tick_, free_.size());
      ++stats_.reuses;
      obs_set(g_retained_, static_cast<std::int64_t>(retained_));
    } else {
      ++stats_.allocations;
    }
  }
  if (popped > 0 && governor_ != nullptr) {
    governor_->release(governor_client_, ResourceClass::kPool, popped);
  }
  if (storage.capacity() == 0) storage.reserve(buffer_capacity_);
  storage.clear();
  // The whole point of PacketBytes-backed storage: SIMD kernels and the
  // gather TX path may assume cache-line alignment of pooled packets.
  assert(is_packet_aligned(storage.data()));
  return PooledBuffer(this, std::move(storage));
}

void PacketBufferPool::release(PacketBytes storage) {
  storage.clear();
  const std::uint64_t cap = storage.capacity();
  bool retained = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.releases;
    if (max_free_ > 0 && free_.size() >= max_free_) {
      ++stats_.trimmed;  // over the cap: the storage is freed, not parked
      obs_add(c_trimmed_);
    } else {
      free_.push_back(std::move(storage));
      retained_ += cap;
      retained = true;
      obs_set(g_retained_, static_cast<std::int64_t>(retained_));
    }
  }
  if (retained && governor_ != nullptr) {
    governor_->charge(governor_client_, ResourceClass::kPool, cap);
  }
}

std::uint64_t PacketBufferPool::drop_locked(std::size_t n) {
  std::uint64_t dropped = 0;
  n = std::min(n, free_.size());
  for (std::size_t i = 0; i < n; ++i) {
    dropped += free_.back().capacity();
    free_.pop_back();
    ++stats_.trimmed;
    obs_add(c_trimmed_);
  }
  retained_ -= std::min(retained_, dropped);
  min_free_since_tick_ = std::min(min_free_since_tick_, free_.size());
  obs_set(g_retained_, static_cast<std::int64_t>(retained_));
  return dropped;
}

std::uint64_t PacketBufferPool::trim(std::size_t keep) {
  std::uint64_t dropped;
  {
    std::lock_guard<std::mutex> lk(mu_);
    dropped = free_.size() > keep ? drop_locked(free_.size() - keep) : 0;
  }
  if (dropped > 0 && governor_ != nullptr) {
    governor_->release(governor_client_, ResourceClass::kPool, dropped);
  }
  return dropped;
}

std::uint64_t PacketBufferPool::trim_tick() {
  std::uint64_t dropped;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Buffers that sat idle through the whole interval were never needed
    // to absorb its traffic; decay half of them.
    dropped = drop_locked(min_free_since_tick_ / 2);
    min_free_since_tick_ = free_.size();
  }
  if (dropped > 0 && governor_ != nullptr) {
    governor_->release(governor_client_, ResourceClass::kPool, dropped);
  }
  return dropped;
}

std::size_t PacketBufferPool::free_buffers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return free_.size();
}

std::uint64_t PacketBufferPool::retained_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return retained_;
}

PacketBufferPool::Stats PacketBufferPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace chunknet
