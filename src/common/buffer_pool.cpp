#include "src/common/buffer_pool.hpp"

namespace chunknet {

PooledBuffer PacketBufferPool::acquire() {
  std::vector<std::uint8_t> storage;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!free_.empty()) {
      storage = std::move(free_.back());
      free_.pop_back();
      ++stats_.reuses;
    } else {
      ++stats_.allocations;
    }
  }
  if (storage.capacity() == 0) storage.reserve(buffer_capacity_);
  storage.clear();
  return PooledBuffer(this, std::move(storage));
}

void PacketBufferPool::release(std::vector<std::uint8_t> storage) {
  storage.clear();
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.releases;
  free_.push_back(std::move(storage));
}

std::size_t PacketBufferPool::free_buffers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return free_.size();
}

PacketBufferPool::Stats PacketBufferPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace chunknet
