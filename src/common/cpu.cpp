#include "src/common/cpu.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define CHUNKNET_X86_64 1
#elif defined(__aarch64__)
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#define CHUNKNET_AARCH64 1
#endif

namespace chunknet {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(CHUNKNET_X86_64)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.pclmul = (ecx & (1u << 1)) != 0;   // PCLMULQDQ
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx & (1u << 5)) != 0;     // AVX2
  }
#elif defined(CHUNKNET_AARCH64) && defined(__linux__)
  // HWCAP_PMULL = bit 4 of AT_HWCAP on aarch64 Linux.
  const unsigned long hwcap = getauxval(AT_HWCAP);
  f.neon_pmull = (hwcap & (1ul << 4)) != 0;
#endif
  return f;
}

std::string build_summary(const CpuFeatures& f) {
  std::string s = cpu_isa();
  if (force_scalar()) {
    s += " (forced scalar)";
    return s;
  }
  if (f.pclmul) s += "+pclmul";
  if (f.avx2) s += "+avx2";
  if (f.neon_pmull) s += "+pmull";
  return s;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

bool force_scalar() {
  static const bool forced = [] {
    const char* v = std::getenv("CHUNKNET_FORCE_SCALAR");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
  }();
  return forced;
}

const char* cpu_isa() {
#if defined(CHUNKNET_X86_64)
  return "x86-64";
#elif defined(CHUNKNET_AARCH64)
  return "aarch64";
#else
  return "other";
#endif
}

const char* cpu_summary() {
  static const std::string s = build_summary(cpu_features());
  return s.c_str();
}

}  // namespace chunknet
