// Global byte accounting for everything one endpoint holds on behalf of
// its connections: packet-pool buffers, receiver held-state (reorder
// queues and reassembly staging), and any other transient staging.
//
// The governor answers two questions the per-receiver caps of
// docs/ROBUSTNESS.md cannot: "how much is this ENDPOINT holding across
// all connections?" and "who should give memory back when the answer is
// 'too much'?". Components charge/release bytes under a client id (the
// connection id; 0 for shared infrastructure such as the buffer pool).
// Two watermarks shape behaviour:
//
//  - soft: above it the endpoint is *pressured* — credit grants shrink
//    (flow control backs senders off) and shedding may be invoked;
//  - hard: the absolute budget. `fits()` says whether a further charge
//    would cross it; callers must make room (shed) or drop before
//    charging, so `charged() <= hard` is an invariant the tests assert
//    via `charged_peak`.
//
// Shedding is pull-based: clients register a hook that frees some of
// their holdings (e.g. a receiver evicts its oldest reassembly holder)
// and reports the bytes freed. `make_room()` picks victims under the
// configured policy and calls hooks OUTSIDE the governor lock, so a
// hook may re-enter `release()` freely.
//
// Admission control: `try_admit()` reserves headroom for a new
// connection; reservations count against the hard watermark for
// admission purposes only (charges still do the runtime enforcement).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "src/obs/obs.hpp"

namespace chunknet {

/// What a charge pays for; accounted separately so metrics can show
/// where the bytes live.
enum class ResourceClass : std::uint8_t { kPool = 0, kHeld = 1, kStaging = 2 };

/// Victim-selection order when the governor must reclaim memory.
enum class ShedPolicy : std::uint8_t {
  kLargestHolderFirst = 0,  ///< most bytes held pays first
  kPriorityWeighted = 1,    ///< most bytes per unit of priority pays first
  kOldestFirst = 2,         ///< earliest-registered client pays first
};

const char* shed_policy_name(ShedPolicy p);

struct GovernorConfig {
  std::uint64_t soft_watermark_bytes{3 * 1024 * 1024 / 4};
  std::uint64_t hard_watermark_bytes{1024 * 1024};
  ShedPolicy policy{ShedPolicy::kLargestHolderFirst};
  ObsContext* obs{nullptr};
  /// Clock for span timestamps (the governor itself has no simulator
  /// dependency); null = spans are stamped 0.
  std::function<std::uint64_t()> now;
};

class ResourceGovernor {
 public:
  /// Frees some of the client's holdings and returns the bytes freed
  /// (as observed by the client's own charge/release accounting).
  /// Returning 0 means "nothing left to shed".
  using ShedFn = std::function<std::uint64_t()>;

  explicit ResourceGovernor(GovernorConfig cfg);

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Creates (or updates) the client entry. `priority` weights the
  /// priority-weighted shed policy (higher = more protected). Safe to
  /// call after `try_admit` already created the entry.
  void bind_client(std::uint32_t client, int priority = 1,
                   ShedFn shed = nullptr);

  /// Drops the client entry, its admission reserve, and any remaining
  /// charges (the client's buffers are gone with it).
  void unbind_client(std::uint32_t client);

  /// Admission control: succeeds iff `reserve_bytes` of headroom exist
  /// under the hard watermark after honouring every earlier admission's
  /// reserve. On success the client is registered with the reserve
  /// held until `unbind_client`.
  bool try_admit(std::uint32_t client, std::uint64_t reserve_bytes,
                 int priority = 1);

  /// Batched admission for sharded demultiplexers: reserves `bytes`
  /// of headroom under `lease_id` in ONE governor transaction so the
  /// holder can admit many connections against the lease locally,
  /// without per-connection governor traffic on the admit path.
  /// Unlike `try_admit`, acquiring again ADDS to the lease's reserve.
  bool acquire_admission_lease(std::uint32_t lease_id, std::uint64_t bytes);
  /// Hands back `bytes` of a lease's reserve (clamped to what the
  /// lease still holds).
  void release_admission_lease(std::uint32_t lease_id, std::uint64_t bytes);

  /// Accounts `bytes` to the client. Callers gate on `fits()` /
  /// `make_room()` first; charge itself never refuses, so accounting
  /// stays exact even for memory that is already live.
  void charge(std::uint32_t client, ResourceClass cls, std::uint64_t bytes);
  void release(std::uint32_t client, ResourceClass cls, std::uint64_t bytes);

  /// Would `extra` more charged bytes stay within the hard watermark?
  bool fits(std::uint64_t extra) const;
  /// Sheds victims (never `exclude_client`) under the policy until
  /// `extra` fits or no victim makes progress. Returns fits(extra).
  bool make_room(std::uint64_t extra, std::uint32_t exclude_client);
  /// Sheds until charged() <= soft watermark (same victim rules).
  /// Returns total bytes freed.
  std::uint64_t shed_to_soft();

  bool over_soft() const;
  /// Bytes of charge capacity left under the hard watermark.
  std::uint64_t headroom() const;
  /// Suggested credit window for one client: an equal share of the
  /// remaining headroom, collapsed to a small sliver under soft
  /// pressure so shrinking grants reach senders before the hard wall.
  std::uint64_t grant_hint(std::uint32_t client) const;

  struct Stats {
    std::uint64_t charged_now{0};
    std::uint64_t charged_peak{0};
    std::uint64_t reserved_now{0};
    std::uint64_t clients{0};
    std::uint64_t admissions{0};
    std::uint64_t admission_refused{0};
    std::uint64_t sheds{0};            ///< shed hooks invoked
    std::uint64_t shed_bytes{0};
    std::uint64_t soft_crossings{0};   ///< charges that crossed the soft mark
  };
  Stats stats() const;
  const GovernorConfig& config() const { return cfg_; }
  /// Per-class + total usage for one client (0s when unknown).
  std::uint64_t client_usage(std::uint32_t client) const;

 private:
  struct Client {
    std::array<std::uint64_t, 3> by_class{{0, 0, 0}};
    std::uint64_t reserve{0};
    int priority{1};
    std::uint64_t order{0};  ///< registration sequence (oldest-first)
    ShedFn shed;
    std::uint64_t total() const {
      return by_class[0] + by_class[1] + by_class[2];
    }
  };

  Client& entry_locked(std::uint32_t client);
  /// Picks the next shed victim under the policy into `victim`; false
  /// if none is eligible. `exclude` of 0 excludes nobody (client 0 —
  /// shared infrastructure like the buffer pool — is a valid victim).
  bool pick_victim_locked(std::uint32_t exclude,
                          std::uint32_t& victim) const;
  /// Runs shed hooks until `goal_charged` is reached or no progress.
  std::uint64_t shed_until_goal(std::uint64_t goal_charged,
                                       std::uint32_t exclude);
  void publish_locked();

  GovernorConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::uint32_t, Client> clients_;
  std::uint64_t charged_{0};
  std::uint64_t reserved_{0};
  std::uint64_t next_order_{1};
  Stats stats_;

  Gauge* g_charged_{nullptr};
  Gauge* g_peak_{nullptr};
  Gauge* g_reserved_{nullptr};
  Gauge* g_clients_{nullptr};
  Counter* c_admissions_{nullptr};
  Counter* c_admission_refused_{nullptr};
  Counter* c_sheds_{nullptr};
  Counter* c_shed_bytes_{nullptr};
  Counter* c_soft_crossings_{nullptr};
};

}  // namespace chunknet
