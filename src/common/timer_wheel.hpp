// Hierarchical timer wheel for million-flow deadline management.
//
// The transport arms a deadline per in-flight TPDU (RTO), per
// incomplete TPDU (gap-NAK), per blocked sender (zero-credit probe)
// and per idle connection (demux idle eviction). Scheduling each of
// those as its own simulator event means a binary-heap node and an
// allocated closure per deadline — and no way to CANCEL, so finished
// work leaves dead events to drain. The wheel gives O(1) arm, O(1)
// cancel, and amortized O(1) fire:
//
//   4 levels x 256 slots; level L spans tick<<(8L) per slot, so a
//   1 ms tick covers ~49 days of deadline horizon. Timers land in the
//   coarsest level whose resolution still separates them from "now"
//   and CASCADE one level down each time their slot's window opens.
//
// Resolution contract: a timer armed for deadline D fires at the
// first advance(now) with now >= D rounded UP to a tick boundary —
// never early, at most one tick late. RTO/idle deadlines are tens of
// milliseconds against a 1 ms default tick, so the quantization is
// noise there by construction.
//
// TimerId encodes {slab index, generation}: cancel of an already-fired
// (or re-armed) id is a safe no-op, so callers never chase use-after-
// fire races.
//
// `TimerWheel` is the pure data structure (drive advance() yourself —
// the bench does); `SimTimerWheel` couples one to a Simulator with a
// single self-rescheduling pump event, so wheel deadlines fire on the
// sim clock without one sim event per timer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/netsim/simulator.hpp"

namespace chunknet {

class TimerWheel {
 public:
  /// 0 is never a valid id: arm() always returns non-zero.
  using TimerId = std::uint64_t;

  struct Config {
    SimTime tick{1 * kMillisecond};
  };

  struct Stats {
    std::uint64_t armed_total{0};
    std::uint64_t cancelled{0};
    std::uint64_t fired{0};
    std::uint64_t cascaded{0};
  };

  TimerWheel() : TimerWheel(Config{}) {}
  explicit TimerWheel(Config cfg);

  /// Schedules `cb` for `deadline` (absolute). Deadlines at or before
  /// the current tick fire on the next advance().
  TimerId arm(SimTime deadline, std::function<void()> cb);

  /// O(1). True when the timer was still pending (not fired, not
  /// already cancelled); stale ids are a safe no-op.
  bool cancel(TimerId id);

  /// Fires every timer whose deadline tick is <= now. Callbacks may
  /// arm or cancel freely.
  void advance(SimTime now);

  /// Conservative earliest-pending-deadline bound: never later than
  /// the true earliest deadline, within one slot span of it. nullopt
  /// when nothing is armed.
  std::optional<SimTime> next_deadline() const;

  std::size_t armed() const { return armed_; }
  const Stats& stats() const { return stats_; }
  SimTime tick() const { return cfg_.tick; }
  std::size_t memory_bytes() const;

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr std::uint64_t kSlots = 1ull << kSlotBits;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;
  static constexpr std::int32_t kNil = -1;

  struct Node {
    std::uint64_t deadline_tick{0};
    std::uint32_t gen{0};
    std::int32_t prev{kNil};
    std::int32_t next{kNil};
    std::int16_t level{-1};  ///< -1 = free / not armed
    std::int16_t slot{0};
    std::function<void()> cb;
  };

  std::int32_t alloc_node();
  void free_node(std::int32_t n);
  /// `level == kLevels` means the immediately-due list.
  void link(std::int32_t n, int level, int slot);
  void unlink(std::int32_t n);
  void place(std::int32_t n);           ///< choose level+slot from delta
  void cascade(int level, int slot);    ///< re-place every node in a slot
  void fire_slot(int slot);             ///< level-0 slot is due
  void fire_due();                      ///< drain the immediately-due list
  void step_boundaries();               ///< cur_tick_ crossed a multiple of 256

  Config cfg_;
  std::uint64_t cur_tick_{0};
  std::vector<Node> slab_;
  std::int32_t free_{kNil};
  std::int32_t slots_[kLevels][kSlots];
  std::int32_t tails_[kLevels][kSlots];
  std::int32_t due_head_{kNil};
  std::int32_t due_tail_{kNil};
  std::size_t level_count_[kLevels]{};
  std::size_t armed_{0};
  Stats stats_;
};

/// Couples a TimerWheel to a Simulator: one pump event is kept
/// scheduled at (a bound on) the earliest pending deadline; firing it
/// advances the wheel and re-schedules. Arming an earlier deadline
/// pulls the pump earlier. Stale pump events (a later one left behind
/// after an earlier arm) advance harmlessly and are bounded by the
/// number of arms.
class SimTimerWheel {
 public:
  explicit SimTimerWheel(Simulator& sim) : sim_(sim) {}
  SimTimerWheel(Simulator& sim, TimerWheel::Config cfg)
      : sim_(sim), wheel_(cfg) {}

  TimerWheel::TimerId arm(SimTime deadline, std::function<void()> cb) {
    wheel_.advance(sim_.now());
    const TimerWheel::TimerId id = wheel_.arm(deadline, std::move(cb));
    // Wake at the deadline rounded up to the wheel's tick — the time
    // the wheel will actually consider it due.
    const SimTime tick = wheel_.tick();
    pump((deadline + tick - 1) / tick * tick);
    return id;
  }
  TimerWheel::TimerId arm_in(SimTime delay, std::function<void()> cb) {
    return arm(sim_.now() + delay, std::move(cb));
  }
  bool cancel(TimerWheel::TimerId id) { return wheel_.cancel(id); }

  Simulator& sim() { return sim_; }
  TimerWheel& wheel() { return wheel_; }
  const TimerWheel& wheel() const { return wheel_; }

 private:
  // Inline so chunknet_common carries no link-time dependency on the
  // netsim library (only the bench/transport binaries, which link
  // both, instantiate these).
  void pump(SimTime at) {
    if (at < sim_.now()) at = sim_.now();
    if (wake_at_ <= at) return;  // an earlier-or-equal wake is outstanding
    wake_at_ = at;
    sim_.schedule_at(at, [this] { on_wake(); });
  }
  void on_wake() {
    wake_at_ = kNoWake;
    wheel_.advance(sim_.now());
    if (const auto nd = wheel_.next_deadline()) pump(*nd);
  }

  Simulator& sim_;
  TimerWheel wheel_;
  static constexpr SimTime kNoWake = ~SimTime{0};
  SimTime wake_at_{kNoWake};  ///< earliest pump event outstanding
};

}  // namespace chunknet
