// Runtime CPU feature detection for the SIMD kernel dispatch layer.
//
// The GF(2^32) carry-less-multiply kernels (src/gf/gf32_clmul.cpp) and
// the widened WSC-2 slicers (src/edc/wsc2.cpp) pick their fastest
// variant once, at first use, from what the machine actually supports:
// PCLMULQDQ/AVX2 on x86-64, the crypto extension (PMULL) on aarch64.
// The scalar kernels always remain available — they are the
// differential oracle every variant is tested against — and the
// CHUNKNET_FORCE_SCALAR environment variable pins dispatch to them
// (CI runs a forced-scalar leg so the fallback path stays exercised).
#pragma once

namespace chunknet {

struct CpuFeatures {
  bool pclmul{false};     ///< x86-64 PCLMULQDQ
  bool avx2{false};       ///< x86-64 AVX2 (256-bit integer ops)
  bool neon_pmull{false}; ///< aarch64 crypto extension (vmull_p64)
};

/// Detected features of the running CPU (cached after the first call).
const CpuFeatures& cpu_features();

/// True when CHUNKNET_FORCE_SCALAR is set to a non-empty, non-"0"
/// value: every dispatch table must select its scalar kernel.
bool force_scalar();

/// Short ISA tag for bench metadata: "x86-64", "aarch64", or "other".
const char* cpu_isa();

/// Human-readable summary of the detected features, e.g.
/// "x86-64+pclmul+avx2" or "x86-64 (forced scalar)". Stable enough to
/// embed in BENCH_*.json metadata.
const char* cpu_summary();

}  // namespace chunknet
