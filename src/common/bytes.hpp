// Byte-level serialization helpers used by every wire codec in chunknet.
//
// All multi-byte integers on the wire are big-endian ("network order"),
// matching the convention of the protocols the paper compares against.
// ByteWriter appends to a caller-owned vector; ByteReader is a bounds-
// checked cursor over a span. Reads past the end set a sticky error flag
// rather than throwing, so packet parsers can decode untrusted input and
// check `ok()` once at the end (or at each framing boundary).
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace chunknet {

/// Appends big-endian scalars and raw bytes to a growable buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  /// Number of bytes written so far to the underlying buffer.
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked big-endian reader with a sticky error flag.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> in) : in_(in) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return in_[pos_++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(in_[pos_]) << 8) | in_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    const std::uint32_t v = (static_cast<std::uint32_t>(in_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(in_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(in_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(in_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    const auto hi = static_cast<std::uint64_t>(u32());
    const auto lo = static_cast<std::uint64_t>(u32());
    return (hi << 32) | lo;
  }
  /// Returns a view of the next n bytes and advances; empty view on underrun.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!need(n)) return {};
    const auto view = in_.subspan(pos_, n);
    pos_ += n;
    return view;
  }
  void skip(std::size_t n) { (void)bytes(n); }

  std::size_t remaining() const { return ok_ ? in_.size() - pos_ : 0; }
  std::size_t position() const { return pos_; }
  bool ok() const { return ok_; }

 private:
  bool need(std::size_t n) {
    if (!ok_ || in_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> in_;
  std::size_t pos_{0};
  bool ok_{true};
};

/// Formats a buffer as a conventional offset/hex/ascii dump (for examples
/// and debugging output).
std::string hex_dump(std::span<const std::uint8_t> data, std::size_t max_bytes = 256);

}  // namespace chunknet
