// A freelist of receive/send buffers, so the steady-state packet loop
// allocates nothing.
//
// The zero-copy receive path (docs/PERFORMANCE.md) parses packets into
// ChunkViews that point INTO the packet buffer; the buffer must stay
// alive and unmodified while any view of it is in use. This pool makes
// that lifetime explicit and cheap to manage: a buffer is acquired,
// filled, carried through the stack, and released back to the freelist
// when the last view of it is done — after warm-up, every acquire is a
// freelist pop (zero heap traffic) and the stats prove it.
//
// Two usage styles:
//  - RAII: `PooledBuffer b = pool.acquire();` — the destructor returns
//    the storage automatically;
//  - detached: `b.take()` moves the raw vector out (e.g. into a
//    SimPacket); whoever ends up owning it calls `pool.release()` to
//    close the recycle loop.
//
// Thread-safe (one mutex; the pool is not on the per-word hot path —
// it is touched once per packet).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace chunknet {

class PacketBufferPool;

/// RAII handle to one pooled buffer. Movable, not copyable; returns
/// the storage to the pool on destruction unless `take()`n.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PacketBufferPool* pool, std::vector<std::uint8_t> storage)
      : pool_(pool), storage_(std::move(storage)) {}
  PooledBuffer(PooledBuffer&& o) noexcept
      : pool_(o.pool_), storage_(std::move(o.storage_)) {
    o.pool_ = nullptr;
  }
  PooledBuffer& operator=(PooledBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      pool_ = o.pool_;
      storage_ = std::move(o.storage_);
      o.pool_ = nullptr;
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { reset(); }

  std::vector<std::uint8_t>& bytes() { return storage_; }
  const std::vector<std::uint8_t>& bytes() const { return storage_; }

  /// Detaches the storage (handle becomes empty; nothing returns to the
  /// pool until someone hands the vector back via release()).
  std::vector<std::uint8_t> take() {
    pool_ = nullptr;
    return std::move(storage_);
  }

  /// Returns the storage to the pool now (no-op if empty/taken).
  void reset();

 private:
  PacketBufferPool* pool_{nullptr};
  std::vector<std::uint8_t> storage_;
};

class PacketBufferPool {
 public:
  /// `buffer_capacity` is the reserve given to freshly allocated
  /// buffers (default: one jumbo frame).
  explicit PacketBufferPool(std::size_t buffer_capacity = 9000)
      : buffer_capacity_(buffer_capacity) {}

  /// Pops a free buffer (cleared, capacity retained) or allocates one.
  PooledBuffer acquire();

  /// Hands a buffer's storage back to the freelist. The recycle half of
  /// `take()`; also used directly to recycle SimPacket::bytes.
  void release(std::vector<std::uint8_t> storage);

  std::size_t free_buffers() const;

  struct Stats {
    std::uint64_t allocations{0};  ///< acquires that hit the heap
    std::uint64_t reuses{0};       ///< acquires served from the freelist
    std::uint64_t releases{0};
  };
  Stats stats() const;

 private:
  std::size_t buffer_capacity_;
  mutable std::mutex mu_;
  std::vector<std::vector<std::uint8_t>> free_;
  Stats stats_;
};

inline void PooledBuffer::reset() {
  if (pool_ != nullptr) {
    pool_->release(std::move(storage_));
    pool_ = nullptr;
  }
  storage_.clear();
}

}  // namespace chunknet
