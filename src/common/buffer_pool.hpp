// A freelist of receive/send buffers, so the steady-state packet loop
// allocates nothing.
//
// The zero-copy receive path (docs/PERFORMANCE.md) parses packets into
// ChunkViews that point INTO the packet buffer; the buffer must stay
// alive and unmodified while any view of it is in use. This pool makes
// that lifetime explicit and cheap to manage: a buffer is acquired,
// filled, carried through the stack, and released back to the freelist
// when the last view of it is done — after warm-up, every acquire is a
// freelist pop (zero heap traffic) and the stats prove it.
//
// Two usage styles:
//  - RAII: `PooledBuffer b = pool.acquire();` — the destructor returns
//    the storage automatically;
//  - detached: `b.take()` moves the raw vector out (e.g. into a
//    SimPacket); whoever ends up owning it calls `pool.release()` to
//    close the recycle loop.
//
// The freelist is BOUNDED: `max_free_buffers` caps what a burst can
// leave behind (excess releases free their storage immediately), and
// `trim_tick()` implements a periodic decay — half of the buffers that
// sat idle through the whole interval are freed, so the pool tracks
// the working set instead of sticking at its high-water mark forever.
// Retained (freelist) bytes can be charged to a ResourceGovernor and
// are exported through the `pool.retained_bytes` gauge; the governor
// may also reclaim pool memory via a shed hook that drops half the
// freelist.
//
// Buffers are `PacketBytes` (src/common/aligned.hpp): every allocation
// the pool hands out starts on a 64-byte boundary, so the SIMD kernels
// and the gather-encode TX path can assume cache-line-aligned packet
// storage instead of allocator luck. acquire() asserts the alignment.
//
// Thread-safe (one mutex; the pool is not on the per-word hot path —
// it is touched once per packet).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/aligned.hpp"
#include "src/common/resource_governor.hpp"
#include "src/obs/obs.hpp"

namespace chunknet {

class PacketBufferPool;

/// RAII handle to one pooled buffer. Movable, not copyable; returns
/// the storage to the pool on destruction unless `take()`n.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  PooledBuffer(PacketBufferPool* pool, PacketBytes storage)
      : pool_(pool), storage_(std::move(storage)) {}
  PooledBuffer(PooledBuffer&& o) noexcept
      : pool_(o.pool_), storage_(std::move(o.storage_)) {
    o.pool_ = nullptr;
  }
  PooledBuffer& operator=(PooledBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      pool_ = o.pool_;
      storage_ = std::move(o.storage_);
      o.pool_ = nullptr;
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { reset(); }

  PacketBytes& bytes() { return storage_; }
  const PacketBytes& bytes() const { return storage_; }

  /// Detaches the storage (handle becomes empty; nothing returns to the
  /// pool until someone hands the buffer back via release()).
  PacketBytes take() {
    pool_ = nullptr;
    return std::move(storage_);
  }

  /// Returns the storage to the pool now (no-op if empty/taken).
  void reset();

 private:
  PacketBufferPool* pool_{nullptr};
  PacketBytes storage_;
};

class PacketBufferPool {
 public:
  /// `buffer_capacity` is the reserve given to freshly allocated
  /// buffers (default: one jumbo frame). `max_free_buffers` bounds the
  /// freelist: a release that would exceed it frees the storage instead
  /// of retaining it (0 = unbounded, the pre-governor behaviour).
  explicit PacketBufferPool(std::size_t buffer_capacity = 9000,
                            std::size_t max_free_buffers = 0)
      : buffer_capacity_(buffer_capacity), max_free_(max_free_buffers) {}

  /// Charges retained freelist bytes to `governor` under `client` (class
  /// kPool) and registers a shed hook that drops half the freelist.
  /// Call before traffic starts; `governor` must outlive the pool.
  void attach_governor(ResourceGovernor* governor, std::uint32_t client = 0);

  /// Resolves the `pool.retained_bytes` gauge / `pool.trimmed_buffers`
  /// counter (null-tolerant, like every other obs site).
  void attach_obs(ObsContext* obs);

  /// Pops a free buffer (cleared, capacity retained) or allocates one.
  /// The storage is always 64-byte aligned (asserted).
  PooledBuffer acquire();

  /// Hands a buffer's storage back to the freelist. The recycle half of
  /// `take()`; also used directly to recycle SimPacket::bytes.
  void release(PacketBytes storage);

  /// Frees freelist storage down to `keep` buffers. Returns bytes freed.
  std::uint64_t trim(std::size_t keep);

  /// Periodic decay: frees half of the buffers that stayed idle through
  /// the whole interval since the previous tick (the freelist's minimum
  /// depth over the interval). Returns bytes freed.
  std::uint64_t trim_tick();

  std::size_t free_buffers() const;
  /// Bytes parked in the freelist right now.
  std::uint64_t retained_bytes() const;

  struct Stats {
    std::uint64_t allocations{0};  ///< acquires that hit the heap
    std::uint64_t reuses{0};       ///< acquires served from the freelist
    std::uint64_t releases{0};
    std::uint64_t trimmed{0};      ///< buffers freed by cap/trim/shed
  };
  Stats stats() const;

 private:
  /// Pops up to `n` buffers' storage for freeing; returns bytes dropped.
  std::uint64_t drop_locked(std::size_t n);

  std::size_t buffer_capacity_;
  std::size_t max_free_;
  mutable std::mutex mu_;
  std::vector<PacketBytes> free_;
  std::uint64_t retained_{0};
  std::size_t min_free_since_tick_{0};
  Stats stats_;
  ResourceGovernor* governor_{nullptr};
  std::uint32_t governor_client_{0};
  Gauge* g_retained_{nullptr};
  Counter* c_trimmed_{nullptr};
};

inline void PooledBuffer::reset() {
  if (pool_ != nullptr) {
    pool_->release(std::move(storage_));
    pool_ = nullptr;
  }
  storage_.clear();
}

}  // namespace chunknet
