// Open-addressed flat hash map for million-flow tables.
//
// The connection plane (demux shards, receiver TPDU contexts, reorder
// queues) keeps one entry per live flow or in-flight TPDU. At 1M+
// flows a `std::map` costs a heap node and ~3 cache misses per lookup;
// this map is a single contiguous slab probed linearly — robin-hood
// insertion keeps probe sequences short at high load, and erase does a
// tombstone-free BACKWARD SHIFT (displaced entries slide one slot back
// toward their home bucket), so lookup cost never degrades under
// insert/erase churn the way tombstone schemes do.
//
// Deliberate properties:
//   - lazy allocation: a default-constructed map owns NO memory, so a
//     million idle receivers cost nothing until their first entry;
//   - power-of-two capacity, max load factor 7/8;
//   - iterators/pointers are invalidated by insert (rehash) AND by
//     erase (the backward shift moves neighbours) — callers re-find by
//     key after any mutation, which the flow tables do anyway since
//     connection/TPDU ids are the durable handles;
//   - iteration order is unspecified (hash order).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>

namespace chunknet {

/// Mixing finalizer (splitmix64 / murmur3 style): flow ids are often
/// small and sequential, which would pile every entry into the low
/// buckets of a power-of-two table without this.
inline std::uint64_t flat_hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

template <typename K>
struct FlatHash {
  std::uint64_t operator()(const K& k) const {
    return flat_hash_mix(static_cast<std::uint64_t>(k));
  }
};

template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap {
 public:
  struct Entry {
    K key;
    V value;
  };

  FlatMap() = default;
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;
  FlatMap(FlatMap&& other) noexcept { swap(other); }
  FlatMap& operator=(FlatMap&& other) noexcept {
    if (this != &other) {
      clear_and_free();
      swap(other);
    }
    return *this;
  }
  ~FlatMap() { clear_and_free(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  /// Bytes owned by the table itself (bench memory accounting); the
  /// values' own heap allocations are not visible from here.
  std::size_t memory_bytes() const {
    return cap_ * (sizeof(Entry) + sizeof(std::uint8_t));
  }

  V* find(const K& key) {
    const std::size_t idx = find_index(key);
    return idx == kNpos ? nullptr : &slot(idx)->value;
  }
  const V* find(const K& key) const {
    const std::size_t idx = find_index(key);
    return idx == kNpos ? nullptr : &slot(idx)->value;
  }
  bool contains(const K& key) const { return find_index(key) != kNpos; }

  /// Inserts a default-constructed value if absent. Returns the value
  /// and whether it was inserted. Inserting may rehash: every
  /// previously obtained pointer is invalidated.
  std::pair<V*, bool> try_emplace(const K& key) {
    if (const std::size_t idx = find_index(key); idx != kNpos) {
      return {&slot(idx)->value, false};
    }
    reserve(size_ + 1);
    insert_entry(Entry{key, V()});
    ++size_;
    return {&slot(find_index(key))->value, true};
  }

  V& operator[](const K& key) { return *try_emplace(key).first; }

  std::pair<V*, bool> insert_or_assign(const K& key, V value) {
    if (const std::size_t idx = find_index(key); idx != kNpos) {
      slot(idx)->value = std::move(value);
      return {&slot(idx)->value, false};
    }
    reserve(size_ + 1);
    insert_entry(Entry{key, std::move(value)});
    ++size_;
    return {&slot(find_index(key))->value, true};
  }

  /// Tombstone-free erase: the probe chain after the hole shifts one
  /// slot backward until a home-positioned entry (or empty slot) stops
  /// it. Returns true when the key was present.
  bool erase(const K& key) {
    std::size_t idx = find_index(key);
    if (idx == kNpos) return false;
    slot(idx)->~Entry();
    std::size_t next = (idx + 1) & (cap_ - 1);
    while (dist_[next] != kEmpty && dist_[next] > 0) {
      ::new (static_cast<void*>(slot(idx))) Entry(std::move(*slot(next)));
      dist_[idx] = static_cast<std::uint8_t>(dist_[next] - 1);
      slot(next)->~Entry();
      dist_[next] = kEmpty;
      idx = next;
      next = (next + 1) & (cap_ - 1);
    }
    dist_[idx] = kEmpty;
    --size_;
    return true;
  }

  void clear() {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (dist_[i] != kEmpty) {
        slot(i)->~Entry();
        dist_[i] = kEmpty;
      }
    }
    size_ = 0;
  }

  /// Ensures capacity for `n` entries without rehashing mid-batch.
  void reserve(std::size_t n) {
    if (cap_ > 0 && n * 8 <= cap_ * 7) return;  // load factor 7/8
    std::size_t want = 8;
    while (want * 7 < n * 8) want <<= 1;
    if (want > cap_) rehash(want);
  }

  /// Unordered iteration. Valid only while the map is not mutated.
  class iterator {
   public:
    iterator(FlatMap* m, std::size_t i) : m_(m), i_(i) { skip(); }
    Entry& operator*() const { return *m_->slot(i_); }
    Entry* operator->() const { return m_->slot(i_); }
    iterator& operator++() {
      ++i_;
      skip();
      return *this;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    void skip() {
      while (i_ < m_->cap_ && m_->dist_[i_] == kEmpty) ++i_;
    }
    FlatMap* m_;
    std::size_t i_;
  };

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, cap_); }

 private:
  static constexpr std::size_t kNpos = ~static_cast<std::size_t>(0);
  static constexpr std::uint8_t kEmpty = 0xff;
  static constexpr std::uint8_t kMaxDist = 0xfe;

  Entry* slot(std::size_t i) { return reinterpret_cast<Entry*>(mem_) + i; }
  const Entry* slot(std::size_t i) const {
    return reinterpret_cast<const Entry*>(mem_) + i;
  }

  std::size_t find_index(const K& key) const {
    if (cap_ == 0) return kNpos;
    std::size_t idx = Hash{}(key) & (cap_ - 1);
    std::uint8_t d = 0;
    while (true) {
      if (dist_[idx] == kEmpty || dist_[idx] < d) return kNpos;
      if (slot(idx)->key == key) return idx;
      idx = (idx + 1) & (cap_ - 1);
      ++d;
    }
  }

  /// Robin-hood insert of an entry whose key is known to be absent.
  /// If a probe chain ever reaches the uint8 distance ceiling
  /// (pathological clustering), the table doubles and the pending
  /// entry retries — correctness never depends on the ceiling.
  void insert_entry(Entry e) {
    while (true) {
      std::size_t idx = Hash{}(e.key) & (cap_ - 1);
      std::uint8_t d = 0;
      bool overflow = false;
      while (true) {
        if (dist_[idx] == kEmpty) {
          ::new (static_cast<void*>(slot(idx))) Entry(std::move(e));
          dist_[idx] = d;
          return;
        }
        if (dist_[idx] < d) {
          std::swap(e, *slot(idx));
          std::swap(d, dist_[idx]);
        }
        idx = (idx + 1) & (cap_ - 1);
        ++d;
        if (d >= kMaxDist) {
          overflow = true;
          break;
        }
      }
      if (overflow) rehash(cap_ * 2);  // e still pending; retry
    }
  }

  void rehash(std::size_t new_cap) {
    unsigned char* old_mem = mem_;
    std::uint8_t* old_dist = dist_;
    const std::size_t old_cap = cap_;
    mem_ = static_cast<unsigned char*>(::operator new(
        new_cap * sizeof(Entry), std::align_val_t{alignof(Entry)}));
    dist_ = new std::uint8_t[new_cap];
    cap_ = new_cap;
    for (std::size_t i = 0; i < new_cap; ++i) dist_[i] = kEmpty;
    if (old_mem != nullptr) {
      Entry* old_slots = reinterpret_cast<Entry*>(old_mem);
      for (std::size_t i = 0; i < old_cap; ++i) {
        if (old_dist[i] != kEmpty) {
          insert_entry(std::move(old_slots[i]));
          old_slots[i].~Entry();
        }
      }
      ::operator delete(old_mem, std::align_val_t{alignof(Entry)});
      delete[] old_dist;
    }
  }

  void clear_and_free() {
    if (mem_ == nullptr) return;
    clear();
    ::operator delete(mem_, std::align_val_t{alignof(Entry)});
    delete[] dist_;
    mem_ = nullptr;
    dist_ = nullptr;
    cap_ = 0;
  }

  void swap(FlatMap& o) {
    std::swap(mem_, o.mem_);
    std::swap(dist_, o.dist_);
    std::swap(cap_, o.cap_);
    std::swap(size_, o.size_);
  }

  unsigned char* mem_{nullptr};
  std::uint8_t* dist_{nullptr};  ///< probe distance per slot; 0xff = empty
  std::size_t cap_{0};
  std::size_t size_{0};
};

}  // namespace chunknet
