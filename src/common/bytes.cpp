#include "src/common/bytes.hpp"

#include <cctype>
#include <cstdio>

namespace chunknet {

std::string hex_dump(std::span<const std::uint8_t> data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = data.size() < max_bytes ? data.size() : max_bytes;
  char line[128];
  for (std::size_t row = 0; row < n; row += 16) {
    int w = std::snprintf(line, sizeof line, "%06zx  ", row);
    out.append(line, static_cast<std::size_t>(w));
    for (std::size_t col = 0; col < 16; ++col) {
      if (row + col < n) {
        w = std::snprintf(line, sizeof line, "%02x ", data[row + col]);
        out.append(line, static_cast<std::size_t>(w));
      } else {
        out.append("   ");
      }
      if (col == 7) out.push_back(' ');
    }
    out.append(" |");
    for (std::size_t col = 0; col < 16 && row + col < n; ++col) {
      const unsigned char c = data[row + col];
      out.push_back(std::isprint(c) ? static_cast<char>(c) : '.');
    }
    out.append("|\n");
  }
  if (n < data.size()) {
    int w = std::snprintf(line, sizeof line, "… %zu more bytes\n", data.size() - n);
    out.append(line, static_cast<std::size_t>(w));
  }
  return out;
}

}  // namespace chunknet
