#include "src/common/interval_set.hpp"

#include <algorithm>
#include <cstdio>

namespace chunknet {

IntervalSet::AddResult IntervalSet::add(std::uint64_t lo, std::uint64_t hi,
                                        bool merge_on_overlap) {
  if (lo >= hi) return AddResult::kDuplicate;  // empty range adds nothing

  // Classify against existing coverage first.
  const bool dup = covers(lo, hi);
  const bool overlap = !dup && intersects(lo, hi);
  if (overlap && !merge_on_overlap) return AddResult::kOverlap;

  // Merge [lo, hi) into the interval map.
  auto it = ivs_.upper_bound(lo);
  if (it != ivs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= lo) {
      // extend backwards into prev
      lo = prev->first;
      hi = std::max(hi, prev->second);
      covered_ -= prev->second - prev->first;
      it = ivs_.erase(prev);
    }
  }
  while (it != ivs_.end() && it->first <= hi) {
    hi = std::max(hi, it->second);
    covered_ -= it->second - it->first;
    it = ivs_.erase(it);
  }
  ivs_.emplace(lo, hi);
  covered_ += hi - lo;

  if (dup) return AddResult::kDuplicate;
  if (overlap) return AddResult::kOverlap;
  return AddResult::kNew;
}

bool IntervalSet::covers(std::uint64_t lo, std::uint64_t hi) const {
  if (lo >= hi) return true;
  auto it = ivs_.upper_bound(lo);
  if (it == ivs_.begin()) return false;
  const auto& [ilo, ihi] = *std::prev(it);
  return ilo <= lo && hi <= ihi;
}

bool IntervalSet::intersects(std::uint64_t lo, std::uint64_t hi) const {
  if (lo >= hi) return false;
  auto it = ivs_.upper_bound(lo);
  if (it != ivs_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > lo) return true;
  }
  return it != ivs_.end() && it->first < hi;
}

std::uint64_t IntervalSet::first_gap() const {
  auto it = ivs_.find(0);
  if (it == ivs_.end()) {
    // no interval starting at 0: gap is at 0 unless an interval covers it
    it = ivs_.begin();
    if (it == ivs_.end() || it->first > 0) return 0;
  }
  return it->second;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> IntervalSet::gaps_within(
    std::uint64_t lo, std::uint64_t hi) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps;
  std::uint64_t cursor = lo;
  for (const auto& [ilo, ihi] : ivs_) {
    if (ihi <= cursor) continue;
    if (ilo >= hi) break;
    if (ilo > cursor) gaps.emplace_back(cursor, std::min(ilo, hi));
    cursor = std::max(cursor, ihi);
    if (cursor >= hi) break;
  }
  if (cursor < hi) gaps.emplace_back(cursor, hi);
  return gaps;
}

std::string IntervalSet::to_string() const {
  std::string out;
  char buf[64];
  for (const auto& [lo, hi] : ivs_) {
    const int w = std::snprintf(buf, sizeof buf, "[%llu,%llu) ",
                                static_cast<unsigned long long>(lo),
                                static_cast<unsigned long long>(hi));
    out.append(buf, static_cast<std::size_t>(w));
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace chunknet
