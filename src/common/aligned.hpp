// PacketBytes — a 64-byte-aligned byte buffer for packet storage.
//
// The SIMD kernels (PCLMUL GF(2^32), sliced WSC-2) and the gather-encode
// transmit path read payload spans straight out of packet buffers.
// `std::vector<std::uint8_t>` only promises `alignof(std::max_align_t)`
// (16 on glibc), so cache-line-aligned loads would be relying on
// allocator luck. PacketBytes is the packet-byte currency instead: its
// storage always starts on a 64-byte boundary (one cache line, and the
// widest vector register any of the kernels use).
//
// It deliberately keeps a `std::vector`-shaped API (resize zero-fills,
// capacity is retained by clear(), amortized push_back) and converts
// implicitly BOTH ways with `std::vector<std::uint8_t>` — by copy. That
// keeps the long tail of tests, examples, and relay helpers compiling
// unchanged; the hot paths (sender gather encode, receiver view decode,
// PacketBufferPool recycling) are written against PacketBytes natively,
// so they move storage and never hit the converting copies.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace chunknet {

/// Every PacketBytes data() pointer is aligned to this many bytes.
inline constexpr std::size_t kPacketBytesAlignment = 64;

class PacketBytes {
 public:
  using value_type = std::uint8_t;
  using size_type = std::size_t;
  using iterator = std::uint8_t*;
  using const_iterator = const std::uint8_t*;

  PacketBytes() = default;
  explicit PacketBytes(std::size_t n) { resize(n); }
  PacketBytes(std::size_t n, std::uint8_t value) { assign(n, value); }
  PacketBytes(std::initializer_list<std::uint8_t> il) {
    assign(il.begin(), il.end());
  }
  template <typename It>
    requires(!std::is_integral_v<It>)
  PacketBytes(It first, It last) {
    assign(first, last);
  }
  // Implicit by design: lets `std::vector` packet bytes flow into
  // PacketBytes slots (as a copy) without touching every call site.
  PacketBytes(const std::vector<std::uint8_t>& v) {  // NOLINT(runtime/explicit)
    assign(v.begin(), v.end());
  }

  PacketBytes(const PacketBytes& o) { assign(o.begin(), o.end()); }
  PacketBytes(PacketBytes&& o) noexcept
      : data_(o.data_), size_(o.size_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.size_ = 0;
    o.cap_ = 0;
  }
  PacketBytes& operator=(const PacketBytes& o) {
    if (this != &o) assign(o.begin(), o.end());
    return *this;
  }
  PacketBytes& operator=(PacketBytes&& o) noexcept {
    if (this != &o) {
      deallocate();
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = nullptr;
      o.size_ = 0;
      o.cap_ = 0;
    }
    return *this;
  }
  PacketBytes& operator=(const std::vector<std::uint8_t>& v) {
    assign(v.begin(), v.end());
    return *this;
  }
  PacketBytes& operator=(std::initializer_list<std::uint8_t> il) {
    assign(il.begin(), il.end());
    return *this;
  }
  ~PacketBytes() { deallocate(); }

  /// The reverse implicit conversion (also a copy) — keeps callables and
  /// comparisons written against `std::vector` packet bytes working.
  operator std::vector<std::uint8_t>() const {  // NOLINT(runtime/explicit)
    return std::vector<std::uint8_t>(begin(), end());
  }

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }

  std::uint8_t& operator[](std::size_t i) { return data_[i]; }
  const std::uint8_t& operator[](std::size_t i) const { return data_[i]; }
  std::uint8_t& front() { return data_[0]; }
  const std::uint8_t& front() const { return data_[0]; }
  std::uint8_t& back() { return data_[size_ - 1]; }
  const std::uint8_t& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) regrow(n);
  }

  void resize(std::size_t n) { resize(n, 0); }
  void resize(std::size_t n, std::uint8_t fill) {
    if (n > cap_) regrow(grow_target(n));
    if (n > size_) std::memset(data_ + size_, fill, n - size_);
    size_ = n;
  }

  /// resize() without the zero-fill, for buffers about to be fully
  /// overwritten (batched packet encode). The bytes are indeterminate.
  void resize_uninitialized(std::size_t n) {
    if (n > cap_) regrow(grow_target(n));
    size_ = n;
  }

  void push_back(std::uint8_t v) {
    if (size_ == cap_) regrow(grow_target(size_ + 1));
    data_[size_++] = v;
  }

  void append(const std::uint8_t* p, std::size_t n) {
    if (size_ + n > cap_) regrow(grow_target(size_ + n));
    if (n > 0) std::memcpy(data_ + size_, p, n);
    size_ += n;
  }

  void assign(std::size_t n, std::uint8_t value) {
    size_ = 0;
    resize(n, value);
  }
  template <typename It>
    requires(!std::is_integral_v<It>)
  void assign(It first, It last) {
    size_ = 0;
    // Contiguous byte ranges (vector/span/PacketBytes iterators) are
    // the common case and must memcpy, not loop — this assign sits on
    // the per-packet receive path.
    if constexpr (std::contiguous_iterator<It>) {
      append(reinterpret_cast<const std::uint8_t*>(std::to_address(first)),
             static_cast<std::size_t>(last - first));
    } else {
      for (; first != last; ++first) push_back(*first);
    }
  }
  void assign(const std::uint8_t* first, const std::uint8_t* last) {
    size_ = 0;
    append(first, static_cast<std::size_t>(last - first));
  }

  std::span<const std::uint8_t> span() const { return {data_, size_}; }

  friend bool operator==(const PacketBytes& a, const PacketBytes& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator==(const PacketBytes& a,
                         const std::vector<std::uint8_t>& b) {
    return a.size_ == b.size() &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data(), a.size_) == 0);
  }
  friend bool operator==(const std::vector<std::uint8_t>& a,
                         const PacketBytes& b) {
    return b == a;
  }

 private:
  std::size_t grow_target(std::size_t need) const {
    return std::max({need, cap_ * 2, kPacketBytesAlignment});
  }

  void regrow(std::size_t new_cap) {
    auto* p = static_cast<std::uint8_t*>(
        ::operator new(new_cap, std::align_val_t{kPacketBytesAlignment}));
    assert(reinterpret_cast<std::uintptr_t>(p) % kPacketBytesAlignment == 0);
    if (size_ > 0) std::memcpy(p, data_, size_);
    deallocate();
    data_ = p;
    cap_ = new_cap;
  }

  void deallocate() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kPacketBytesAlignment});
      data_ = nullptr;
    }
  }

  std::uint8_t* data_{nullptr};
  std::size_t size_{0};
  std::size_t cap_{0};
};

/// True when `p` sits on a PacketBytes-grade boundary. The pool and the
/// alignment test assert this on every allocation.
inline bool is_packet_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kPacketBytesAlignment == 0;
}

}  // namespace chunknet
