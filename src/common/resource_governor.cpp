#include "src/common/resource_governor.hpp"

#include <algorithm>

namespace chunknet {

const char* shed_policy_name(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kLargestHolderFirst:
      return "largest-holder-first";
    case ShedPolicy::kPriorityWeighted:
      return "priority-weighted";
    case ShedPolicy::kOldestFirst:
      return "oldest-first";
  }
  return "?";
}

ResourceGovernor::ResourceGovernor(GovernorConfig cfg) : cfg_(cfg) {
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    MetricsRegistry& m = *cfg_.obs->metrics;
    g_charged_ = &m.gauge("governor.charged_bytes");
    g_peak_ = &m.gauge("governor.charged_peak");
    g_reserved_ = &m.gauge("governor.reserved_bytes");
    g_clients_ = &m.gauge("governor.clients");
    c_admissions_ = &m.counter("governor.admissions");
    c_admission_refused_ = &m.counter("governor.admission_refused");
    c_sheds_ = &m.counter("governor.sheds");
    c_shed_bytes_ = &m.counter("governor.shed_bytes");
    c_soft_crossings_ = &m.counter("governor.soft_crossings");
    m.gauge("governor.soft_watermark").set(
        static_cast<std::int64_t>(cfg_.soft_watermark_bytes));
    m.gauge("governor.hard_watermark").set(
        static_cast<std::int64_t>(cfg_.hard_watermark_bytes));
  }
}

ResourceGovernor::Client& ResourceGovernor::entry_locked(std::uint32_t client) {
  auto [it, inserted] = clients_.try_emplace(client);
  if (inserted) {
    it->second.order = next_order_++;
  }
  return it->second;
}

void ResourceGovernor::bind_client(std::uint32_t client, int priority,
                                   ShedFn shed) {
  std::lock_guard<std::mutex> lk(mu_);
  Client& c = entry_locked(client);
  c.priority = priority;
  if (shed) c.shed = std::move(shed);
  publish_locked();
}

void ResourceGovernor::unbind_client(std::uint32_t client) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  charged_ -= std::min(charged_, it->second.total());
  reserved_ -= std::min(reserved_, it->second.reserve);
  clients_.erase(it);
  publish_locked();
}

bool ResourceGovernor::try_admit(std::uint32_t client,
                                 std::uint64_t reserve_bytes, int priority) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t committed = charged_ + reserved_;
  if (committed + reserve_bytes > cfg_.hard_watermark_bytes) {
    ++stats_.admission_refused;
    obs_add(c_admission_refused_);
    return false;
  }
  Client& c = entry_locked(client);
  c.priority = priority;
  reserved_ -= c.reserve;  // re-admission replaces the old reserve
  c.reserve = reserve_bytes;
  reserved_ += reserve_bytes;
  ++stats_.admissions;
  obs_add(c_admissions_);
  publish_locked();
  return true;
}

bool ResourceGovernor::acquire_admission_lease(std::uint32_t lease_id,
                                               std::uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  if (charged_ + reserved_ + bytes > cfg_.hard_watermark_bytes) {
    ++stats_.admission_refused;
    obs_add(c_admission_refused_);
    return false;
  }
  Client& c = entry_locked(lease_id);
  c.reserve += bytes;
  reserved_ += bytes;
  ++stats_.admissions;
  obs_add(c_admissions_);
  publish_locked();
  return true;
}

void ResourceGovernor::release_admission_lease(std::uint32_t lease_id,
                                               std::uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(lease_id);
  if (it == clients_.end()) return;
  const std::uint64_t give = std::min(it->second.reserve, bytes);
  it->second.reserve -= give;
  reserved_ -= std::min(reserved_, give);
  publish_locked();
}

void ResourceGovernor::charge(std::uint32_t client, ResourceClass cls,
                              std::uint64_t bytes) {
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  const bool was_soft = charged_ > cfg_.soft_watermark_bytes;
  Client& c = entry_locked(client);
  c.by_class[static_cast<std::size_t>(cls)] += bytes;
  charged_ += bytes;
  stats_.charged_peak = std::max(stats_.charged_peak, charged_);
  if (!was_soft && charged_ > cfg_.soft_watermark_bytes) {
    ++stats_.soft_crossings;
    obs_add(c_soft_crossings_);
  }
  publish_locked();
}

void ResourceGovernor::release(std::uint32_t client, ResourceClass cls,
                               std::uint64_t bytes) {
  if (bytes == 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end()) return;
  std::uint64_t& held = it->second.by_class[static_cast<std::size_t>(cls)];
  const std::uint64_t freed = std::min(held, bytes);
  held -= freed;
  charged_ -= std::min(charged_, freed);
  publish_locked();
}

bool ResourceGovernor::fits(std::uint64_t extra) const {
  std::lock_guard<std::mutex> lk(mu_);
  return charged_ + extra <= cfg_.hard_watermark_bytes;
}

bool ResourceGovernor::pick_victim_locked(std::uint32_t exclude,
                                          std::uint32_t& victim) const {
  bool have = false;
  double victim_score = 0.0;
  for (const auto& [id, c] : clients_) {
    // exclude == 0 excludes nobody: 0 is the shared-infrastructure
    // client (e.g. the buffer pool), never a connection asking for room.
    if ((exclude != 0 && id == exclude) || !c.shed || c.total() == 0) {
      continue;
    }
    double score = 0.0;
    switch (cfg_.policy) {
      case ShedPolicy::kLargestHolderFirst:
        score = static_cast<double>(c.total());
        break;
      case ShedPolicy::kPriorityWeighted:
        score = static_cast<double>(c.total()) /
                static_cast<double>(std::max(c.priority, 1));
        break;
      case ShedPolicy::kOldestFirst:
        // Highest score wins, so oldest = smallest order inverted.
        score = -static_cast<double>(c.order);
        break;
    }
    if (!have || score > victim_score) {
      have = true;
      victim = id;
      victim_score = score;
    }
  }
  return have;
}

std::uint64_t ResourceGovernor::shed_until_goal(
    std::uint64_t goal_charged, std::uint32_t exclude) {
  // Called with mu_ UNLOCKED; takes/drops the lock around victim
  // selection so hooks run lock-free and may re-enter release().
  std::uint64_t total_freed = 0;
  for (;;) {
    ShedFn hook;
    std::uint32_t victim_id = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (charged_ <= goal_charged) break;
      if (!pick_victim_locked(exclude, victim_id)) break;
      hook = clients_[victim_id].shed;  // copy: hook may unbind itself
    }
    const std::uint64_t freed = hook();
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.sheds;
      stats_.shed_bytes += freed;
      obs_add(c_sheds_);
      obs_add(c_shed_bytes_, freed);
    }
    if (cfg_.obs != nullptr && cfg_.obs->spans != nullptr) {
      SpanEvent e;
      e.t = cfg_.now ? cfg_.now() : 0;
      e.kind = SpanEventKind::kGovernorShed;
      e.connection_id = victim_id;
      e.aux = freed;
      cfg_.obs->spans->record(e);
    }
    if (freed == 0) break;  // no progress: stop rather than spin
    total_freed += freed;
  }
  return total_freed;
}

bool ResourceGovernor::make_room(std::uint64_t extra,
                                 std::uint32_t exclude_client) {
  const std::uint64_t hard = cfg_.hard_watermark_bytes;
  const std::uint64_t goal = extra >= hard ? 0 : hard - extra;
  shed_until_goal(goal, exclude_client);
  return fits(extra);
}

std::uint64_t ResourceGovernor::shed_to_soft() {
  return shed_until_goal(cfg_.soft_watermark_bytes, 0);
}

bool ResourceGovernor::over_soft() const {
  std::lock_guard<std::mutex> lk(mu_);
  return charged_ > cfg_.soft_watermark_bytes;
}

std::uint64_t ResourceGovernor::headroom() const {
  std::lock_guard<std::mutex> lk(mu_);
  return charged_ >= cfg_.hard_watermark_bytes
             ? 0
             : cfg_.hard_watermark_bytes - charged_;
}

std::uint64_t ResourceGovernor::grant_hint(std::uint32_t client) const {
  std::lock_guard<std::mutex> lk(mu_);
  (void)client;
  const std::uint64_t room = charged_ >= cfg_.hard_watermark_bytes
                                 ? 0
                                 : cfg_.hard_watermark_bytes - charged_;
  const std::uint64_t n = std::max<std::uint64_t>(clients_.size(), 1);
  std::uint64_t share = room / n;
  // Over the soft watermark the window collapses to a quarter share:
  // the shrinking grant is the sender's multiplicative-backoff signal.
  if (charged_ > cfg_.soft_watermark_bytes) share /= 4;
  return share;
}

ResourceGovernor::Stats ResourceGovernor::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s = stats_;
  s.charged_now = charged_;
  s.reserved_now = reserved_;
  s.clients = clients_.size();
  return s;
}

std::uint64_t ResourceGovernor::client_usage(std::uint32_t client) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = clients_.find(client);
  return it == clients_.end() ? 0 : it->second.total();
}

void ResourceGovernor::publish_locked() {
  obs_set(g_charged_, static_cast<std::int64_t>(charged_));
  obs_set(g_peak_, static_cast<std::int64_t>(stats_.charged_peak));
  obs_set(g_reserved_, static_cast<std::int64_t>(reserved_));
  obs_set(g_clients_, static_cast<std::int64_t>(clients_.size()));
}

}  // namespace chunknet
