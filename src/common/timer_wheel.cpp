#include "src/common/timer_wheel.hpp"

#include <algorithm>

namespace chunknet {

namespace {
constexpr std::uint64_t kSpan1 = 1ull << 8;   // level-0 horizon (ticks)
constexpr std::uint64_t kSpan2 = 1ull << 16;  // level-1 horizon
constexpr std::uint64_t kSpan3 = 1ull << 24;  // level-2 horizon
constexpr std::uint64_t kSpan4 = 1ull << 32;  // level-3 horizon
}  // namespace

TimerWheel::TimerWheel(Config cfg) : cfg_(cfg) {
  if (cfg_.tick == 0) cfg_.tick = 1;
  for (int l = 0; l < kLevels; ++l) {
    for (std::uint64_t s = 0; s < kSlots; ++s) {
      slots_[l][s] = kNil;
      tails_[l][s] = kNil;
    }
  }
}

std::size_t TimerWheel::memory_bytes() const {
  return slab_.capacity() * sizeof(Node) + sizeof(*this);
}

std::int32_t TimerWheel::alloc_node() {
  if (free_ != kNil) {
    const std::int32_t n = free_;
    free_ = slab_[static_cast<std::size_t>(n)].next;
    return n;
  }
  slab_.push_back(Node{});
  return static_cast<std::int32_t>(slab_.size() - 1);
}

void TimerWheel::free_node(std::int32_t n) {
  Node& node = slab_[static_cast<std::size_t>(n)];
  node.cb = nullptr;
  node.level = -1;
  ++node.gen;  // invalidates every outstanding TimerId for this slot
  node.next = free_;
  free_ = n;
}

void TimerWheel::link(std::int32_t n, int level, int slot) {
  Node& node = slab_[static_cast<std::size_t>(n)];
  node.level = static_cast<std::int16_t>(level);
  node.slot = static_cast<std::int16_t>(slot);
  node.next = kNil;
  std::int32_t& head = (level == kLevels) ? due_head_ : slots_[level][slot];
  std::int32_t& tail = (level == kLevels) ? due_tail_ : tails_[level][slot];
  node.prev = tail;
  if (tail != kNil) {
    slab_[static_cast<std::size_t>(tail)].next = n;
  } else {
    head = n;
  }
  tail = n;
  if (level < kLevels) ++level_count_[level];
}

void TimerWheel::unlink(std::int32_t n) {
  Node& node = slab_[static_cast<std::size_t>(n)];
  const int level = node.level;
  std::int32_t& head = (level == kLevels) ? due_head_ : slots_[level][node.slot];
  std::int32_t& tail = (level == kLevels) ? due_tail_ : tails_[level][node.slot];
  if (node.prev != kNil) {
    slab_[static_cast<std::size_t>(node.prev)].next = node.next;
  } else {
    head = node.next;
  }
  if (node.next != kNil) {
    slab_[static_cast<std::size_t>(node.next)].prev = node.prev;
  } else {
    tail = node.prev;
  }
  node.prev = kNil;
  node.next = kNil;
  if (level < kLevels) --level_count_[level];
}

void TimerWheel::place(std::int32_t n) {
  Node& node = slab_[static_cast<std::size_t>(n)];
  std::uint64_t dt = node.deadline_tick;
  const std::uint64_t delta = dt - cur_tick_;  // callers ensure dt >= cur
  if (delta < kSpan1) {
    link(n, 0, static_cast<int>(dt & kSlotMask));
  } else if (delta < kSpan2) {
    link(n, 1, static_cast<int>((dt >> kSlotBits) & kSlotMask));
  } else if (delta < kSpan3) {
    link(n, 2, static_cast<int>((dt >> (2 * kSlotBits)) & kSlotMask));
  } else {
    if (delta >= kSpan4) {
      dt = cur_tick_ + kSpan4 - 1;  // clamp to the horizon (~49 days @1ms)
      node.deadline_tick = dt;
    }
    link(n, 3, static_cast<int>((dt >> (3 * kSlotBits)) & kSlotMask));
  }
}

TimerWheel::TimerId TimerWheel::arm(SimTime deadline, std::function<void()> cb) {
  const std::uint64_t dt = (deadline + cfg_.tick - 1) / cfg_.tick;
  const std::int32_t n = alloc_node();
  Node& node = slab_[static_cast<std::size_t>(n)];
  node.cb = std::move(cb);
  node.deadline_tick = dt;
  if (dt <= cur_tick_) {
    node.deadline_tick = cur_tick_;
    link(n, kLevels, 0);  // due list: fires on the next advance()
  } else {
    place(n);
  }
  ++armed_;
  ++stats_.armed_total;
  return (static_cast<std::uint64_t>(n) + 1) << 32 | node.gen;
}

bool TimerWheel::cancel(TimerId id) {
  if (id == 0) return false;
  const std::uint64_t idx64 = (id >> 32) - 1;
  if (idx64 >= slab_.size()) return false;
  const std::int32_t n = static_cast<std::int32_t>(idx64);
  Node& node = slab_[static_cast<std::size_t>(n)];
  if (node.level < 0 || node.gen != static_cast<std::uint32_t>(id)) {
    return false;  // already fired / cancelled / re-armed
  }
  unlink(n);
  free_node(n);
  --armed_;
  ++stats_.cancelled;
  return true;
}

void TimerWheel::cascade(int level, int slot) {
  std::int32_t n = slots_[level][slot];
  slots_[level][slot] = kNil;
  tails_[level][slot] = kNil;
  while (n != kNil) {
    Node& node = slab_[static_cast<std::size_t>(n)];
    const std::int32_t next = node.next;
    level_count_[level] -= 1;
    node.prev = kNil;
    node.next = kNil;
    place(n);
    ++stats_.cascaded;
    n = next;
  }
}

void TimerWheel::step_boundaries() {
  // cur_tick_ just crossed a multiple of 256: open the next level-1
  // window (and, at coarser boundaries, the windows above it —
  // coarsest first so entries trickle all the way down).
  const std::uint64_t t = cur_tick_;
  if ((t & (kSpan3 - 1)) == 0) {
    cascade(3, static_cast<int>((t >> (3 * kSlotBits)) & kSlotMask));
  }
  if ((t & (kSpan2 - 1)) == 0) {
    cascade(2, static_cast<int>((t >> (2 * kSlotBits)) & kSlotMask));
  }
  cascade(1, static_cast<int>((t >> kSlotBits) & kSlotMask));
}

void TimerWheel::fire_slot(int slot) {
  while (slots_[0][slot] != kNil) {
    const std::int32_t n = slots_[0][slot];
    Node& node = slab_[static_cast<std::size_t>(n)];
    std::function<void()> cb = std::move(node.cb);
    unlink(n);
    free_node(n);
    --armed_;
    ++stats_.fired;
    if (cb) cb();  // may arm/cancel freely: node already recycled
  }
}

void TimerWheel::fire_due() {
  while (due_head_ != kNil) {
    const std::int32_t n = due_head_;
    Node& node = slab_[static_cast<std::size_t>(n)];
    std::function<void()> cb = std::move(node.cb);
    unlink(n);
    free_node(n);
    --armed_;
    ++stats_.fired;
    if (cb) cb();
  }
}

void TimerWheel::advance(SimTime now) {
  const std::uint64_t target = now / cfg_.tick;
  fire_due();
  while (cur_tick_ < target) {
    if (level_count_[0] == 0 && due_head_ == kNil) {
      // Nothing can fire before the next level-1 window opens: jump.
      const std::uint64_t boundary = (cur_tick_ | kSlotMask) + 1;
      if (armed_ == 0 || boundary > target) {
        cur_tick_ = target;
        break;
      }
      cur_tick_ = boundary - 1;  // the normal step crosses the boundary
    }
    ++cur_tick_;
    if ((cur_tick_ & kSlotMask) == 0) step_boundaries();
    fire_slot(static_cast<int>(cur_tick_ & kSlotMask));
    fire_due();  // callbacks may arm immediately-due timers
  }
}

std::optional<SimTime> TimerWheel::next_deadline() const {
  if (armed_ == 0) return std::nullopt;
  if (due_head_ != kNil) return cur_tick_ * cfg_.tick;
  std::uint64_t best = ~std::uint64_t{0};
  for (int l = 0; l < kLevels; ++l) {
    if (level_count_[l] == 0) continue;
    const int shift = l * kSlotBits;
    const std::uint64_t pos = cur_tick_ >> shift;
    for (std::uint64_t k = 0; k < kSlots; ++k) {
      const int s = static_cast<int>((pos + k) & kSlotMask);
      if (slots_[l][s] == kNil) continue;
      std::uint64_t bound;
      if (k == 0) {
        // The current slot's window start is in the past; use the
        // exact minimum so the pump never spins on a stale bound.
        bound = ~std::uint64_t{0};
        for (std::int32_t n = slots_[l][s]; n != kNil;
             n = slab_[static_cast<std::size_t>(n)].next) {
          bound = std::min(bound,
                           slab_[static_cast<std::size_t>(n)].deadline_tick);
        }
      } else {
        bound = (pos + k) << shift;  // window start: conservative
      }
      best = std::min(best, bound);
      break;  // first nonempty slot per level is the earliest there
    }
  }
  if (best == ~std::uint64_t{0}) return std::nullopt;
  return best * cfg_.tick;
}

}  // namespace chunknet
