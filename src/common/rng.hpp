// Deterministic, fast PRNG (xoshiro256**) for simulations and tests.
//
// Everything stochastic in chunknet (loss, jitter, multipath lane
// selection, fault injection, property-test inputs) draws from this
// generator so runs are reproducible from a single seed — a requirement
// for regenerating the paper's experiments bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>

namespace chunknet {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // splitmix64 seeding, the reference initialization for xoshiro.
    std::uint64_t z = seed;
    for (auto& s : s_) {
      z += 0x9E3779B97F4A7C15ULL;
      std::uint64_t t = z;
      t = (t ^ (t >> 30)) * 0xBF58476D1CE4E5B9ULL;
      t = (t ^ (t >> 27)) * 0x94D049BB133111EBULL;
      s = t ^ (t >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  std::uint32_t u32() { return static_cast<std::uint32_t>(next() >> 32); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed with the given mean (for Poisson arrivals).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace chunknet
