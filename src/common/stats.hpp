// Lightweight statistics accumulators for benchmarks and experiments:
// running summary (mean/min/max/stddev) and a fixed-bucket histogram
// with percentile queries. The E3–E7 benches print these as the rows of
// the reproduced tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace chunknet {

/// Streaming summary statistics (Welford's algorithm for variance).
class Summary {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;
  double total() const { return sum_; }
  std::string to_string() const;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
  double sum_{0.0};
};

/// Exact-percentile sample set: stores all samples, sorts on demand.
/// Fine for the experiment scales here (<= millions of samples).
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  /// p in [0,100]. Returns 0 for an empty set.
  double percentile(double p);
  double median() { return percentile(50.0); }
  double p99() { return percentile(99.0); }

 private:
  std::vector<double> samples_;
  bool sorted_{false};
};

/// Renders a simple aligned text table; used by the bench harnesses so
/// every reproduced figure/table prints in a uniform format.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  std::string render() const;

  /// All rows as stored; rows()[0] is the header. Lets the bench JSON
  /// writer re-emit the exact table the text output showed.
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace chunknet
