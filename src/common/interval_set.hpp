// A set of disjoint half-open intervals [lo, hi) over uint64.
//
// This is the core data structure of virtual reassembly (DESIGN.md §2):
// the receiver tracks which sequence-number ranges of each PDU have been
// seen, detects duplicates/overlaps (which must be rejected before they
// reach an incremental checksum, §3.3 of the paper), and reports
// completion once [0, total) is covered.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace chunknet {

class IntervalSet {
 public:
  /// Outcome of attempting to add a range.
  enum class AddResult {
    kNew,        ///< range was disjoint from everything seen so far
    kDuplicate,  ///< range is entirely contained in already-seen data
    kOverlap,    ///< range partially overlaps seen data (suspicious)
  };

  /// Adds [lo, hi). Overlapping/duplicate ranges are *not* merged into
  /// the covered set a second time; the caller decides what to do.
  /// With merge_on_overlap (the default) the novel portion of a
  /// partially-overlapping range is still recorded — right for callers
  /// that copy the whole range regardless of the verdict. Callers that
  /// *reject* overlapping pieces (virtual reassembly: a partial overlap
  /// cannot be partially absorbed into the incremental code) must pass
  /// false so coverage only ever claims data that was actually kept;
  /// otherwise a rejected piece leaves a phantom-covered gap that
  /// completes the PDU with bytes missing.
  AddResult add(std::uint64_t lo, std::uint64_t hi,
                bool merge_on_overlap = true);

  /// True if [lo, hi) is entirely covered.
  bool covers(std::uint64_t lo, std::uint64_t hi) const;

  /// True if any part of [lo, hi) is covered.
  bool intersects(std::uint64_t lo, std::uint64_t hi) const;

  /// Total number of covered points.
  std::uint64_t covered() const { return covered_; }

  /// Number of disjoint intervals currently held (a measure of how
  /// fragmented the received data is).
  std::size_t pieces() const { return ivs_.size(); }

  bool empty() const { return ivs_.empty(); }

  /// Lowest point not covered starting from 0 (the next in-order byte).
  std::uint64_t first_gap() const;

  /// One past the highest covered point (0 when empty).
  std::uint64_t max_covered() const {
    return ivs_.empty() ? 0 : ivs_.rbegin()->second;
  }

  /// The uncovered runs within [lo, hi), in ascending order. This is
  /// what a selective-retransmission NAK carries: the receiver's
  /// virtual-reassembly tracker knows exactly which runs are missing.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps_within(
      std::uint64_t lo, std::uint64_t hi) const;

  void clear() {
    ivs_.clear();
    covered_ = 0;
  }

  std::string to_string() const;

 private:
  std::map<std::uint64_t, std::uint64_t> ivs_;  // lo -> hi
  std::uint64_t covered_{0};
};

}  // namespace chunknet
