// Pickable intrusive queue (the yaf "picq" idiom): a doubly-linked
// FIFO over a slab of nodes, where any node can be removed ("picked")
// from the middle in O(1) by handle. The flow tables use these for
// age/idle/holder ordering so eviction and idle scans touch ONLY the
// entries they evict — O(evicted), never O(live) — and re-touching a
// flow (move-to-back) is two link splices.
//
// Nodes carry one uint32 payload (a connection or TPDU id); the owner
// stores the returned handle next to its flow state. Handles are slab
// indices: stable across other nodes' insertion/removal, recycled via
// a free list after removal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chunknet {

class PickQueue {
 public:
  static constexpr std::int32_t kNil = -1;

  /// Appends `value`; returns the node handle.
  std::int32_t push_back(std::uint32_t value) {
    std::int32_t n;
    if (free_ != kNil) {
      n = free_;
      free_ = slab_[static_cast<std::size_t>(n)].next;
    } else {
      n = static_cast<std::int32_t>(slab_.size());
      slab_.push_back(Node{});
    }
    Node& node = slab_[static_cast<std::size_t>(n)];
    node.value = value;
    node.prev = tail_;
    node.next = kNil;
    node.linked = true;
    if (tail_ != kNil) {
      slab_[static_cast<std::size_t>(tail_)].next = n;
    } else {
      head_ = n;
    }
    tail_ = n;
    ++size_;
    return n;
  }

  /// Unlinks a node anywhere in the queue. The handle is recycled —
  /// the caller must forget it.
  void remove(std::int32_t n) {
    Node& node = slab_[static_cast<std::size_t>(n)];
    if (!node.linked) return;
    if (node.prev != kNil) {
      slab_[static_cast<std::size_t>(node.prev)].next = node.next;
    } else {
      head_ = node.next;
    }
    if (node.next != kNil) {
      slab_[static_cast<std::size_t>(node.next)].prev = node.prev;
    } else {
      tail_ = node.prev;
    }
    node.linked = false;
    node.next = free_;
    free_ = n;
    --size_;
  }

  /// Move-to-back in place (idle LRU touch); the handle stays valid.
  void touch(std::int32_t n) {
    if (tail_ == n) return;
    const std::uint32_t v = value(n);
    remove(n);
    // remove() recycled n to the free-list head, so push_back reuses
    // the same slot: the caller's handle stays correct.
    push_back(v);
  }

  std::int32_t front() const { return head_; }
  std::int32_t next(std::int32_t n) const {
    return slab_[static_cast<std::size_t>(n)].next;
  }
  std::uint32_t value(std::int32_t n) const {
    return slab_[static_cast<std::size_t>(n)].value;
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t memory_bytes() const { return slab_.capacity() * sizeof(Node); }

 private:
  struct Node {
    std::uint32_t value{0};
    std::int32_t prev{kNil};
    std::int32_t next{kNil};
    bool linked{false};
  };
  std::vector<Node> slab_;
  std::int32_t head_{kNil};
  std::int32_t tail_{kNil};
  std::int32_t free_{kNil};
  std::size_t size_{0};
};

}  // namespace chunknet
