#include "src/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace chunknet {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::to_string() const {
  return "n=" + TextTable::num(static_cast<std::uint64_t>(n_)) +
         " mean=" + TextTable::num(mean(), 3) +
         " min=" + TextTable::num(min(), 3) +
         " max=" + TextTable::num(max(), 3) +
         " sd=" + TextTable::num(stddev(), 3);
}

double Percentiles::percentile(double p) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t i = 0; i < rows_[r].size(); ++i) {
      out += rows_[r][i];
      if (i + 1 < rows_[r].size()) {
        out.append(widths[i] - rows_[r][i].size() + 2, ' ');
      }
    }
    out.push_back('\n');
    if (r == 0) {
      std::size_t total = 0;
      for (std::size_t i = 0; i < widths.size(); ++i) {
        total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
      }
      out.append(total, '-');
      out.push_back('\n');
    }
  }
  return out;
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  const int w = std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return std::string(buf, static_cast<std::size_t>(w));
}

std::string TextTable::num(std::uint64_t v) {
  char buf[32];
  const int w = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(v));
  return std::string(buf, static_cast<std::size_t>(w));
}

}  // namespace chunknet
