// A persistent pool of worker threads with condition-variable dispatch.
//
// The parallel chunk pipeline used to spawn fresh std::threads for
// every packet batch; at receive-path rates the spawn/join cost (tens
// of microseconds) dwarfs the work of a 1500-byte batch. This pool
// starts its threads once and reuses them for every `run` call: a call
// publishes the job under the mutex, wakes the workers, and waits on a
// completion count — the steady-state cost is two condition-variable
// round trips, no thread creation.
//
// Jobs receive (worker_index, worker_count) and must partition their
// own work (the chunk pipeline stripes by index, matching the paper's
// any-worker-any-chunk argument). `run` blocks until every worker has
// finished the job; jobs must not throw.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chunknet {

class WorkerPool {
 public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int size() const { return count_; }

  /// Runs fn(worker_index, size()) on every worker concurrently and
  /// blocks until all return. Serialized across callers: concurrent
  /// `run` calls queue on an internal mutex.
  void run(const std::function<void(int, int)>& fn);

  /// Jobs dispatched so far (each run() counts once).
  std::uint64_t jobs_run() const { return jobs_run_; }

  /// Process-wide pool sized to the hardware concurrency, started on
  /// first use. This is what the threads-count overloads of
  /// process_chunks_parallel dispatch on, so independent call sites
  /// share one set of workers instead of each spawning their own.
  static WorkerPool& shared();

 private:
  void worker_loop(int index);

  std::mutex callers_mu_;  ///< serializes run() callers

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* job_{nullptr};
  std::uint64_t generation_{0};
  int remaining_{0};
  bool stop_{false};
  std::uint64_t jobs_run_{0};

  int count_{0};  ///< fixed before any thread starts
  std::vector<std::thread> workers_;
};

}  // namespace chunknet
