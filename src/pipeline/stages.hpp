// Integrated Layer Processing stages (paper §1, [CLAR 90]).
//
// The paper's throughput argument: on a RISC workstation the memory
// bus is the bottleneck, so what matters is how many times each data
// byte crosses it. Buffering for reassembly moves data twice; immediate
// processing moves it once; and ILP further merges the per-layer
// processing loops (checksum, decryption, copy) into ONE pass so the
// data is read once however many functions run.
//
// The stages here are the order-tolerant protocol functions chunks
// enable ([FELD 92]): each operates on 32-bit words keyed by ABSOLUTE
// stream position, so a stage can run on any chunk in any order:
//   - Wsc2Stage: the incremental error-detection sum;
//   - XorCipherStage: a position-keyed per-block transform standing in
//     for the order-tolerant DES-CBC variant of [FELD 92] (DESIGN.md
//     substitution: same dataflow, per-word key derived from position);
//   - PlacementStage: the copy into application memory.
//
// `layered_process` runs the stages as separate passes (conventional
// layering: one loop per protocol function). `integrated_process` runs
// all stages inside a single loop (ILP). Bench E6/E10 measures the
// real memory-bandwidth difference between the two and multiplies it
// out with the touch accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/chunk/types.hpp"
#include "src/edc/wsc2.hpp"

namespace chunknet {

/// Position-keyed stream transform: word i is XORed with a key derived
/// from the absolute position i, so encryption/decryption work on
/// disordered fragments. An involution (applying twice restores data).
class XorCipherStage {
 public:
  explicit XorCipherStage(std::uint64_t key = 0x0BADC0DECAFEF00Dull)
      : key_(key) {}

  /// Transforms `words` 32-bit words in place, starting at absolute
  /// word position `pos`.
  void apply(std::uint32_t pos, std::span<std::uint8_t> bytes) const;

  /// Keystream word for one absolute position (splitmix-style mix).
  std::uint32_t keyword(std::uint32_t pos) const {
    std::uint64_t z = key_ + (static_cast<std::uint64_t>(pos) + 1) *
                                 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::uint32_t>(z >> 32);
  }

 private:
  std::uint64_t key_;
};

struct ProcessResult {
  Wsc2Code code;
  std::uint64_t bytes_read{0};    ///< bytes loaded from memory
  std::uint64_t bytes_written{0}; ///< bytes stored to memory
  std::uint64_t passes{0};        ///< loops over the data
};

/// Conventional layering: decipher pass, then checksum pass, then copy
/// pass — the data crosses the cache/bus once per stage.
ProcessResult layered_process(std::uint32_t pos,
                              std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out,
                              const XorCipherStage& cipher);

/// Integrated Layer Processing: one loop performs decipher + checksum +
/// placement word by word — the data is read once and written once.
ProcessResult integrated_process(std::uint32_t pos,
                                 std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out,
                                 const XorCipherStage& cipher);

/// ILP straight off the wire: runs the integrated loop on each data
/// chunk view of a parsed packet (decode_packet_views), deciphering and
/// checksumming while placing the payload at its C.SN offset in `app`.
/// The packet buffer is read once and application memory written once —
/// no intermediate materialization at all. Word positions (cipher key
/// and WSC-2 alike) are stream-absolute:
/// (C.SN − first_conn_sn)·SIZE/4 + word. Chunks the pipeline cannot
/// process (non-data TYPE, SIZE % 4 != 0, or placement outside `app`)
/// are skipped. The combined code is the XOR of the per-chunk codes
/// (WSC-2's combine property), so it is independent of chunk order.
ProcessResult integrated_process_views(std::span<const ChunkView> chunks,
                                       std::span<std::uint8_t> app,
                                       std::uint32_t first_conn_sn,
                                       const XorCipherStage& cipher);

/// Conventional-layering counterpart over the same views (one copy
/// pass, one decipher pass, one checksum pass per chunk), for the
/// bus-crossing comparison in bench E10.
ProcessResult layered_process_views(std::span<const ChunkView> chunks,
                                    std::span<std::uint8_t> app,
                                    std::uint32_t first_conn_sn,
                                    const XorCipherStage& cipher);

}  // namespace chunknet
