#include "src/pipeline/stages.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/gf/gf32.hpp"

namespace chunknet {

namespace {

std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

void XorCipherStage::apply(std::uint32_t pos,
                           std::span<std::uint8_t> bytes) const {
  const std::size_t words = bytes.size() / 4;
  std::uint8_t* p = bytes.data();
  for (std::size_t w = 0; w < words; ++w, p += 4) {
    store_be32(p, load_be32(p) ^ keyword(pos + static_cast<std::uint32_t>(w)));
  }
}

ProcessResult layered_process(std::uint32_t pos,
                              std::span<const std::uint8_t> in,
                              std::span<std::uint8_t> out,
                              const XorCipherStage& cipher) {
  assert(out.size() >= in.size());
  ProcessResult r;
  const std::size_t n = in.size();

  // Pass 1: copy into place (placement layer).
  std::memcpy(out.data(), in.data(), n);
  r.bytes_read += n;
  r.bytes_written += n;
  ++r.passes;

  // Pass 2: decipher in place (security layer).
  cipher.apply(pos, out.subspan(0, n));
  r.bytes_read += n;
  r.bytes_written += n;
  ++r.passes;

  // Pass 3: checksum (error-control layer).
  Wsc2Accumulator acc;
  acc.add_words(pos, out.subspan(0, n));
  r.bytes_read += n;
  ++r.passes;

  r.code = acc.value();
  return r;
}

ProcessResult integrated_process(std::uint32_t pos,
                                 std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out,
                                 const XorCipherStage& cipher) {
  assert(out.size() >= in.size());
  ProcessResult r;
  const std::size_t words = in.size() / 4;

  // One loop, three layers: load once, decipher, checksum, store. The
  // loop runs BACKWARDS so the checksum can use Horner's rule (one ×α
  // per word) — legal precisely because every stage is order-tolerant.
  std::uint32_t p0 = 0;
  std::uint32_t horner = 0;
  for (std::size_t w = words; w-- > 0;) {
    const std::uint32_t word =
        load_be32(in.data() + w * 4) ^
        cipher.keyword(pos + static_cast<std::uint32_t>(w));
    p0 ^= word;
    horner = gf32::times_alpha(horner) ^ word;
    store_be32(out.data() + w * 4, word);
  }
  r.bytes_read = in.size();
  r.bytes_written = in.size();
  r.passes = 1;
  r.code = {p0, gf32::mul(gf32::PowerLadder::shared().alpha_pow(pos), horner)};
  return r;
}

namespace {

// Shared per-chunk walk for the two view-based paths: `process` is
// called as process(word_pos, payload, destination_subspan).
template <typename Fn>
ProcessResult process_views(std::span<const ChunkView> chunks,
                            std::span<std::uint8_t> app,
                            std::uint32_t first_conn_sn, Fn&& process) {
  ProcessResult total;
  for (const ChunkView& c : chunks) {
    if (c.h.type != ChunkType::kData || c.h.size % 4 != 0) continue;
    const std::uint64_t off =
        static_cast<std::uint64_t>(c.h.conn.sn - first_conn_sn) * c.h.size;
    if (off + c.payload.size() > app.size()) continue;
    const auto pos = static_cast<std::uint32_t>(off / 4);
    const ProcessResult r =
        process(pos, c.payload, app.subspan(off, c.payload.size()));
    total.code.p0 ^= r.code.p0;
    total.code.p1 ^= r.code.p1;
    total.bytes_read += r.bytes_read;
    total.bytes_written += r.bytes_written;
    total.passes = std::max(total.passes, r.passes);
  }
  return total;
}

}  // namespace

ProcessResult integrated_process_views(std::span<const ChunkView> chunks,
                                       std::span<std::uint8_t> app,
                                       std::uint32_t first_conn_sn,
                                       const XorCipherStage& cipher) {
  return process_views(chunks, app, first_conn_sn,
                       [&](std::uint32_t pos, std::span<const std::uint8_t> in,
                           std::span<std::uint8_t> out) {
                         return integrated_process(pos, in, out, cipher);
                       });
}

ProcessResult layered_process_views(std::span<const ChunkView> chunks,
                                    std::span<std::uint8_t> app,
                                    std::uint32_t first_conn_sn,
                                    const XorCipherStage& cipher) {
  return process_views(chunks, app, first_conn_sn,
                       [&](std::uint32_t pos, std::span<const std::uint8_t> in,
                           std::span<std::uint8_t> out) {
                         return layered_process(pos, in, out, cipher);
                       });
}

}  // namespace chunknet
