#include "src/pipeline/worker_pool.hpp"

#include <algorithm>

namespace chunknet {

WorkerPool::WorkerPool(int threads) : count_(std::max(threads, 1)) {
  workers_.reserve(static_cast<std::size_t>(count_));
  for (int i = 0; i < count_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkerPool::run(const std::function<void(int, int)>& fn) {
  std::lock_guard<std::mutex> callers(callers_mu_);
  std::unique_lock<std::mutex> lk(mu_);
  job_ = &fn;
  ++generation_;
  remaining_ = size();
  ++jobs_run_;
  work_cv_.notify_all();
  done_cv_.wait(lk, [this] { return remaining_ == 0; });
  job_ = nullptr;
}

void WorkerPool::worker_loop(int index) {
  const int n = size();
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int, int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(index, n);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool(
      static_cast<int>(std::max(2u, std::thread::hardware_concurrency())));
  return pool;
}

}  // namespace chunknet
