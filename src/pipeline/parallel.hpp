// Parallel chunk processing (paper Summary + Appendix A + [MCAU 93b]).
//
// "Our experience with chunks has shown that they allow protocol
// implementations with more modularity and parallelism than
// implementations of protocols with more conventional data structures."
//
// Because every chunk is self-describing and every protocol function
// here is order-tolerant (placement by absolute SN, WSC-2 by absolute
// position), chunks can be processed by ANY worker in ANY order with no
// inter-worker coordination beyond the final parity combine:
//   - each worker takes a stripe of the chunk list;
//   - placement writes are disjoint (chunks cover disjoint SN ranges
//     once duplicates are rejected upstream);
//   - each worker keeps a private Wsc2Accumulator; accumulators XOR
//     together at the end (the `combine` property).
// This is the software analogue of the parallel VLSI assembly units of
// [MCAU 93b]. Bench A3 measures the scaling.
//
// Workers come from a persistent WorkerPool by default — per-packet
// batches are far too small to amortize a thread spawn — and the chunk
// list may be either owning Chunks or zero-copy ChunkViews parsed
// straight out of a packet buffer (decode_packet_views), so the only
// payload copy on this path is the placement itself.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/chunk/types.hpp"
#include "src/edc/wsc2.hpp"
#include "src/obs/obs.hpp"
#include "src/pipeline/worker_pool.hpp"

namespace chunknet {

struct ParallelProcessResult {
  /// WSC-2 over the data region only (positions = T.SN·words/element),
  /// identical to the serial TpduInvariant's data contribution.
  Wsc2Code data_code;
  std::uint64_t bytes_placed{0};
  int threads_used{1};
};

/// How workers are provisioned for the threads-count overloads.
enum class WorkerDispatch {
  kPooled,  ///< dispatch on WorkerPool::shared() (the default)
  kSpawn,   ///< spawn and join fresh std::threads per call (the old
            ///< behaviour; kept as bench A3's baseline)
};

/// Processes data chunks of ONE TPDU with `threads` workers: places each
/// chunk's payload into `app` at C.SN·SIZE and accumulates the WSC-2
/// data contribution. Chunks must be duplicate-free (run them through
/// virtual reassembly first) and SIZE must be a multiple of 4.
/// `threads <= 1` runs inline (the baseline for the scaling bench).
/// When `obs` is given, workers record "parallel.chunks_processed",
/// "parallel.bytes_placed" and "parallel.chunks_skipped" counters
/// concurrently (the sharded cells are the lock-free hot path),
/// kChunkPlaced trace events, and kChunkSkipped events for chunks the
/// pipeline cannot process (non-data TYPE or SIZE % 4 != 0).
ParallelProcessResult process_chunks_parallel(
    std::span<const Chunk> chunks, std::span<std::uint8_t> app,
    std::uint32_t first_conn_sn, int threads, ObsContext* obs = nullptr,
    WorkerDispatch dispatch = WorkerDispatch::kPooled);

/// Zero-copy variant over packet-buffer views; identical semantics and
/// bit-identical results (the placement copy is the only payload touch).
ParallelProcessResult process_chunks_parallel(
    std::span<const ChunkView> chunks, std::span<std::uint8_t> app,
    std::uint32_t first_conn_sn, int threads, ObsContext* obs = nullptr,
    WorkerDispatch dispatch = WorkerDispatch::kPooled);

/// Dispatches on an explicit pool (all of its workers participate).
ParallelProcessResult process_chunks_parallel(std::span<const Chunk> chunks,
                                              std::span<std::uint8_t> app,
                                              std::uint32_t first_conn_sn,
                                              WorkerPool& pool,
                                              ObsContext* obs = nullptr);

ParallelProcessResult process_chunks_parallel(std::span<const ChunkView> chunks,
                                              std::span<std::uint8_t> app,
                                              std::uint32_t first_conn_sn,
                                              WorkerPool& pool,
                                              ObsContext* obs = nullptr);

}  // namespace chunknet
