// Parallel chunk processing (paper Summary + Appendix A + [MCAU 93b]).
//
// "Our experience with chunks has shown that they allow protocol
// implementations with more modularity and parallelism than
// implementations of protocols with more conventional data structures."
//
// Because every chunk is self-describing and every protocol function
// here is order-tolerant (placement by absolute SN, WSC-2 by absolute
// position), chunks can be processed by ANY worker in ANY order with no
// inter-worker coordination beyond the final parity combine:
//   - each worker takes a stripe of the chunk list;
//   - placement writes are disjoint (chunks cover disjoint SN ranges
//     once duplicates are rejected upstream);
//   - each worker keeps a private Wsc2Accumulator; accumulators XOR
//     together at the end (the `combine` property).
// This is the software analogue of the parallel VLSI assembly units of
// [MCAU 93b]. Bench A3 measures the scaling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/chunk/types.hpp"
#include "src/edc/wsc2.hpp"
#include "src/obs/obs.hpp"

namespace chunknet {

struct ParallelProcessResult {
  /// WSC-2 over the data region only (positions = T.SN·words/element),
  /// identical to the serial TpduInvariant's data contribution.
  Wsc2Code data_code;
  std::uint64_t bytes_placed{0};
  int threads_used{1};
};

/// Processes data chunks of ONE TPDU with `threads` workers: places each
/// chunk's payload into `app` at C.SN·SIZE and accumulates the WSC-2
/// data contribution. Chunks must be duplicate-free (run them through
/// virtual reassembly first) and SIZE must be a multiple of 4.
/// `threads <= 1` runs inline (the baseline for the scaling bench).
/// When `obs` is given, workers record "parallel.chunks_processed" and
/// "parallel.bytes_placed" counters concurrently (the sharded cells are
/// the lock-free hot path) and kChunkPlaced trace events.
ParallelProcessResult process_chunks_parallel(std::span<const Chunk> chunks,
                                              std::span<std::uint8_t> app,
                                              std::uint32_t first_conn_sn,
                                              int threads,
                                              ObsContext* obs = nullptr);

}  // namespace chunknet
