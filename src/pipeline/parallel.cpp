#include "src/pipeline/parallel.hpp"

#include <algorithm>
#include <thread>

namespace chunknet {

namespace {

struct WorkerOutput {
  Wsc2Accumulator acc;
  std::uint64_t bytes{0};
};

struct WorkerObs {
  Counter* chunks_processed{nullptr};
  Counter* bytes_placed{nullptr};
  Counter* chunks_skipped{nullptr};
  ChunkTracer* tracer{nullptr};
};

// Striped worker body, shared by the owning-Chunk and zero-copy
// ChunkView paths (both expose .h and a contiguous .payload).
template <typename ChunkLike>
void process_stripe(std::span<const ChunkLike> chunks, std::size_t first,
                    std::size_t stride, std::span<std::uint8_t> app,
                    std::uint32_t first_conn_sn, WorkerObs wobs,
                    WorkerOutput* out) {
  for (std::size_t i = first; i < chunks.size(); i += stride) {
    const ChunkLike& c = chunks[i];
    if (c.h.type != ChunkType::kData || c.h.size % 4 != 0) {
      // Not silently: the pipeline cannot place or checksum this chunk,
      // and obs_report attributes the skip.
      obs_add(wobs.chunks_skipped);
      if (wobs.tracer != nullptr) {
        TraceEvent e;  // no simulated clock here: t = 0
        e.kind = TraceEventKind::kChunkSkipped;
        e.tpdu_id = c.h.tpdu.id;
        e.conn_sn = c.h.conn.sn;
        e.len = c.h.len;
        e.aux = c.h.type != ChunkType::kData ? 1 : 2;
        wobs.tracer->record(e);
      }
      continue;
    }
    obs_add(wobs.chunks_processed);

    // Placement: disjoint ranges, no locks needed.
    const std::uint64_t off =
        static_cast<std::uint64_t>(c.h.conn.sn - first_conn_sn) * c.h.size;
    if (off + c.payload.size() <= app.size()) {
      std::copy(c.payload.begin(), c.payload.end(),
                app.begin() + static_cast<std::ptrdiff_t>(off));
      out->bytes += c.payload.size();
      obs_add(wobs.bytes_placed, c.payload.size());
      if (wobs.tracer != nullptr) {
        TraceEvent e;  // no simulated clock here: t = 0
        e.kind = TraceEventKind::kChunkPlaced;
        e.tpdu_id = c.h.tpdu.id;
        e.conn_sn = c.h.conn.sn;
        e.len = c.h.len;
        wobs.tracer->record(e);
      }
    }

    // Error detection: private accumulator, absolute positions.
    const std::uint32_t words_per_element = c.h.size / 4;
    out->acc.add_words(c.h.tpdu.sn * words_per_element, c.payload);
  }
}

WorkerObs resolve_obs(ObsContext* obs) {
  // Resolve handles once, before any worker runs: registry lookup
  // takes a lock, the per-cell adds the workers do are lock-free.
  WorkerObs wobs;
  if (obs != nullptr && obs->metrics != nullptr) {
    wobs.chunks_processed = &obs->metrics->counter("parallel.chunks_processed");
    wobs.bytes_placed = &obs->metrics->counter("parallel.bytes_placed");
    wobs.chunks_skipped = &obs->metrics->counter("parallel.chunks_skipped");
  }
  if (obs != nullptr) wobs.tracer = obs->tracer;
  return wobs;
}

template <typename ChunkLike>
ParallelProcessResult combine_outputs(std::span<WorkerOutput> outputs, int n) {
  ParallelProcessResult result;
  Wsc2Accumulator combined;
  for (const WorkerOutput& out : outputs) {
    combined.combine(out.acc);
    result.bytes_placed += out.bytes;
  }
  result.data_code = combined.value();
  result.threads_used = n;
  return result;
}

template <typename ChunkLike>
ParallelProcessResult process_impl(std::span<const ChunkLike> chunks,
                                   std::span<std::uint8_t> app,
                                   std::uint32_t first_conn_sn, int threads,
                                   ObsContext* obs, WorkerDispatch dispatch,
                                   WorkerPool* pool) {
  const WorkerObs wobs = resolve_obs(obs);

  if (pool != nullptr) threads = pool->size();
  if (threads <= 1 || chunks.size() < 2) {
    WorkerOutput out;
    process_stripe(chunks, 0, 1, app, first_conn_sn, wobs, &out);
    ParallelProcessResult result;
    result.data_code = out.acc.value();
    result.bytes_placed = out.bytes;
    result.threads_used = 1;
    return result;
  }

  if (pool == nullptr && dispatch == WorkerDispatch::kPooled) {
    pool = &WorkerPool::shared();
  }

  const int n = std::min<int>(
      pool != nullptr ? std::min(threads, pool->size()) : threads,
      static_cast<int>(chunks.size()));
  std::vector<WorkerOutput> outputs(static_cast<std::size_t>(n));

  if (pool != nullptr) {
    pool->run([&](int worker, int) {
      if (worker < n) {
        process_stripe(chunks, static_cast<std::size_t>(worker),
                       static_cast<std::size_t>(n), app, first_conn_sn, wobs,
                       &outputs[static_cast<std::size_t>(worker)]);
      }
    });
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) {
      workers.emplace_back(process_stripe<ChunkLike>, chunks,
                           static_cast<std::size_t>(t),
                           static_cast<std::size_t>(n), app, first_conn_sn,
                           wobs, &outputs[static_cast<std::size_t>(t)]);
    }
    for (auto& w : workers) w.join();
  }

  return combine_outputs<ChunkLike>(outputs, n);
}

}  // namespace

ParallelProcessResult process_chunks_parallel(std::span<const Chunk> chunks,
                                              std::span<std::uint8_t> app,
                                              std::uint32_t first_conn_sn,
                                              int threads, ObsContext* obs,
                                              WorkerDispatch dispatch) {
  return process_impl(chunks, app, first_conn_sn, threads, obs, dispatch,
                      nullptr);
}

ParallelProcessResult process_chunks_parallel(std::span<const ChunkView> chunks,
                                              std::span<std::uint8_t> app,
                                              std::uint32_t first_conn_sn,
                                              int threads, ObsContext* obs,
                                              WorkerDispatch dispatch) {
  return process_impl(chunks, app, first_conn_sn, threads, obs, dispatch,
                      nullptr);
}

ParallelProcessResult process_chunks_parallel(std::span<const Chunk> chunks,
                                              std::span<std::uint8_t> app,
                                              std::uint32_t first_conn_sn,
                                              WorkerPool& pool,
                                              ObsContext* obs) {
  return process_impl(chunks, app, first_conn_sn, pool.size(), obs,
                      WorkerDispatch::kPooled, &pool);
}

ParallelProcessResult process_chunks_parallel(std::span<const ChunkView> chunks,
                                              std::span<std::uint8_t> app,
                                              std::uint32_t first_conn_sn,
                                              WorkerPool& pool,
                                              ObsContext* obs) {
  return process_impl(chunks, app, first_conn_sn, pool.size(), obs,
                      WorkerDispatch::kPooled, &pool);
}

}  // namespace chunknet
