// Discrete-event network simulator core.
//
// This is the substitute for the paper's AURORA testbed (DESIGN.md §4):
// a deterministic event-driven simulation whose links reproduce the
// disordering processes the paper describes — loss-induced gaps (§1),
// multipath skew across parallel lanes ("obtaining gigabit rates on a
// SONET OC-3 ATM network requires using eight 155 Mbps ATM connections
// in parallel"), route changes, and duplication. All randomness comes
// from one seeded Rng, so experiments replay exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/aligned.hpp"

namespace chunknet {

/// Simulated time in nanoseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// A packet in flight: opaque bytes plus bookkeeping for latency traces.
/// The bytes are PacketBytes (64-byte aligned) so pooled buffers travel
/// through the simulator without losing their alignment guarantee.
struct SimPacket {
  PacketBytes bytes;
  std::uint64_t id{0};         ///< unique per simulator (trace key)
  SimTime created_at{0};       ///< first transmission time
  int hops{0};                 ///< links traversed so far
};

/// Minimal event-driven scheduler: stable FIFO order among events at
/// the same timestamp.
class Simulator {
 public:
  SimTime now() const { return now_; }

  void schedule_at(SimTime t, std::function<void()> fn);
  void schedule_in(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs until the event queue drains or `deadline` passes.
  /// Returns the number of events executed.
  std::uint64_t run(SimTime deadline = ~SimTime{0});

  /// True if any event remains.
  bool pending() const { return !events_.empty(); }

  /// Timestamp of the earliest pending event (the wake-up bound a
  /// real-time pump needs to turn into an epoll timeout). Meaningless
  /// when nothing is pending — check pending() first.
  SimTime next_event_at() const {
    return events_.empty() ? ~SimTime{0} : events_.top().t;
  }

  /// Advances the clock without executing anything — how a real-time
  /// pump tells the simulator "wall clock moved" so that schedule_in /
  /// arm_in callers see fresh time even when no event fired. Call only
  /// after run(t) has drained every event <= t; never moves backwards.
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

  std::uint64_t next_packet_id() { return ++packet_counter_; }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  SimTime now_{0};
  std::uint64_t seq_counter_{0};
  std::uint64_t packet_counter_{0};
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

/// Anything that can receive packets from a link.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_packet(SimPacket pkt) = 0;
};

}  // namespace chunknet
