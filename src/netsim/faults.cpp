#include "src/netsim/faults.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "src/chunk/codec.hpp"
#include "src/chunk/types.hpp"

namespace chunknet {

GilbertElliottConfig GilbertElliottConfig::with_mean_loss(
    double mean_loss, double mean_burst_packets) {
  GilbertElliottConfig cfg;
  cfg.loss_good = 0.0;
  cfg.loss_bad = 1.0;
  if (mean_loss <= 0.0) {
    cfg.p_good_to_bad = 0.0;
    cfg.p_bad_to_good = 1.0;
    return cfg;
  }
  if (mean_burst_packets < 1.0) mean_burst_packets = 1.0;
  // pi_bad = p/(p+r) = mean_loss with r = 1/burst ⇒ p = r·L/(1−L).
  cfg.p_bad_to_good = 1.0 / mean_burst_packets;
  if (mean_loss >= 1.0) {
    cfg.p_good_to_bad = 1.0;
    cfg.p_bad_to_good = 0.0;
    return cfg;
  }
  cfg.p_good_to_bad = cfg.p_bad_to_good * mean_loss / (1.0 - mean_loss);
  return cfg;
}

bool GilbertElliott::lose() {
  if (bad_) {
    if (rng_->chance(cfg_.p_bad_to_good)) bad_ = false;
  } else if (rng_->chance(cfg_.p_good_to_bad)) {
    bad_ = true;
    ++bursts_;
  }
  return rng_->chance(bad_ ? cfg_.loss_bad : cfg_.loss_good);
}

FaultInjector::FaultInjector(Simulator& sim, FaultConfig cfg, PacketSink& sink,
                             Rng& rng)
    : sim_(sim),
      cfg_(cfg),
      sink_(sink),
      rng_(rng),
      ge_(cfg.gilbert_elliott, rng) {
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    const std::string p = "faults" + std::to_string(cfg_.obs_site) + ".";
    auto& reg = *cfg_.obs->metrics;
    m_.offered = &reg.counter(p + "offered");
    m_.delivered = &reg.counter(p + "delivered");
    m_.dropped_loss =
        &reg.counter(p + "dropped_loss");
    m_.dropped_blackout =
        &reg.counter(p + "dropped_blackout");
    m_.payload_corrupted =
        &reg.counter(p + "payload_corrupted");
    m_.header_corrupted =
        &reg.counter(p + "header_corrupted");
  }
}

bool FaultInjector::in_blackout() const {
  if (cfg_.blackout_interval == 0 || cfg_.blackout_duration == 0) return false;
  return sim_.now() % cfg_.blackout_interval < cfg_.blackout_duration;
}

void FaultInjector::on_packet(SimPacket pkt) {
  ++stats_.offered;
  obs_add(m_.offered);
  if (in_blackout()) {
    ++stats_.dropped_blackout;
    obs_add(m_.dropped_blackout);
    return;
  }
  if (ge_.lose()) {
    stats_.loss_bursts = ge_.bursts();
    ++stats_.dropped_loss;
    obs_add(m_.dropped_loss);
    return;
  }
  stats_.loss_bursts = ge_.bursts();
  const std::size_t header_end =
      std::min(cfg_.header_region_bytes, pkt.bytes.size());
  if (cfg_.header_flip_rate > 0 && header_end > 0 &&
      rng_.chance(cfg_.header_flip_rate)) {
    pkt.bytes[rng_.below(header_end)] ^= static_cast<std::uint8_t>(
        1u << rng_.below(8));
    ++stats_.header_corrupted;
    obs_add(m_.header_corrupted);
  }
  if (cfg_.payload_flip_rate > 0 && pkt.bytes.size() > header_end &&
      rng_.chance(cfg_.payload_flip_rate)) {
    const std::size_t at =
        header_end + rng_.below(pkt.bytes.size() - header_end);
    pkt.bytes[at] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
    ++stats_.payload_corrupted;
    obs_add(m_.payload_corrupted);
  }
  ++stats_.delivered;
  obs_add(m_.delivered);
  sink_.on_packet(std::move(pkt));
}

const FaultInjector::Stats& FaultInjector::stats() const {
  stats_.loss_bursts = ge_.bursts();
  return stats_;
}

// ------------------------------------------------- misbehaving relay

const char* to_string(ChunkField f) {
  switch (f) {
    case ChunkField::kType: return "TYPE";
    case ChunkField::kSize: return "SIZE";
    case ChunkField::kLen: return "LEN";
    case ChunkField::kCid: return "C.ID";
    case ChunkField::kCsn: return "C.SN";
    case ChunkField::kCst: return "C.ST";
    case ChunkField::kTid: return "T.ID";
    case ChunkField::kTsn: return "T.SN";
    case ChunkField::kTst: return "T.ST";
    case ChunkField::kXid: return "X.ID";
    case ChunkField::kXsn: return "X.SN";
    case ChunkField::kXst: return "X.ST";
    case ChunkField::kPayload: return "Data";
  }
  return "?";
}

std::pair<std::size_t, std::uint8_t> chunk_field_fault(ChunkField f) {
  // Wire layout of an encoded chunk (codec.cpp): type(1) flags(1)
  // size(2) len(2) C.ID(4) C.SN(4) T.ID(4) T.SN(4) X.ID(4) X.SN(4)
  // spare(4) payload. SN/ID rewrites hit a HIGH-order byte: a relay
  // that rewrites a framing field rewrites the whole field, and the
  // misdirected value then lies far outside any placement window, so
  // detection (not silent misplacement) is what's under test.
  switch (f) {
    case ChunkField::kType: return {0, 0x03};
    case ChunkField::kCst: return {1, 0x01};
    case ChunkField::kTst: return {1, 0x02};
    case ChunkField::kXst: return {1, 0x04};
    case ChunkField::kSize: return {3, 0x06};
    case ChunkField::kLen: return {5, 0x05};
    case ChunkField::kCid: return {6, 0x10};
    case ChunkField::kCsn: return {10, 0x10};
    case ChunkField::kTid: return {14, 0x10};
    case ChunkField::kTsn: return {18, 0x10};
    case ChunkField::kXid: return {22, 0x10};
    case ChunkField::kXsn: return {26, 0x10};
    case ChunkField::kPayload: return {kChunkHeaderBytes, 0xFF};
  }
  return {0, 0};
}

namespace {

/// Byte offsets (within `bytes`) of each data chunk's first header byte.
std::vector<std::size_t> data_chunk_offsets(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::size_t> offs;
  if (bytes.size() < kPacketHeaderBytes || bytes[0] != kPacketMagic) {
    return offs;
  }
  std::size_t at = kPacketHeaderBytes;
  while (at + kChunkHeaderBytes <= bytes.size()) {
    const std::uint8_t type = bytes[at];
    if (type == static_cast<std::uint8_t>(ChunkType::kTerminator)) break;
    if (type > static_cast<std::uint8_t>(ChunkType::kAck)) break;
    const std::size_t size =
        (static_cast<std::size_t>(bytes[at + 2]) << 8) | bytes[at + 3];
    const std::size_t len =
        (static_cast<std::size_t>(bytes[at + 4]) << 8) | bytes[at + 5];
    const std::size_t payload = size * len;
    if (at + kChunkHeaderBytes + payload > bytes.size()) break;
    if (type == static_cast<std::uint8_t>(ChunkType::kData)) {
      offs.push_back(at);
    }
    at += kChunkHeaderBytes + payload;
  }
  return offs;
}

}  // namespace

bool rewrite_chunk_field(std::span<std::uint8_t> bytes, ChunkField field,
                         Rng& rng) {
  const std::vector<std::size_t> offs = data_chunk_offsets(bytes);
  if (offs.empty()) return false;
  const std::size_t chunk_off = offs[rng.below(offs.size())];
  const auto [field_off, mask] = chunk_field_fault(field);
  const std::size_t at = chunk_off + field_off;
  if (at >= bytes.size()) return false;
  bytes[at] ^= mask;
  return true;
}

RelayFn header_rewriting_relay(HeaderRewriteConfig cfg, Rng& rng,
                               HeaderRewriteStats* stats) {
  return [cfg, &rng, stats](PacketBytes bytes, std::size_t /*egress_mtu*/) {
    if (stats != nullptr) {
      ++stats->packets_in;
      ++stats->packets_out;
    }
    if (cfg.rewrite_rate > 0 && rng.chance(cfg.rewrite_rate) &&
        rewrite_chunk_field(std::span<std::uint8_t>(bytes.data(),
                                                    bytes.size()),
                            cfg.field, rng)) {
      if (stats != nullptr) {
        ++stats->rewrites;
        ++stats->by_field[static_cast<std::size_t>(cfg.field)];
      }
    }
    std::vector<PacketBytes> out;
    out.push_back(std::move(bytes));
    return out;
  };
}

}  // namespace chunknet
