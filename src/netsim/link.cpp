#include "src/netsim/link.hpp"

#include <algorithm>

namespace chunknet {

Link::Link(Simulator& sim, LinkConfig cfg, PacketSink& sink, Rng& rng)
    : sim_(sim),
      cfg_(cfg),
      sink_(sink),
      rng_(rng),
      lane_free_at_(static_cast<std::size_t>(std::max(cfg.lanes, 1)), 0),
      lane_extra_skew_(static_cast<std::size_t>(std::max(cfg.lanes, 1)), 0) {
  if (cfg_.route_flap_interval > 0) {
    next_flap_ = cfg_.route_flap_interval;
  }
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    MetricsRegistry& reg = *cfg_.obs->metrics;
    const std::string p = "link" + std::to_string(cfg_.obs_site) + ".";
    m_.offered = &reg.counter(p + "offered");
    m_.delivered = &reg.counter(p + "delivered");
    m_.lost = &reg.counter(p + "lost");
    m_.duplicated = &reg.counter(p + "duplicated");
    m_.oversize_dropped = &reg.counter(p + "oversize_dropped");
    m_.queue_dropped = &reg.counter(p + "queue_dropped");
    m_.bytes_delivered = &reg.counter(p + "bytes_delivered");
  }
}

void Link::trace(TraceEventKind kind, const SimPacket& pkt,
                 std::uint64_t aux) const {
  if (cfg_.obs == nullptr || cfg_.obs->tracer == nullptr) return;
  TraceEvent e;
  e.t = sim_.now();
  e.kind = kind;
  e.site = cfg_.obs_site;
  e.packet_id = pkt.id;
  e.aux = aux;
  cfg_.obs->tracer->record(e);
}

void Link::maybe_flap() {
  if (cfg_.route_flap_interval == 0 || sim_.now() < next_flap_) return;
  // A route change: each lane's path length changes abruptly, so
  // packets already "in flight" on the old path can arrive after
  // packets sent later on the new, shorter path.
  for (auto& skew : lane_extra_skew_) {
    skew = rng_.below(cfg_.route_flap_magnitude + 1);
  }
  next_flap_ = sim_.now() + cfg_.route_flap_interval;
}

void Link::send(SimPacket pkt) {
  ++stats_.offered;
  obs_add(m_.offered);
  if (pkt.bytes.size() > cfg_.mtu) {
    ++stats_.oversize_dropped;
    obs_add(m_.oversize_dropped);
    trace(TraceEventKind::kOversizeDropped, pkt, pkt.bytes.size());
    return;
  }
  if (cfg_.queue_limit_bytes != 0) {
    const std::size_t backlog = backlog_bytes();
    if (backlog > cfg_.queue_limit_bytes) {
      ++stats_.queue_dropped;
      obs_add(m_.queue_dropped);
      trace(TraceEventKind::kQueueDropped, pkt, backlog);
      return;
    }
  }
  maybe_flap();
  if (rng_.chance(cfg_.loss_rate)) {
    ++stats_.lost;
    obs_add(m_.lost);
    trace(TraceEventKind::kLinkDropped, pkt);
    return;
  }

  // Stripe across lanes round-robin (how parallel 155 Mbps ATM
  // connections aggregate to higher rates). Each lane serializes at
  // rate/lanes and adds its skew — the reordering generator.
  const LaneSlot slot = occupy_lane(pkt.bytes.size());
  SimTime arrive = slot.done + cfg_.prop_delay +
                   static_cast<SimTime>(slot.lane) * cfg_.lane_skew +
                   lane_extra_skew_[slot.lane];
  if (cfg_.jitter > 0) arrive += rng_.below(cfg_.jitter + 1);

  trace(TraceEventKind::kLinkEnqueued, pkt, slot.lane);

  const bool dup = rng_.chance(cfg_.dup_rate);
  deliver_copy(pkt, arrive);
  if (dup) {
    ++stats_.duplicated;
    obs_add(m_.duplicated);
    trace(TraceEventKind::kLinkDuplicated, pkt);
    // The duplicate is a real transmission: it occupies a lane for its
    // full serialization time (duplicated traffic consumes capacity),
    // then wanders in late via a longer path.
    const LaneSlot dup_slot = occupy_lane(pkt.bytes.size());
    const SimTime dup_arrive =
        dup_slot.done + cfg_.prop_delay +
        static_cast<SimTime>(dup_slot.lane) * cfg_.lane_skew +
        lane_extra_skew_[dup_slot.lane] + cfg_.prop_delay / 2 +
        rng_.below(kMillisecond);
    deliver_copy(pkt, dup_arrive);
  }
}

std::size_t Link::backlog_bytes() const {
  const SimTime now = sim_.now();
  SimTime busy = 0;
  for (const SimTime free_at : lane_free_at_) {
    if (free_at > now) busy += free_at - now;
  }
  const double lane_rate =
      cfg_.rate_bps / static_cast<double>(cfg_.lanes > 1 ? cfg_.lanes : 1);
  return static_cast<std::size_t>(static_cast<double>(busy) * lane_rate /
                                  8.0 / 1e9);
}

Link::LaneSlot Link::occupy_lane(std::size_t bytes) {
  const std::size_t lane = next_lane_;
  next_lane_ = (next_lane_ + 1) % lane_free_at_.size();
  const SimTime tx = serialize_time(bytes);
  const SimTime start = std::max(sim_.now(), lane_free_at_[lane]);
  lane_free_at_[lane] = start + tx;
  return {lane, start + tx};
}

void Link::deliver_copy(const SimPacket& pkt, SimTime at) {
  SimPacket copy = pkt;
  ++copy.hops;
  sim_.schedule_at(at, [this, p = std::move(copy)]() mutable {
    ++stats_.delivered;
    stats_.bytes_delivered += p.bytes.size();
    obs_add(m_.delivered);
    obs_add(m_.bytes_delivered, p.bytes.size());
    trace(TraceEventKind::kLinkDelivered, p);
    sink_.on_packet(std::move(p));
  });
}

}  // namespace chunknet
