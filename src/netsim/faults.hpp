// Hostile-network fault injection.
//
// The plain Link models benign impairments (i.i.d. loss, jitter, lane
// skew); this module models the *hostile* regimes the paper's claims
// must survive to matter:
//
//   - Gilbert–Elliott bursty loss: a two-state Markov chain whose bad
//     state drops packets in runs, the classic model of fading and
//     congestion bursts (cf. "Sorting Reordered Packets with Interrupt
//     Coalescing" in PAPERS.md — reordering and loss arrive bursty in
//     real networks, exactly where labelled data should win);
//   - bit-flip corruption: per-packet payload or header byte flips, the
//     wire-level noise Table 1's detection matrix classifies;
//   - blackout windows: periodic total outages (route withdrawals,
//     partitions) during which every packet dies;
//   - a misbehaving relay that REWRITES chunk framing fields in flight
//     — the in-network header rewriting that only an end-to-end
//     invariant (WSC-2 over the fragmentation-invariant layout) can
//     catch, driving the Table 1 corruption matrix through the full
//     transport instead of only through unit-level classification.
//
// A FaultInjector is a PacketSink decorator: place it between a link
// and its sink (or between a sender and the link) and every packet
// runs the loss → blackout → corruption gauntlet before delivery.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/rng.hpp"
#include "src/netsim/router.hpp"
#include "src/netsim/simulator.hpp"
#include "src/obs/obs.hpp"

namespace chunknet {

/// Two-state Markov loss process. State transitions are evaluated once
/// per packet; the stationary bad-state probability is p/(p+r) and the
/// mean burst length 1/r packets, so e.g. {p=0.0125, r=0.25} gives 5%
/// average loss in bursts averaging 4 packets.
struct GilbertElliottConfig {
  double p_good_to_bad{0.0};  ///< per-packet P(good → bad)
  double p_bad_to_good{0.25};  ///< per-packet P(bad → good)
  double loss_good{0.0};       ///< drop probability in the good state
  double loss_bad{1.0};        ///< drop probability in the bad state

  /// Average long-run loss rate of the chain.
  double mean_loss() const {
    const double denom = p_good_to_bad + p_bad_to_good;
    if (denom <= 0.0) return loss_good;
    const double pi_bad = p_good_to_bad / denom;
    return pi_bad * loss_bad + (1.0 - pi_bad) * loss_good;
  }

  /// A chain with the given mean loss rate and mean burst length (in
  /// packets), losing everything while bad and nothing while good.
  static GilbertElliottConfig with_mean_loss(double mean_loss,
                                             double mean_burst_packets);
};

/// Standalone Gilbert–Elliott chain (also used by property tests).
class GilbertElliott {
 public:
  GilbertElliott(GilbertElliottConfig cfg, Rng& rng)
      : cfg_(cfg), rng_(&rng) {}

  /// Advances the chain one packet; returns true if that packet is lost.
  bool lose();

  bool bad() const { return bad_; }
  std::uint64_t bursts() const { return bursts_; }

 private:
  GilbertElliottConfig cfg_;
  Rng* rng_;
  bool bad_{false};
  std::uint64_t bursts_{0};  ///< good → bad transitions
};

struct FaultConfig {
  GilbertElliottConfig gilbert_elliott{};
  /// Per-packet probability of XOR-flipping one byte in the payload
  /// region (after envelope + first chunk header — deep corruption the
  /// end-to-end code must catch).
  double payload_flip_rate{0.0};
  /// Per-packet probability of XOR-flipping one byte in the header
  /// region (the first `header_region_bytes`).
  double header_flip_rate{0.0};
  /// Bytes at the front of the packet treated as "header" for
  /// header_flip_rate. Defaults to the chunk envelope + one canonical
  /// chunk header; set to the wire format's own header size for the
  /// baseline transports.
  std::size_t header_region_bytes{38};  // kPacketHeaderBytes + kChunkHeaderBytes
  /// Periodic total outage: every `blackout_interval` of simulated
  /// time, all packets die for the first `blackout_duration` of the
  /// cycle. 0 disables.
  SimTime blackout_interval{0};
  SimTime blackout_duration{0};
  /// Observability (optional): metric names carry `obs_site` so
  /// multiple injectors stay distinguishable.
  ObsContext* obs{nullptr};
  std::uint16_t obs_site{0};
};

/// PacketSink decorator applying the fault gauntlet before delivery.
class FaultInjector final : public PacketSink {
 public:
  FaultInjector(Simulator& sim, FaultConfig cfg, PacketSink& sink, Rng& rng);

  void on_packet(SimPacket pkt) override;

  struct Stats {
    std::uint64_t offered{0};
    std::uint64_t delivered{0};
    std::uint64_t dropped_loss{0};      ///< Gilbert–Elliott drops
    std::uint64_t dropped_blackout{0};
    std::uint64_t payload_corrupted{0};
    std::uint64_t header_corrupted{0};
    std::uint64_t loss_bursts{0};       ///< good → bad transitions
  };
  const Stats& stats() const;
  bool in_blackout() const;

 private:
  struct ObsHandles {
    Counter* offered{nullptr};
    Counter* delivered{nullptr};
    Counter* dropped_loss{nullptr};
    Counter* dropped_blackout{nullptr};
    Counter* payload_corrupted{nullptr};
    Counter* header_corrupted{nullptr};
  };

  Simulator& sim_;
  FaultConfig cfg_;
  PacketSink& sink_;
  Rng& rng_;
  GilbertElliott ge_;
  ObsHandles m_;
  mutable Stats stats_;
};

// ------------------------------------------------- misbehaving relay

/// The Table-1 fields of a canonical encoded chunk header (see
/// codec.cpp and bench_e3). The three ST entries address distinct bits
/// of the shared flags byte; kPayload addresses the first payload byte.
enum class ChunkField : std::uint8_t {
  kType,
  kSize,
  kLen,
  kCid,
  kCsn,
  kCst,
  kTid,
  kTsn,
  kTst,
  kXid,
  kXsn,
  kXst,
  kPayload,
};

inline constexpr std::size_t kChunkFieldCount = 13;

const char* to_string(ChunkField f);

/// (offset within the encoded chunk, XOR mask) of the byte a rewrite of
/// `f` flips. SN/ID fields flip a HIGH-order byte: the corruption is
/// large, which is the honest adversary model (a relay that rewrites a
/// framing field rewrites the whole field) and keeps the misdirected
/// value outside any plausible placement window.
std::pair<std::size_t, std::uint8_t> chunk_field_fault(ChunkField f);

struct HeaderRewriteConfig {
  /// Per-packet probability that the relay rewrites one chunk.
  double rewrite_rate{0.0};
  /// Which field the relay rewrites. The default, kPayload, models a
  /// relay that corrupts data; header fields model framing rewriting.
  ChunkField field{ChunkField::kPayload};
};

struct HeaderRewriteStats {
  std::uint64_t packets_in{0};
  std::uint64_t packets_out{0};
  std::uint64_t rewrites{0};
  std::array<std::uint64_t, kChunkFieldCount> by_field{};
};

/// Flips the configured field's byte in one randomly chosen chunk of
/// the canonical-syntax packet `bytes` (in place). Returns false if the
/// packet has no rewritable chunk (malformed, compressed syntax, or no
/// data chunk when a payload/ST rewrite needs one).
bool rewrite_chunk_field(std::span<std::uint8_t> bytes, ChunkField field,
                         Rng& rng);

/// A misbehaving router relay: forwards packets unchanged except that
/// with probability `cfg.rewrite_rate` it rewrites the configured
/// framing field of one chunk in flight. Compose with Router/
/// ChainTopology exactly like transparent_relay().
RelayFn header_rewriting_relay(HeaderRewriteConfig cfg, Rng& rng,
                               HeaderRewriteStats* stats = nullptr);

}  // namespace chunknet
