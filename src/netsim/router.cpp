#include "src/netsim/router.hpp"

#include "src/chunk/codec.hpp"

namespace chunknet {

RelayFn transparent_relay() {
  return [](PacketBytes bytes, std::size_t /*egress_mtu*/) {
    std::vector<PacketBytes> out;
    out.push_back(std::move(bytes));
    return out;
  };
}

RelayFn chunk_relay(RepackPolicy policy, RelayStats* stats) {
  return [policy, stats](PacketBytes bytes, std::size_t egress_mtu) {
    if (stats != nullptr) ++stats->packets_in;
    ParsedPacket parsed = decode_packet(bytes);
    if (!parsed.ok) {
      if (stats != nullptr) ++stats->parse_failures;
      return std::vector<PacketBytes>{};
    }
    PacketizerOptions opts;
    opts.mtu = egress_mtu;
    opts.policy = policy;
    PacketizeResult repacked = packetize(std::move(parsed.chunks), opts);
    if (stats != nullptr) {
      stats->splits += repacked.splits;
      stats->merges += repacked.merges;
      stats->packets_out += repacked.packets.size();
    }
    // Re-enveloping materializes fresh packet bodies; the copy into
    // aligned storage is part of that cost.
    std::vector<PacketBytes> out;
    out.reserve(repacked.packets.size());
    for (auto& p : repacked.packets) out.emplace_back(std::move(p));
    return out;
  };
}

namespace {

void router_trace(ObsContext* obs, Simulator& sim, std::uint16_t site,
                  TraceEventKind kind, std::uint64_t packet_id,
                  std::uint64_t aux) {
  if (obs == nullptr || obs->tracer == nullptr) return;
  TraceEvent e;
  e.t = sim.now();
  e.kind = kind;
  e.site = site;
  e.packet_id = packet_id;
  e.aux = aux;
  obs->tracer->record(e);
}

}  // namespace

Router::Router(Simulator& sim, RelayFn relay, Link& egress, ObsContext* obs,
               std::uint16_t obs_site)
    : sim_(sim), relay_(std::move(relay)), egress_(egress), obs_(obs),
      obs_site_(obs_site) {
  if (obs_ != nullptr && obs_->metrics != nullptr) {
    const std::string p = "router" + std::to_string(obs_site_) + ".";
    m_forwarded_ = &obs_->metrics->counter(p + "forwarded");
    m_dropped_ = &obs_->metrics->counter(p + "dropped");
  }
}

void Router::on_packet(SimPacket pkt) {
  auto outputs = relay_(std::move(pkt.bytes), egress_.config().mtu);
  if (outputs.empty()) {
    obs_add(m_dropped_);
    router_trace(obs_, sim_, obs_site_, TraceEventKind::kRouterDropped,
                 pkt.id, 0);
    return;
  }
  for (auto& body : outputs) {
    SimPacket out;
    out.bytes = std::move(body);
    out.id = sim_.next_packet_id();
    out.created_at = pkt.created_at;  // preserve end-to-end timestamp
    out.hops = pkt.hops;
    obs_add(m_forwarded_);
    router_trace(obs_, sim_, obs_site_, TraceEventKind::kRouterRelayed,
                 out.id, pkt.id);
    egress_.send(std::move(out));
    ++forwarded_;
  }
}

BatchingChunkRouter::BatchingChunkRouter(Simulator& sim, RepackPolicy policy,
                                         Link& egress, SimTime window,
                                         RelayStats* stats, ObsContext* obs,
                                         std::uint16_t obs_site)
    : sim_(sim), policy_(policy), egress_(egress), window_(window),
      stats_(stats), obs_(obs), obs_site_(obs_site) {
  if (obs_ != nullptr && obs_->metrics != nullptr) {
    const std::string p = "router" + std::to_string(obs_site_) + ".";
    m_forwarded_ = &obs_->metrics->counter(p + "forwarded");
    m_dropped_ = &obs_->metrics->counter(p + "dropped");
  }
}

void BatchingChunkRouter::on_packet(SimPacket pkt) {
  if (stats_ != nullptr) ++stats_->packets_in;
  ParsedPacket parsed = decode_packet(pkt.bytes);
  if (!parsed.ok) {
    if (stats_ != nullptr) ++stats_->parse_failures;
    obs_add(m_dropped_);
    router_trace(obs_, sim_, obs_site_, TraceEventKind::kRouterDropped,
                 pkt.id, 0);
    return;
  }
  if (pending_.empty()) oldest_created_at_ = pkt.created_at;
  for (auto& c : parsed.chunks) pending_.push_back(std::move(c));
  if (!timer_armed_) {
    timer_armed_ = true;
    sim_.schedule_in(window_, [this] { flush(); });
  }
}

void BatchingChunkRouter::flush() {
  timer_armed_ = false;
  if (pending_.empty()) return;
  PacketizerOptions opts;
  opts.mtu = egress_.config().mtu;
  opts.policy = policy_;
  PacketizeResult repacked = packetize(std::move(pending_), opts);
  pending_.clear();
  if (stats_ != nullptr) {
    stats_->splits += repacked.splits;
    stats_->merges += repacked.merges;
    stats_->packets_out += repacked.packets.size();
  }
  for (auto& body : repacked.packets) {
    SimPacket out;
    out.bytes = std::move(body);
    out.id = sim_.next_packet_id();
    out.created_at = oldest_created_at_;
    obs_add(m_forwarded_);
    // Batched departures have no single ingress packet: aux = 0.
    router_trace(obs_, sim_, obs_site_, TraceEventKind::kRouterRelayed,
                 out.id, 0);
    egress_.send(std::move(out));
  }
}

ChainTopology::ChainTopology(Simulator& sim, Rng& rng,
                             std::vector<LinkConfig> hops,
                             PacketSink& receiver,
                             const std::function<RelayFn()>& relay_factory,
                             ObsContext* obs)
    : sim_(sim) {
  if (obs != nullptr) {
    for (std::size_t i = 0; i < hops.size(); ++i) {
      if (hops[i].obs == nullptr) {
        hops[i].obs = obs;
        hops[i].obs_site = static_cast<std::uint16_t>(i);
      }
    }
  }
  // Build back to front: the last link feeds the receiver; each earlier
  // link feeds a router that relays onto the next link.
  links_.resize(hops.size());
  routers_.resize(hops.size() > 0 ? hops.size() - 1 : 0);
  for (std::size_t i = hops.size(); i-- > 0;) {
    PacketSink* sink = nullptr;
    if (i + 1 == hops.size()) {
      sink = &receiver;
    } else {
      routers_[i] = std::make_unique<Router>(sim_, relay_factory(),
                                             *links_[i + 1], obs,
                                             static_cast<std::uint16_t>(i));
      sink = routers_[i].get();
    }
    links_[i] = std::make_unique<Link>(sim_, hops[i], *sink, rng);
  }
}

void ChainTopology::inject(PacketBytes bytes) {
  SimPacket pkt;
  pkt.bytes = std::move(bytes);
  pkt.id = sim_.next_packet_id();
  pkt.created_at = sim_.now();
  links_.front()->send(std::move(pkt));
}

}  // namespace chunknet
