#include "src/netsim/router.hpp"

#include "src/chunk/codec.hpp"

namespace chunknet {

RelayFn transparent_relay() {
  return [](std::vector<std::uint8_t> bytes, std::size_t /*egress_mtu*/) {
    std::vector<std::vector<std::uint8_t>> out;
    out.push_back(std::move(bytes));
    return out;
  };
}

RelayFn chunk_relay(RepackPolicy policy, RelayStats* stats) {
  return [policy, stats](std::vector<std::uint8_t> bytes,
                         std::size_t egress_mtu) {
    if (stats != nullptr) ++stats->packets_in;
    ParsedPacket parsed = decode_packet(bytes);
    if (!parsed.ok) {
      if (stats != nullptr) ++stats->parse_failures;
      return std::vector<std::vector<std::uint8_t>>{};
    }
    PacketizerOptions opts;
    opts.mtu = egress_mtu;
    opts.policy = policy;
    PacketizeResult repacked = packetize(std::move(parsed.chunks), opts);
    if (stats != nullptr) {
      stats->splits += repacked.splits;
      stats->merges += repacked.merges;
      stats->packets_out += repacked.packets.size();
    }
    return std::move(repacked.packets);
  };
}

void Router::on_packet(SimPacket pkt) {
  auto outputs = relay_(std::move(pkt.bytes), egress_.config().mtu);
  for (auto& body : outputs) {
    SimPacket out;
    out.bytes = std::move(body);
    out.id = sim_.next_packet_id();
    out.created_at = pkt.created_at;  // preserve end-to-end timestamp
    out.hops = pkt.hops;
    egress_.send(std::move(out));
    ++forwarded_;
  }
}

void BatchingChunkRouter::on_packet(SimPacket pkt) {
  if (stats_ != nullptr) ++stats_->packets_in;
  ParsedPacket parsed = decode_packet(pkt.bytes);
  if (!parsed.ok) {
    if (stats_ != nullptr) ++stats_->parse_failures;
    return;
  }
  if (pending_.empty()) oldest_created_at_ = pkt.created_at;
  for (auto& c : parsed.chunks) pending_.push_back(std::move(c));
  if (!timer_armed_) {
    timer_armed_ = true;
    sim_.schedule_in(window_, [this] { flush(); });
  }
}

void BatchingChunkRouter::flush() {
  timer_armed_ = false;
  if (pending_.empty()) return;
  PacketizerOptions opts;
  opts.mtu = egress_.config().mtu;
  opts.policy = policy_;
  PacketizeResult repacked = packetize(std::move(pending_), opts);
  pending_.clear();
  if (stats_ != nullptr) {
    stats_->splits += repacked.splits;
    stats_->merges += repacked.merges;
    stats_->packets_out += repacked.packets.size();
  }
  for (auto& body : repacked.packets) {
    SimPacket out;
    out.bytes = std::move(body);
    out.id = sim_.next_packet_id();
    out.created_at = oldest_created_at_;
    egress_.send(std::move(out));
  }
}

ChainTopology::ChainTopology(Simulator& sim, Rng& rng,
                             std::vector<LinkConfig> hops,
                             PacketSink& receiver,
                             const std::function<RelayFn()>& relay_factory)
    : sim_(sim) {
  // Build back to front: the last link feeds the receiver; each earlier
  // link feeds a router that relays onto the next link.
  links_.resize(hops.size());
  routers_.resize(hops.size() > 0 ? hops.size() - 1 : 0);
  for (std::size_t i = hops.size(); i-- > 0;) {
    PacketSink* sink = nullptr;
    if (i + 1 == hops.size()) {
      sink = &receiver;
    } else {
      routers_[i] = std::make_unique<Router>(sim_, relay_factory(),
                                             *links_[i + 1]);
      sink = routers_[i].get();
    }
    links_[i] = std::make_unique<Link>(sim_, hops[i], *sink, rng);
  }
}

void ChainTopology::inject(std::vector<std::uint8_t> bytes) {
  SimPacket pkt;
  pkt.bytes = std::move(bytes);
  pkt.id = sim_.next_packet_id();
  pkt.created_at = sim_.now();
  links_.front()->send(std::move(pkt));
}

}  // namespace chunknet
