// Multipath resilience plane: N-way packet spraying with per-path
// health monitoring and automatic failover.
//
// §1 of the paper argues that labelled chunks shrug off the reordering
// that parallel lanes inflict ("obtaining gigabit rates on a SONET
// OC-3 ATM network requires using eight 155 Mbps ATM connections in
// parallel"). The Link's lane striping models skew WITHIN one route;
// this module models the path level above it: a MultipathScheduler
// sprays one connection's packets across 2–16 distinct Links with
// heterogeneous delay/jitter/loss, watches each path's delivery
// evidence, and routes around paths that blacken out.
//
//  - Spray modes: per-packet round-robin, smooth weighted round-robin
//    (deterministic credit counters, no RNG draw per packet), and
//    flowlet (sticky path, re-picked after an idle gap — the
//    reordering-averse mode an ordered transport would need).
//  - Health: every transmitted packet is tracked until its egress
//    delivery or a loss-evidence deadline (the simulator-side analogue
//    of ACK/NAK evidence: nothing came back in time). Loss and one-way
//    delay feed per-path EWMAs; a run of consecutive losses or a loss
//    EWMA above threshold marks the path down (failover).
//  - Failback is hysteresis-based: a down path receives one probe
//    packet per probe interval (real traffic — if the probe dies the
//    transport's retransmission recovers it), and only a run of
//    consecutive probe deliveries brings the path back.
//  - kill_path()/revive_path() model administrative path failure
//    (chaos mid-run kill): packets in flight on a killed path are
//    discarded at its egress and accounted as dead-path drops; a
//    revived path stays down until probes prove it.
//
// Conservation contract (chaos oracle 7): for every path,
// tx_packets == delivered + lost once inflight() drains to zero, so
// no packet is ever stranded on a dead path unaccounted.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.hpp"
#include "src/netsim/faults.hpp"
#include "src/netsim/link.hpp"
#include "src/netsim/simulator.hpp"
#include "src/obs/obs.hpp"

namespace chunknet {

enum class SprayMode : std::uint8_t {
  kPerPacket = 0,           ///< byte-balanced spray over healthy paths
                            ///< (deficit round robin: least-bytes-sent
                            ///< first; round robin for equal sizes)
  kWeightedRoundRobin = 1,  ///< smooth WRR honouring per-path weights
  kFlowlet = 2,             ///< sticky path, re-picked after idle gap
};

const char* to_string(SprayMode m);

/// One path: its link personality plus scheduling weight and an
/// optional Gilbert–Elliott loss process private to this path (bursty
/// loss the health monitor must see through).
struct MultipathPathConfig {
  LinkConfig link;
  double weight{1.0};  ///< kWeightedRoundRobin share
  GilbertElliottConfig faults{};  ///< mean_loss() == 0 disables
};

struct MultipathConfig {
  SprayMode mode{SprayMode::kPerPacket};

  // ---- health monitor
  /// EWMA smoothing factor for per-path loss and delay estimates.
  double ewma_alpha{1.0 / 16.0};
  /// Loss EWMA above this marks the path down.
  double fail_loss_ewma{0.5};
  /// A run of this many consecutive loss evidences marks the path down
  /// (blackout detection — faster than waiting for the EWMA).
  int fail_consecutive_losses{4};
  /// A packet not delivered this long after transmission counts as
  /// loss evidence (the ACK/NAK-silence analogue). The effective
  /// deadline per path is max(this, 4 × delay EWMA) so slow-but-alive
  /// paths are not declared lossy.
  SimTime loss_evidence_timeout{50 * kMillisecond};

  // ---- hysteresis failback
  /// While a path is down (and not killed), one data packet per this
  /// interval is routed onto it as a probe.
  SimTime probe_interval{20 * kMillisecond};
  /// Consecutive probe deliveries required to bring a down path back.
  int failback_consecutive_successes{4};

  /// kFlowlet: idle gap after which the scheduler may switch paths.
  SimTime flowlet_gap{1 * kMillisecond};

  ObsContext* obs{nullptr};
  /// Per-path links get obs_site = obs_site_base + path index.
  std::uint16_t obs_site_base{100};
};

/// Sprays packets across N owned Links, each delivering into a private
/// egress that records health evidence before forwarding to the shared
/// `downstream` sink. Also usable as a PacketSink (on_packet == send).
class MultipathScheduler final : public PacketSink {
 public:
  MultipathScheduler(Simulator& sim, MultipathConfig cfg,
                     std::vector<MultipathPathConfig> paths,
                     PacketSink& downstream, Rng& rng);

  void send(SimPacket pkt);
  void on_packet(SimPacket pkt) override { send(std::move(pkt)); }

  /// Administrative path failure: the path is marked down immediately
  /// (one failover event), in-flight packets die at its egress, and no
  /// new traffic — not even probes — is routed onto it.
  void kill_path(std::size_t i);
  /// Clears the kill. The path stays down until hysteresis probes
  /// bring it back.
  void revive_path(std::size_t i);

  struct PathStats {
    std::uint64_t tx_packets{0};
    std::uint64_t tx_bytes{0};
    std::uint64_t delivered{0};  ///< egress arrivals matched in flight
    /// Loss evidence: deadline expiries plus dead-path drops. Closes
    /// conservation: tx_packets == delivered + lost at quiescence.
    std::uint64_t lost{0};
    std::uint64_t dead_drops{0};  ///< subset of `lost`: killed at egress
    std::uint64_t ge_drops{0};    ///< per-path Gilbert–Elliott drops
    std::uint64_t probes{0};      ///< packets routed as failback probes
    /// Egress arrivals already written off (late after the evidence
    /// deadline, or link-duplicated copies); forwarded but not counted
    /// delivered, so conservation still closes.
    std::uint64_t late{0};
    std::uint64_t failovers{0};
    std::uint64_t failbacks{0};
    double loss_ewma{0.0};
    double delay_ewma_ns{0.0};
    bool down{false};
    bool killed{false};
  };
  const PathStats& path_stats(std::size_t i) const {
    return paths_[i].st;
  }
  std::size_t path_count() const { return paths_.size(); }
  const Link& path_link(std::size_t i) const { return *paths_[i].link; }

  struct Stats {
    std::uint64_t sprayed{0};    ///< packets accepted by send()
    std::uint64_t forwarded{0};  ///< handed to downstream (incl. late)
    std::uint64_t failovers{0};
    std::uint64_t failbacks{0};
    std::uint64_t flowlet_switches{0};
    /// Sends with no healthy path available (best-effort pick).
    std::uint64_t no_healthy_sends{0};
    /// Sends routed to a killed path while a live one existed. Always
    /// zero by construction; chaos oracle 7 asserts it stayed so.
    std::uint64_t killed_path_sends{0};
  };
  const Stats& stats() const { return stats_; }
  /// Packets transmitted but not yet resolved as delivered or lost.
  std::size_t inflight() const { return inflight_.size(); }

 private:
  struct Egress final : public PacketSink {
    MultipathScheduler* owner{nullptr};
    std::size_t index{0};
    void on_packet(SimPacket pkt) override {
      owner->arrival(index, std::move(pkt));
    }
  };
  struct PathObs {
    Counter* tx_packets{nullptr};
    Counter* delivered{nullptr};
    Counter* lost{nullptr};
    Counter* probes{nullptr};
    Counter* dead_drops{nullptr};
    Gauge* loss_ewma_ppm{nullptr};
    Gauge* rtt_ewma_ns{nullptr};
  };
  struct Path {
    double weight{1.0};
    std::unique_ptr<Egress> egress;
    std::unique_ptr<Link> link;
    std::unique_ptr<GilbertElliott> ge;
    PathStats st;
    int consec_losses{0};
    int consec_successes{0};
    SimTime last_probe{0};
    double wrr_credit{0.0};
    /// Bytes this path has been handed by the sprayer (including probes
    /// and best-effort sends). Per-packet mode balances on this, not on
    /// a packet count: equal-size packets degenerate to round robin,
    /// while mixed sizes (a full-MTU packet alternating with a TPDU
    /// tail) still split bytes evenly. Re-based on failback so a
    /// returning path is not handed the whole backlog it missed.
    std::uint64_t spray_bytes{0};
    PathObs m;
  };
  struct Inflight {
    std::uint32_t path{0};
    SimTime sent_at{0};
  };

  void arrival(std::size_t path, SimPacket pkt);
  void evidence_deadline(std::uint64_t packet_id);
  void loss_evidence(std::size_t i);
  void delivery_evidence(std::size_t i, SimTime one_way_ns);
  void mark_down(std::size_t i);
  void mark_up(std::size_t i);
  std::size_t pick_path();
  SimTime effective_deadline(const Path& p) const;
  void publish_health(Path& p);
  void trace(TraceEventKind kind, std::size_t path,
             std::uint64_t packet_id) const;

  Simulator& sim_;
  MultipathConfig cfg_;
  PacketSink& downstream_;
  std::vector<Path> paths_;
  std::unordered_map<std::uint64_t, Inflight> inflight_;
  std::size_t rr_next_{0};
  std::size_t flowlet_path_{0};
  SimTime last_send_{0};
  bool sent_any_{false};
  Counter* m_failovers_{nullptr};
  Counter* m_failbacks_{nullptr};
  Stats stats_;
};

}  // namespace chunknet
