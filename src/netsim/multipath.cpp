#include "src/netsim/multipath.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace chunknet {

const char* to_string(SprayMode m) {
  switch (m) {
    case SprayMode::kPerPacket: return "per_packet";
    case SprayMode::kWeightedRoundRobin: return "weighted";
    case SprayMode::kFlowlet: return "flowlet";
  }
  return "?";
}

MultipathScheduler::MultipathScheduler(Simulator& sim, MultipathConfig cfg,
                                       std::vector<MultipathPathConfig> paths,
                                       PacketSink& downstream, Rng& rng)
    : sim_(sim), cfg_(cfg), downstream_(downstream) {
  assert(!paths.empty());
  paths_.reserve(paths.size());
  MetricsRegistry* reg = cfg_.obs != nullptr ? cfg_.obs->metrics : nullptr;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    MultipathPathConfig& pc = paths[i];
    paths_.emplace_back();
    Path& p = paths_.back();
    p.weight = pc.weight > 0.0 ? pc.weight : 1.0;
    p.egress = std::make_unique<Egress>();
    p.egress->owner = this;
    p.egress->index = i;
    LinkConfig lc = pc.link;
    lc.obs = cfg_.obs;
    lc.obs_site = static_cast<std::uint16_t>(cfg_.obs_site_base + i);
    p.link = std::make_unique<Link>(sim_, lc, *p.egress, rng);
    if (pc.faults.mean_loss() > 0.0) {
      p.ge = std::make_unique<GilbertElliott>(pc.faults, rng);
    }
    if (reg != nullptr) {
      const std::string pre = "mpath.path" + std::to_string(i) + ".";
      p.m.tx_packets = &reg->counter(pre + "tx_packets");
      p.m.delivered = &reg->counter(pre + "delivered");
      p.m.lost = &reg->counter(pre + "lost");
      p.m.probes = &reg->counter(pre + "probes");
      p.m.dead_drops = &reg->counter(pre + "dead_drops");
      p.m.loss_ewma_ppm = &reg->gauge(pre + "loss_ewma_ppm");
      p.m.rtt_ewma_ns = &reg->gauge(pre + "rtt_ewma_ns");
    }
  }
  if (reg != nullptr) {
    m_failovers_ = &reg->counter("mpath.failovers");
    m_failbacks_ = &reg->counter("mpath.failbacks");
  }
}

void MultipathScheduler::trace(TraceEventKind kind, std::size_t path,
                               std::uint64_t packet_id) const {
  if (cfg_.obs == nullptr || cfg_.obs->tracer == nullptr) return;
  TraceEvent e;
  e.t = sim_.now();
  e.packet_id = packet_id;
  e.aux = path;
  e.site = static_cast<std::uint16_t>(cfg_.obs_site_base + path);
  e.kind = kind;
  cfg_.obs->tracer->record(e);
}

SimTime MultipathScheduler::effective_deadline(const Path& p) const {
  SimTime t = cfg_.loss_evidence_timeout;
  const auto ewma4 = static_cast<SimTime>(4.0 * p.st.delay_ewma_ns);
  return std::max(t, ewma4);
}

void MultipathScheduler::publish_health(Path& p) {
  obs_set(p.m.loss_ewma_ppm,
          static_cast<std::int64_t>(p.st.loss_ewma * 1e6));
  obs_set(p.m.rtt_ewma_ns, static_cast<std::int64_t>(p.st.delay_ewma_ns));
}

void MultipathScheduler::send(SimPacket pkt) {
  ++stats_.sprayed;
  const std::size_t i = pick_path();
  Path& p = paths_[i];
  ++p.st.tx_packets;
  p.st.tx_bytes += pkt.bytes.size();
  p.spray_bytes += pkt.bytes.size();
  obs_add(p.m.tx_packets);
  trace(TraceEventKind::kPathSelected, i, pkt.id);

  inflight_[pkt.id] = Inflight{static_cast<std::uint32_t>(i), sim_.now()};
  const std::uint64_t id = pkt.id;
  sim_.schedule_in(effective_deadline(p),
                   [this, id] { evidence_deadline(id); });

  // The path's private loss process eats the packet before the link
  // ever sees it; the evidence deadline turns the silence into loss.
  if (p.ge != nullptr && p.ge->lose()) {
    ++p.st.ge_drops;
    return;
  }
  p.link->send(std::move(pkt));
}

std::size_t MultipathScheduler::pick_path() {
  const SimTime now = sim_.now();
  const std::size_t n = paths_.size();

  // Failback probes first: a down (but not killed) path whose probe
  // interval elapsed gets this packet as its probe.
  for (std::size_t i = 0; i < n; ++i) {
    Path& p = paths_[i];
    if (p.st.down && !p.st.killed &&
        now - p.last_probe >= cfg_.probe_interval) {
      p.last_probe = now;
      ++p.st.probes;
      obs_add(p.m.probes);
      last_send_ = now;
      return i;
    }
  }

  std::size_t healthy = 0;
  bool any_alive = false;  // any non-killed path at all
  for (const Path& p : paths_) {
    if (!p.st.killed) any_alive = true;
    if (!p.st.down && !p.st.killed) ++healthy;
  }

  std::size_t pick = 0;
  if (healthy == 0) {
    // Graceful degradation with nothing healthy: best-effort onto the
    // least-lossy non-killed path (or any path when all are killed —
    // the transport's give-up machinery owns that endgame).
    ++stats_.no_healthy_sends;
    bool found = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Path& p = paths_[i];
      if (p.st.killed && any_alive) continue;
      if (!found || p.st.loss_ewma < paths_[pick].st.loss_ewma) {
        pick = i;
        found = true;
      }
    }
  } else {
    switch (cfg_.mode) {
      case SprayMode::kPerPacket: {
        // Deficit round robin on bytes: the healthy path that has been
        // handed the fewest bytes gets the packet. Equal-size packets
        // reduce this to plain round robin (the rr_next_ scan order
        // breaks ties), but mixed sizes — e.g. a ~2 KiB TPDU encoding
        // as a full-MTU packet plus a short tail — still split bytes
        // evenly instead of parking all the big packets on one path.
        bool found = false;
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t i = (rr_next_ + k) % n;
          if (paths_[i].st.down || paths_[i].st.killed) continue;
          if (!found || paths_[i].spray_bytes < paths_[pick].spray_bytes) {
            pick = i;
            found = true;
          }
        }
        rr_next_ = (pick + 1) % n;
        break;
      }
      case SprayMode::kWeightedRoundRobin: {
        // Smooth WRR: every healthy path earns its weight, the richest
        // transmits and pays the total back. Deterministic — no RNG
        // draw per packet.
        double total = 0.0;
        bool found = false;
        for (std::size_t i = 0; i < n; ++i) {
          Path& p = paths_[i];
          if (p.st.down || p.st.killed) continue;
          p.wrr_credit += p.weight;
          total += p.weight;
          if (!found || p.wrr_credit > paths_[pick].wrr_credit) {
            pick = i;
            found = true;
          }
        }
        paths_[pick].wrr_credit -= total;
        break;
      }
      case SprayMode::kFlowlet: {
        const Path& cur = paths_[flowlet_path_];
        const bool cur_ok = !cur.st.down && !cur.st.killed;
        const bool in_flowlet =
            sent_any_ && cur_ok && now - last_send_ <= cfg_.flowlet_gap;
        if (in_flowlet) {
          pick = flowlet_path_;
        } else {
          // New flowlet: the healthy path with the best delay estimate
          // (an unprobed path's 0 estimate reads as "try me").
          bool found = false;
          for (std::size_t i = 0; i < n; ++i) {
            const Path& p = paths_[i];
            if (p.st.down || p.st.killed) continue;
            if (!found ||
                p.st.delay_ewma_ns < paths_[pick].st.delay_ewma_ns) {
              pick = i;
              found = true;
            }
          }
          if (sent_any_ && pick != flowlet_path_) ++stats_.flowlet_switches;
          flowlet_path_ = pick;
        }
        break;
      }
    }
  }

  if (paths_[pick].st.killed && any_alive) ++stats_.killed_path_sends;
  last_send_ = now;
  sent_any_ = true;
  return pick;
}

void MultipathScheduler::arrival(std::size_t path, SimPacket pkt) {
  Path& p = paths_[path];
  const auto it = inflight_.find(pkt.id);
  if (p.st.killed) {
    // Dead path: the packet dies here. If it was still tracked this is
    // its loss evidence; a copy already written off just vanishes.
    ++p.st.dead_drops;
    obs_add(p.m.dead_drops);
    trace(TraceEventKind::kPathDeadDrop, path, pkt.id);
    if (it != inflight_.end()) {
      inflight_.erase(it);
      loss_evidence(path);
    }
    return;
  }
  if (it == inflight_.end()) {
    // Late (already counted lost) or a link-duplicated copy: forward —
    // the transport's dedup owns correctness — but keep it out of the
    // delivered tally so conservation still closes.
    ++p.st.late;
    ++stats_.forwarded;
    downstream_.on_packet(std::move(pkt));
    return;
  }
  const SimTime one_way = sim_.now() - it->second.sent_at;
  inflight_.erase(it);
  delivery_evidence(path, one_way);
  ++stats_.forwarded;
  downstream_.on_packet(std::move(pkt));
}

void MultipathScheduler::evidence_deadline(std::uint64_t packet_id) {
  const auto it = inflight_.find(packet_id);
  if (it == inflight_.end()) return;  // delivered in time
  const std::size_t path = it->second.path;
  inflight_.erase(it);
  loss_evidence(path);
}

void MultipathScheduler::loss_evidence(std::size_t i) {
  Path& p = paths_[i];
  ++p.st.lost;
  obs_add(p.m.lost);
  p.st.loss_ewma =
      (1.0 - cfg_.ewma_alpha) * p.st.loss_ewma + cfg_.ewma_alpha;
  ++p.consec_losses;
  p.consec_successes = 0;
  publish_health(p);
  if (!p.st.down && (p.consec_losses >= cfg_.fail_consecutive_losses ||
                     p.st.loss_ewma > cfg_.fail_loss_ewma)) {
    mark_down(i);
  }
}

void MultipathScheduler::delivery_evidence(std::size_t i,
                                           SimTime one_way_ns) {
  Path& p = paths_[i];
  ++p.st.delivered;
  obs_add(p.m.delivered);
  p.st.loss_ewma *= 1.0 - cfg_.ewma_alpha;
  const auto sample = static_cast<double>(one_way_ns);
  p.st.delay_ewma_ns =
      p.st.delay_ewma_ns == 0.0
          ? sample
          : (1.0 - cfg_.ewma_alpha) * p.st.delay_ewma_ns +
                cfg_.ewma_alpha * sample;
  ++p.consec_successes;
  p.consec_losses = 0;
  publish_health(p);
  if (p.st.down && !p.st.killed &&
      p.consec_successes >= cfg_.failback_consecutive_successes) {
    mark_up(i);
  }
}

void MultipathScheduler::mark_down(std::size_t i) {
  Path& p = paths_[i];
  p.st.down = true;
  p.last_probe = sim_.now();  // first probe a full interval from now
  ++p.st.failovers;
  ++stats_.failovers;
  obs_add(m_failovers_);
  trace(TraceEventKind::kPathFailover, i, 0);
  if (cfg_.obs != nullptr && cfg_.obs->spans != nullptr) {
    SpanEvent e;
    e.t = sim_.now();
    e.aux = i;
    e.kind = SpanEventKind::kPathFailover;
    cfg_.obs->spans->record(e);
  }
}

void MultipathScheduler::mark_up(std::size_t i) {
  Path& p = paths_[i];
  p.st.down = false;
  // Re-base the spray deficit: while down, this path fell arbitrarily
  // far behind in bytes. Without this, deficit round robin would hand
  // it every packet until it caught up — dogpiling the path that just
  // recovered. It resumes from parity with its busiest peer instead.
  for (const Path& q : paths_) {
    if (q.spray_bytes > p.spray_bytes) p.spray_bytes = q.spray_bytes;
  }
  ++p.st.failbacks;
  ++stats_.failbacks;
  obs_add(m_failbacks_);
  trace(TraceEventKind::kPathFailback, i, 0);
  if (cfg_.obs != nullptr && cfg_.obs->spans != nullptr) {
    SpanEvent e;
    e.t = sim_.now();
    e.aux = i;
    e.kind = SpanEventKind::kPathFailback;
    cfg_.obs->spans->record(e);
  }
}

void MultipathScheduler::kill_path(std::size_t i) {
  Path& p = paths_[i];
  if (p.st.killed) return;
  p.st.killed = true;
  p.consec_successes = 0;
  if (!p.st.down) mark_down(i);
}

void MultipathScheduler::revive_path(std::size_t i) {
  Path& p = paths_[i];
  if (!p.st.killed) return;
  p.st.killed = false;
  p.consec_losses = 0;
  p.consec_successes = 0;
  // Still down: hysteresis probes must prove the path before traffic
  // returns. Start probing a full interval from now.
  p.last_probe = sim_.now();
}

}  // namespace chunknet
