// Routers and multi-hop topologies.
//
// A Router owns an egress link and a *relay function* that rewrites a
// packet for the egress MTU. Relays implement the internetworking
// options of §3/Figure 4:
//   - transparent_relay: forward unchanged (oversize → link drops it;
//     "never fragment — discard packets that are too large");
//   - chunk_relay: open the envelope, re-pack chunks to the egress MTU
//     (splitting per Appendix C, optionally merging per Appendix D) —
//     arbitrary combinations of intra-/inter-network fragmentation,
//     fully transparent to the receiver.
// The IP fragmentation relay lives in src/baselines (it rewrites IP
// fragments, not chunks).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/chunk/packetizer.hpp"
#include "src/netsim/link.hpp"
#include "src/netsim/simulator.hpp"

namespace chunknet {

/// Rewrites one arriving packet body into packet bodies for an egress
/// MTU. Returning an empty vector drops the packet. Bodies are
/// PacketBytes so a transparent relay forwards the arriving (aligned)
/// storage without copying it.
using RelayFn = std::function<std::vector<PacketBytes>(
    PacketBytes bytes, std::size_t egress_mtu)>;

/// Forward unchanged; the egress link enforces its MTU by dropping.
RelayFn transparent_relay();

/// Re-envelope chunks for the egress MTU under the given policy.
/// `stats` (optional) accumulates split/merge counts across calls.
struct RelayStats {
  std::uint64_t packets_in{0};
  std::uint64_t packets_out{0};
  std::uint64_t splits{0};
  std::uint64_t merges{0};
  std::uint64_t parse_failures{0};
};
RelayFn chunk_relay(RepackPolicy policy, RelayStats* stats = nullptr);

/// A store-and-forward router: applies the relay, then transmits the
/// results on its egress link.
class Router final : public PacketSink {
 public:
  Router(Simulator& sim, RelayFn relay, Link& egress,
         ObsContext* obs = nullptr, std::uint16_t obs_site = 0);

  void on_packet(SimPacket pkt) override;

  std::uint64_t forwarded() const { return forwarded_; }

 private:
  Simulator& sim_;
  RelayFn relay_;
  Link& egress_;
  ObsContext* obs_;
  std::uint16_t obs_site_;
  Counter* m_forwarded_{nullptr};
  Counter* m_dropped_{nullptr};
  std::uint64_t forwarded_{0};
};

/// A chunk-aware router that BATCHES: chunks from packets arriving
/// within `window` are re-enveloped together, so small-MTU arrivals can
/// be combined into large-MTU departures (Figure 4 methods 2 and 3
/// across packet boundaries, and §3.1's "packing unrelated chunks into
/// packets"). A stateless per-packet router can only split, never
/// combine; this is the store-and-forward counterpart.
class BatchingChunkRouter final : public PacketSink {
 public:
  BatchingChunkRouter(Simulator& sim, RepackPolicy policy, Link& egress,
                      SimTime window, RelayStats* stats = nullptr,
                      ObsContext* obs = nullptr, std::uint16_t obs_site = 0);

  void on_packet(SimPacket pkt) override;

 private:
  void flush();

  Simulator& sim_;
  RepackPolicy policy_;
  Link& egress_;
  SimTime window_;
  RelayStats* stats_;
  ObsContext* obs_;
  std::uint16_t obs_site_;
  Counter* m_forwarded_{nullptr};
  Counter* m_dropped_{nullptr};
  std::vector<Chunk> pending_;
  SimTime oldest_created_at_{0};
  bool timer_armed_{false};
};

/// A linear internetwork: ingress → link₀ → router₁ → link₁ → … → sink.
/// Each hop has its own LinkConfig (different MTUs model the paper's
/// internetworking scenarios). Routers between hop i and i+1 use the
/// supplied relay factory.
class ChainTopology {
 public:
  /// When `obs` is given, hops that did not set their own ObsContext
  /// are auto-instrumented with obs_site = hop index, and router i
  /// (between hop i and i+1) records under site i.
  ChainTopology(Simulator& sim, Rng& rng, std::vector<LinkConfig> hops,
                PacketSink& receiver,
                const std::function<RelayFn()>& relay_factory,
                ObsContext* obs = nullptr);

  /// Sends application packet bytes into the first hop.
  void inject(PacketBytes bytes);

  const Link& hop(std::size_t i) const { return *links_[i]; }
  std::size_t hops() const { return links_.size(); }

 private:
  Simulator& sim_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Router>> routers_;
};

}  // namespace chunknet
