#include "src/netsim/simulator.hpp"

#include <utility>

namespace chunknet {

void Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;  // never schedule into the past
  events_.push(Event{t, ++seq_counter_, std::move(fn)});
}

std::uint64_t Simulator::run(SimTime deadline) {
  std::uint64_t executed = 0;
  while (!events_.empty()) {
    // priority_queue::top returns const&; the function object must be
    // moved out before pop, so copy the POD parts first.
    const Event& top = events_.top();
    if (top.t > deadline) break;
    now_ = top.t;
    auto fn = std::move(const_cast<Event&>(top).fn);
    events_.pop();
    fn();
    ++executed;
  }
  return executed;
}

}  // namespace chunknet
