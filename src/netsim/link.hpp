// Simulated links: serialization delay, propagation, loss, duplication,
// jitter, and the paper's two disordering mechanisms — multipath lane
// skew and route flaps (§1: "Skew among the routes can cause packets to
// leave the network in a different order than that in which they
// entered. Route changes … also can cause packet disordering").
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/netsim/simulator.hpp"
#include "src/obs/obs.hpp"

namespace chunknet {

struct LinkConfig {
  double rate_bps{622e6};          ///< serialization rate
  SimTime prop_delay{1 * kMillisecond};
  std::size_t mtu{1500};           ///< enforced: larger packets dropped
  double loss_rate{0.0};           ///< i.i.d. packet loss probability
  double dup_rate{0.0};            ///< probability of duplicate delivery
  /// Drop-tail bound on the transmit queue (0 = unbounded). A packet
  /// arriving while more than this many bytes are already waiting to
  /// serialize is discarded — the finite router buffer that turns
  /// sustained overload into loss instead of unbounded delay.
  std::size_t queue_limit_bytes{0};
  SimTime jitter{0};               ///< uniform extra delay in [0, jitter]
  int lanes{1};                    ///< parallel physical lanes (striping)
  SimTime lane_skew{0};            ///< extra prop delay per lane index
  /// Mean interval between route flaps (0 = never). A flap re-rolls
  /// every lane's skew, so in-flight packets overtake later ones.
  SimTime route_flap_interval{0};
  SimTime route_flap_magnitude{2 * kMillisecond};
  /// Observability (optional): metric names and trace events carry
  /// `obs_site` so multi-hop topologies can attribute per-hop behaviour.
  ObsContext* obs{nullptr};
  std::uint16_t obs_site{0};
};

/// Unidirectional link delivering packets to a fixed sink.
class Link {
 public:
  Link(Simulator& sim, LinkConfig cfg, PacketSink& sink, Rng& rng);

  /// Queues a packet for transmission. Oversized packets are counted
  /// and dropped (the "never fragment — discard" failure of §3).
  void send(SimPacket pkt);

  struct Stats {
    std::uint64_t offered{0};
    std::uint64_t delivered{0};
    std::uint64_t lost{0};
    std::uint64_t duplicated{0};
    std::uint64_t oversize_dropped{0};
    std::uint64_t queue_dropped{0};
    std::uint64_t bytes_delivered{0};
  };
  const Stats& stats() const { return stats_; }
  const LinkConfig& config() const { return cfg_; }

 private:
  /// Time to clock `bytes` onto ONE lane: the aggregate rate is striped
  /// evenly, so each lane serializes at rate/lanes. This is the single
  /// serialization model — send() charges every transmitted copy
  /// (original or duplicate) through occupy_lane(), which uses it.
  SimTime serialize_time(std::size_t bytes) const {
    const double lane_rate =
        cfg_.rate_bps / static_cast<double>(cfg_.lanes > 1 ? cfg_.lanes : 1);
    return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 /
                                lane_rate * 1e9);
  }
  struct LaneSlot {
    std::size_t lane;
    SimTime done;  ///< when the last bit leaves the lane
  };
  /// Claims the next round-robin lane and occupies it for the packet's
  /// serialization time; transmission starts when the lane is free.
  LaneSlot occupy_lane(std::size_t bytes);
  void deliver_copy(const SimPacket& pkt, SimTime at);
  void maybe_flap();
  void trace(TraceEventKind kind, const SimPacket& pkt,
             std::uint64_t aux = 0) const;

  struct ObsHandles {
    Counter* offered{nullptr};
    Counter* delivered{nullptr};
    Counter* lost{nullptr};
    Counter* duplicated{nullptr};
    Counter* oversize_dropped{nullptr};
    Counter* queue_dropped{nullptr};
    Counter* bytes_delivered{nullptr};
  };
  /// Bytes still waiting to serialize across all lanes, derived from
  /// each lane's busy time (no per-packet queue state needed).
  std::size_t backlog_bytes() const;

  Simulator& sim_;
  LinkConfig cfg_;
  PacketSink& sink_;
  Rng& rng_;
  ObsHandles m_;
  std::vector<SimTime> lane_free_at_;
  std::vector<SimTime> lane_extra_skew_;
  std::size_t next_lane_{0};
  SimTime next_flap_{0};
  Stats stats_;
};

}  // namespace chunknet
