// CRC-32 (IEEE 802.3 polynomial 0x04C11DB7, reflected form 0xEDB88320).
//
// CRC is the conventional strong error-detection code the paper
// contrasts with WSC-2: "A CRC cannot be computed on disordered data"
// [FELD 92]. A CRC over a byte stream depends on the order of the
// bytes, so a receiver using CRC must reassemble (or at least reorder)
// a PDU before verifying it — which is precisely the buffering the
// chunk architecture exists to avoid. We provide three implementations
// (bitwise reference, single-table, slicing-by-4) so bench E4 can give
// CRC its best case when comparing throughput against WSC-2.
#pragma once

#include <cstdint>
#include <span>

namespace chunknet {

/// Bitwise reference implementation (slow; used to validate the others).
std::uint32_t crc32_bitwise(std::span<const std::uint8_t> data,
                            std::uint32_t seed = 0xFFFFFFFFu);

/// Classic one-table-lookup-per-byte implementation.
std::uint32_t crc32_table(std::span<const std::uint8_t> data,
                          std::uint32_t seed = 0xFFFFFFFFu);

/// Slicing-by-4: processes 4 bytes per step with 4 tables.
std::uint32_t crc32_slice4(std::span<const std::uint8_t> data,
                           std::uint32_t seed = 0xFFFFFFFFu);

/// Streaming CRC: bytes must be fed strictly in order (this is the
/// point of the baseline — there is no `add_at_position` operation).
class Crc32Stream {
 public:
  void update(std::span<const std::uint8_t> data) {
    state_ = crc32_slice4(data, state_);
  }
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }
  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_{0xFFFFFFFFu};
};

/// Final (output-xored) CRC of a whole buffer.
inline std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_slice4(data) ^ 0xFFFFFFFFu;
}

}  // namespace chunknet
