#include "src/edc/fletcher.hpp"

namespace chunknet {

std::uint32_t fletcher32(std::span<const std::uint8_t> data) {
  std::uint32_t c0 = 0;
  std::uint32_t c1 = 0;
  std::size_t i = 0;
  const std::size_t words = data.size() / 2;
  std::size_t remaining = words;
  while (remaining > 0) {
    // Process in blocks small enough that the sums cannot overflow
    // before reduction (standard Fletcher blocking).
    std::size_t block = remaining < 359 ? remaining : 359;
    remaining -= block;
    while (block-- > 0) {
      const std::uint32_t w =
          (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
      i += 2;
      c0 += w;
      c1 += c0;
    }
    c0 %= 65535u;
    c1 %= 65535u;
  }
  if (i < data.size()) {
    c0 = (c0 + (static_cast<std::uint32_t>(data[i]) << 8)) % 65535u;
    c1 = (c1 + c0) % 65535u;
  }
  return (c1 << 16) | c0;
}

std::uint32_t adler32(std::span<const std::uint8_t> data) {
  constexpr std::uint32_t kMod = 65521u;
  std::uint32_t a = 1;
  std::uint32_t b = 0;
  std::size_t i = 0;
  std::size_t remaining = data.size();
  while (remaining > 0) {
    std::size_t block = remaining < 5552 ? remaining : 5552;
    remaining -= block;
    while (block-- > 0) {
      a += data[i++];
      b += a;
    }
    a %= kMod;
    b %= kMod;
  }
  return (b << 16) | a;
}

}  // namespace chunknet
