// The native SIMD WSC-2 kernel: 16-word groups via AVX2 + PCLMUL.
//
// The trick that makes WSC-2 vectorizable is working on UNREDUCED
// polynomials. A group of 16 words at relative offsets j < 16 sums to
//
//     U_g = Σ_j  d_j · x^j        (carry-less, degree ≤ 31 + 15 = 46)
//
// which fits one 64-bit lane: zero-extend each big-endian word to 64
// bits and shift it left by its offset (_mm256_sllv_epi64 gives every
// lane its own shift count), then XOR-reduce. One PCLMUL fold brings
// U_g back into the field (the ≥ x^32 part is ≤ 15 bits, and
// 15 + 7 < 32 means a single fold suffices), and a Horner chain in
// α¹⁶ — a shift plus two table folds per 64-byte group, far off the
// throughput path — stitches the groups together:
//
//     h = Σ_g α^(16g) ⊗ reduce(U_g)
//
// P0 never needs the field at all: XOR the raw vectors and byte-swap
// once at the end (XOR commutes with the byte shuffle).
//
// Compiled with per-function target attributes so this TU builds on
// baseline x86-64; dispatch() only selects the kernel after
// cpu_features() confirms AVX2 and PCLMUL at runtime.
#include "src/common/cpu.hpp"
#include "src/edc/wsc2_kernels.hpp"
#include "src/gf/gf32.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define CHUNKNET_WSC2_X86 1
#include <immintrin.h>
#endif

namespace chunknet::wsc2_kernels {

#if defined(CHUNKNET_WSC2_X86)

namespace {

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

__attribute__((target("avx2,pclmul"))) RunSum run_clmul16(
    const std::uint8_t* base, std::size_t words) {
  const std::size_t groups = words / 16;
  if (groups < 4) return run_sliced8(base, words);

  RunSum rs;
  const std::size_t rem_start = groups * 16;

  // Scalar Horner over the trailing words past the group region.
  std::uint32_t rem = 0;
  for (std::size_t w = words; w-- > rem_start;) {
    const std::uint32_t d = load_be32(base + w * 4);
    rs.x ^= d;
    rem = gf32::times_alpha(rem) ^ d;
  }

  // Per-128-bit-lane byte reverse of each 32-bit element (BE → host).
  const __m256i bswap32 = _mm256_setr_epi8(
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,  //
      3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
  // Each lane's shift = its word offset j within the 16-word group.
  const __m256i sh0 = _mm256_setr_epi64x(0, 1, 2, 3);
  const __m256i sh1 = _mm256_setr_epi64x(4, 5, 6, 7);
  const __m256i sh2 = _mm256_setr_epi64x(8, 9, 10, 11);
  const __m256i sh3 = _mm256_setr_epi64x(12, 13, 14, 15);
  const __m128i vr =
      _mm_cvtsi32_si128(static_cast<int>(gf32::kReduction));

  __m256i xacc = _mm256_setzero_si256();
  std::uint32_t h = 0;
  for (std::size_t g = groups; g-- > 0;) {
    const std::uint8_t* p = base + g * 64;
    const __m256i lo =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    const __m256i hi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32));
    xacc = _mm256_xor_si256(xacc, _mm256_xor_si256(lo, hi));

    const __m256i los = _mm256_shuffle_epi8(lo, bswap32);
    const __m256i his = _mm256_shuffle_epi8(hi, bswap32);
    const __m256i w0 =
        _mm256_cvtepu32_epi64(_mm256_castsi256_si128(los));
    const __m256i w1 =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(los, 1));
    const __m256i w2 =
        _mm256_cvtepu32_epi64(_mm256_castsi256_si128(his));
    const __m256i w3 =
        _mm256_cvtepu32_epi64(_mm256_extracti128_si256(his, 1));
    const __m256i u = _mm256_xor_si256(
        _mm256_xor_si256(_mm256_sllv_epi64(w0, sh0),
                         _mm256_sllv_epi64(w1, sh1)),
        _mm256_xor_si256(_mm256_sllv_epi64(w2, sh2),
                         _mm256_sllv_epi64(w3, sh3)));
    const __m128i u128 = _mm_xor_si128(_mm256_castsi256_si128(u),
                                       _mm256_extracti128_si256(u, 1));
    const std::uint64_t U =
        static_cast<std::uint64_t>(_mm_extract_epi64(u128, 0)) ^
        static_cast<std::uint64_t>(_mm_extract_epi64(u128, 1));

    // One fold: the ≥ x^32 part of U is ≤ 15 bits, and its product
    // with the degree-7 reduction polynomial stays below x^32.
    const __m128i vhi = _mm_cvtsi64_si128(static_cast<long long>(U >> 32));
    const __m128i f = _mm_clmulepi64_si128(vhi, vr, 0x00);
    const std::uint32_t u32 =
        static_cast<std::uint32_t>(_mm_cvtsi128_si64(f)) ^
        static_cast<std::uint32_t>(U);

    h = gf32::times_alpha16(h) ^ u32;
  }

  // Horizontal XOR of the raw accumulator; one byte swap at the end.
  const __m128i x128 = _mm_xor_si128(_mm256_castsi256_si128(xacc),
                                     _mm256_extracti128_si256(xacc, 1));
  const std::uint64_t xq =
      static_cast<std::uint64_t>(_mm_extract_epi64(x128, 0)) ^
      static_cast<std::uint64_t>(_mm_extract_epi64(x128, 1));
  const std::uint32_t xw = static_cast<std::uint32_t>(xq) ^
                           static_cast<std::uint32_t>(xq >> 32);
  rs.x ^= __builtin_bswap32(xw);

  rs.h = h;
  if (rem != 0) {
    rs.h ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(
                          static_cast<std::uint32_t>(rem_start)),
                      rem);
  }
  return rs;
}

}  // namespace

KernelFn native_kernel() {
  const CpuFeatures& f = cpu_features();
  return (f.avx2 && f.pclmul) ? &run_clmul16 : nullptr;
}

const char* native_kernel_name() { return "clmul16"; }

#else

KernelFn native_kernel() { return nullptr; }

const char* native_kernel_name() { return "none"; }

#endif

}  // namespace chunknet::wsc2_kernels
