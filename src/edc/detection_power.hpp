// Empirical error-detection-power harness (supports bench E4).
//
// The paper claims WSC-2 "has the error detection power of an
// equivalent cyclic redundancy code" while remaining computable on
// disordered data, and that the TCP checksum is computable on
// disordered data but weaker. This harness makes those claims
// measurable: for each registered code it injects controlled error
// classes into random messages and counts undetected corruptions.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.hpp"

namespace chunknet {

/// A code under test: maps a message to a (≤64-bit) check value.
struct CodeUnderTest {
  std::string name;
  int check_bits;            ///< width of the check value
  bool order_independent;    ///< can it be computed on disordered data?
  std::function<std::uint64_t(std::span<const std::uint8_t>)> compute;
};

/// Error classes exercised by the harness.
enum class ErrorClass {
  kSingleBit,      ///< one flipped bit
  kDoubleBit,      ///< two flipped bits, independent positions
  kBurst32,        ///< contiguous burst of ≤32 corrupted bits
  kBurst64,        ///< contiguous burst of ≤64 corrupted bits
  kWordSwap,       ///< two aligned 16-bit words exchanged
  kWordReorder,    ///< random permutation of 32-bit words (models disorder
                   ///< reaching an order-dependent code unnoticed)
  kRandomGarbage,  ///< message replaced by random bytes
};

const char* to_string(ErrorClass c);

struct DetectionResult {
  ErrorClass error_class;
  std::uint64_t trials{0};
  std::uint64_t undetected{0};
  double undetected_fraction() const {
    return trials ? static_cast<double>(undetected) / static_cast<double>(trials)
                  : 0.0;
  }
};

/// Runs `trials` corruptions of `message_len`-byte random messages for
/// one code and one error class.
DetectionResult measure_detection(const CodeUnderTest& code, ErrorClass cls,
                                  std::size_t message_len, std::uint64_t trials,
                                  Rng& rng);

/// The standard roster used by tests and bench E4: WSC-2 (both parity
/// words), CRC-32, Internet checksum, Fletcher-32, Adler-32.
std::vector<CodeUnderTest> standard_code_roster();

}  // namespace chunknet
