#include "src/edc/crc32.hpp"

#include <array>

namespace chunknet {

namespace {

constexpr std::uint32_t kPolyReflected = 0xEDB88320u;

struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};
  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (c >> 1) ^ kPolyReflected : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32_bitwise(std::span<const std::uint8_t> data,
                            std::uint32_t seed) {
  std::uint32_t c = seed;
  for (const std::uint8_t b : data) {
    c ^= b;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (c >> 1) ^ kPolyReflected : c >> 1;
    }
  }
  return c;
}

std::uint32_t crc32_table(std::span<const std::uint8_t> data,
                          std::uint32_t seed) {
  const auto& t = tables().t[0];
  std::uint32_t c = seed;
  for (const std::uint8_t b : data) {
    c = (c >> 8) ^ t[(c ^ b) & 0xFFu];
  }
  return c;
}

std::uint32_t crc32_slice4(std::span<const std::uint8_t> data,
                           std::uint32_t seed) {
  const auto& t = tables().t;
  std::uint32_t c = seed;
  std::size_t i = 0;
  const std::size_t n4 = data.size() & ~std::size_t{3};
  for (; i < n4; i += 4) {
    c ^= static_cast<std::uint32_t>(data[i]) |
         (static_cast<std::uint32_t>(data[i + 1]) << 8) |
         (static_cast<std::uint32_t>(data[i + 2]) << 16) |
         (static_cast<std::uint32_t>(data[i + 3]) << 24);
    c = t[3][c & 0xFFu] ^ t[2][(c >> 8) & 0xFFu] ^ t[1][(c >> 16) & 0xFFu] ^
        t[0][c >> 24];
  }
  for (; i < data.size(); ++i) {
    c = (c >> 8) ^ t[0][(c ^ data[i]) & 0xFFu];
  }
  return c;
}

}  // namespace chunknet
