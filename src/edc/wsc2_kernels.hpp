// Named WSC-2 inner-loop kernels and their runtime dispatch.
//
// Every kernel computes the same pure function over a run of whole
// big-endian 32-bit words d_0..d_{words-1}:
//
//     x = ⊕_w d_w            (the P0 contribution)
//     h = Σ_w α^w ⊗ d_w      (the position-free Horner sum; the caller
//                             grafts it at its absolute position with
//                             one multiply by α^pos)
//
// Both outputs are elements of GF(2^32), so every kernel — scalar
// chain, slice-by-4/8, or the AVX2+PCLMUL 16-word groups — produces
// bit-identical results; the scalar chain is the oracle the others are
// differential-tested against (tests/test_wsc2.cpp, chaos fuzzers).
//
// Dispatch picks the widest kernel the CPU supports once, at first
// use: AVX2+PCLMUL → clmul16, otherwise the portable slice-by-8.
// CHUNKNET_FORCE_SCALAR pins the scalar chain (src/common/cpu.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace chunknet::wsc2_kernels {

/// The two accumulator deltas a run of whole words contributes.
struct RunSum {
  std::uint32_t x{0};  ///< ⊕ d_w
  std::uint32_t h{0};  ///< Σ α^w ⊗ d_w
};

using KernelFn = RunSum (*)(const std::uint8_t* base, std::size_t words);

/// Word-at-a-time Horner chain: one ×α per word. The oracle.
RunSum run_scalar(const std::uint8_t* base, std::size_t words);

/// Four independent Horner chains stepped by α⁴ (the historical
/// default; kept as the bench baseline the ISSUE's ≥1.5x is against).
RunSum run_sliced4(const std::uint8_t* base, std::size_t words);

/// Eight independent Horner chains stepped by α⁸ — portable widened
/// kernel (one shift + one 256-entry table fold per chain step).
RunSum run_sliced8(const std::uint8_t* base, std::size_t words);

/// The native SIMD kernel for this build target, or nullptr when the
/// running CPU lacks the required features (AVX2+PCLMUL on x86-64).
/// Defined in wsc2_simd.cpp.
KernelFn native_kernel();
const char* native_kernel_name();

/// The kernel add_words dispatches to (cached after first call).
KernelFn dispatch();

/// Name of the dispatched kernel: "scalar", "sliced4", "sliced8", or
/// the native kernel's name ("clmul16"). Recorded in BENCH_*.json.
const char* selected_kernel_name();

/// Every kernel runnable on this machine, for bench tables and
/// differential tests: always scalar/sliced4/sliced8, plus the native
/// kernel when the CPU supports it (independent of FORCE_SCALAR —
/// that pin affects dispatch(), not availability).
struct NamedKernel {
  const char* name;
  KernelFn fn;
};
std::span<const NamedKernel> available_kernels();

}  // namespace chunknet::wsc2_kernels
