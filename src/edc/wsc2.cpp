#include "src/edc/wsc2.hpp"

namespace chunknet {

namespace {
std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}
}  // namespace

namespace {

// The trailing non-word bytes of `bytes`, if any, pad-absorbed as one
// partial big-endian symbol. Such bytes are a contract violation for
// EDC-covered data; absorbing them (at position pos + words) means
// nothing is silently dropped if a caller slips.
std::uint32_t partial_tail_symbol(std::span<const std::uint8_t> bytes) {
  const std::size_t words = bytes.size() / 4;
  const std::size_t tail = bytes.size() - words * 4;
  std::uint32_t d = 0;
  for (std::size_t i = 0; i < tail; ++i) {
    d |= static_cast<std::uint32_t>(bytes[words * 4 + i])
         << (24 - 8 * static_cast<int>(i));
  }
  return d;
}

}  // namespace

void Wsc2Accumulator::add_words_scalar(std::uint32_t pos,
                                       std::span<const std::uint8_t> bytes) {
  // A contiguous run contributes Σ α^(pos+w)·d_w = α^pos · H where
  // H = Σ α^w·d_w evaluates by Horner's rule over the REVERSED word
  // order: H = d₀ ⊕ α(d₁ ⊕ α(d₂ ⊕ …)). Each step is one ×α (a shift
  // and conditional XOR), so the run costs ~1 cheap op per word plus a
  // single full multiply by the ladder weight α^pos at the end —
  // preserving exact equality with per-symbol absorption (tested).
  const std::size_t words = bytes.size() / 4;
  std::uint32_t horner = 0;

  if (bytes.size() % 4 != 0) {
    const std::uint32_t d = partial_tail_symbol(bytes);
    p0_ ^= d;
    horner = d;
  } else if (words == 0) {
    return;
  }

  const std::uint8_t* base = bytes.data();
  for (std::size_t w = words; w-- > 0;) {
    const std::uint32_t d = load_be32(base + w * 4);
    p0_ ^= d;
    horner = gf32::times_alpha(horner) ^ d;
  }
  p1_ ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(pos), horner);
}

void Wsc2Accumulator::add_words(std::uint32_t pos,
                                std::span<const std::uint8_t> bytes) {
  // Slice-by-4: the scalar loop's `horner = α·horner ⊕ d` is a serial
  // dependency chain, so it runs at the ×α latency per word no matter
  // how wide the core is. Split the word sequence by index mod 4:
  //     H = Σ_w α^w·d_w = Σ_{r<4} α^r · H_r,   H_r = Σ_q (α⁴)^q·d_{4q+r}
  // Each H_r is its own Horner chain in α⁴ (one shift + one 16-entry
  // table fold per step, gf32::times_alpha4), and the four chains are
  // independent — the CPU overlaps them, retiring ~4 words per chain
  // latency. Remainder words and any partial tail run through the
  // scalar recurrence and are grafted on with one weight multiply.
  const std::size_t words = bytes.size() / 4;
  const std::size_t groups = words / 4;
  if (groups < 2) {  // too short for slicing to pay for the combine
    add_words_scalar(pos, bytes);
    return;
  }
  const std::uint8_t* base = bytes.data();
  const std::size_t rem_start = groups * 4;

  // rem = Σ_{j} α^j·d_{rem_start+j} (+ partial tail at the far end),
  // i.e. the scalar Horner of everything past the sliced region.
  std::uint32_t rem = 0;
  if (bytes.size() % 4 != 0) {
    const std::uint32_t d = partial_tail_symbol(bytes);
    p0_ ^= d;
    rem = d;
  }
  for (std::size_t w = words; w-- > rem_start;) {
    const std::uint32_t d = load_be32(base + w * 4);
    p0_ ^= d;
    rem = gf32::times_alpha(rem) ^ d;
  }

  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0;
  std::uint32_t x0 = 0, x1 = 0, x2 = 0, x3 = 0;
  for (std::size_t g = groups; g-- > 0;) {
    const std::uint8_t* p = base + g * 16;
    const std::uint32_t d0 = load_be32(p);
    const std::uint32_t d1 = load_be32(p + 4);
    const std::uint32_t d2 = load_be32(p + 8);
    const std::uint32_t d3 = load_be32(p + 12);
    x0 ^= d0;
    x1 ^= d1;
    x2 ^= d2;
    x3 ^= d3;
    h0 = gf32::times_alpha4(h0) ^ d0;
    h1 = gf32::times_alpha4(h1) ^ d1;
    h2 = gf32::times_alpha4(h2) ^ d2;
    h3 = gf32::times_alpha4(h3) ^ d3;
  }
  p0_ ^= x0 ^ x1 ^ x2 ^ x3;

  // H = H_0 ⊕ α·H_1 ⊕ α²·H_2 ⊕ α³·H_3, then graft the remainder at
  // its true offset: total = H ⊕ α^(4·groups)·rem.
  std::uint32_t horner = h0 ^ gf32::times_alpha(h1) ^
                         gf32::times_alpha(gf32::times_alpha(h2)) ^
                         gf32::times_alpha(
                             gf32::times_alpha(gf32::times_alpha(h3)));
  if (rem != 0) {
    horner ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(
                            static_cast<std::uint32_t>(4 * groups)),
                        rem);
  }
  p1_ ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(pos), horner);
}

Wsc2Code wsc2_compute(std::span<const std::uint8_t> bytes,
                      std::uint32_t first_pos) {
  Wsc2Accumulator acc;
  acc.add_words(first_pos, bytes);
  return acc.value();
}

}  // namespace chunknet
