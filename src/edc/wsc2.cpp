#include "src/edc/wsc2.hpp"

#include "src/edc/wsc2_kernels.hpp"

namespace chunknet {

namespace {
std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}
}  // namespace

namespace {

// The trailing non-word bytes of `bytes`, if any, pad-absorbed as one
// partial big-endian symbol. Such bytes are a contract violation for
// EDC-covered data; absorbing them (at position pos + words) means
// nothing is silently dropped if a caller slips.
std::uint32_t partial_tail_symbol(std::span<const std::uint8_t> bytes) {
  const std::size_t words = bytes.size() / 4;
  const std::size_t tail = bytes.size() - words * 4;
  std::uint32_t d = 0;
  for (std::size_t i = 0; i < tail; ++i) {
    d |= static_cast<std::uint32_t>(bytes[words * 4 + i])
         << (24 - 8 * static_cast<int>(i));
  }
  return d;
}

}  // namespace

void Wsc2Accumulator::add_words_scalar(std::uint32_t pos,
                                       std::span<const std::uint8_t> bytes) {
  // A contiguous run contributes Σ α^(pos+w)·d_w = α^pos · H where
  // H = Σ α^w·d_w evaluates by Horner's rule over the REVERSED word
  // order: H = d₀ ⊕ α(d₁ ⊕ α(d₂ ⊕ …)). Each step is one ×α (a shift
  // and conditional XOR), so the run costs ~1 cheap op per word plus a
  // single full multiply by the ladder weight α^pos at the end —
  // preserving exact equality with per-symbol absorption (tested).
  const std::size_t words = bytes.size() / 4;
  std::uint32_t horner = 0;

  if (bytes.size() % 4 != 0) {
    const std::uint32_t d = partial_tail_symbol(bytes);
    p0_ ^= d;
    horner = d;
  } else if (words == 0) {
    return;
  }

  const std::uint8_t* base = bytes.data();
  for (std::size_t w = words; w-- > 0;) {
    const std::uint32_t d = load_be32(base + w * 4);
    p0_ ^= d;
    horner = gf32::times_alpha(horner) ^ d;
  }
  p1_ ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(pos), horner);
}

void Wsc2Accumulator::add_words(std::uint32_t pos,
                                std::span<const std::uint8_t> bytes) {
  // The scalar loop's `horner = α·horner ⊕ d` is a serial dependency
  // chain, so it runs at the ×α latency per word no matter how wide
  // the core is. The run of whole words therefore goes through the
  // dispatched kernel (src/edc/wsc2_kernels.hpp): slice-by-4/8 Horner
  // chains on portable hardware, 16-word unreduced SIMD groups on
  // AVX2+PCLMUL machines — all computing the exact same pair
  //     x = ⊕ d_w,   h = Σ α^w ⊗ d_w
  // over GF(2^32), hence bit-identical to this function's historical
  // output (differential-tested against add_words_scalar). A partial
  // tail symbol is grafted at offset `words` with one ladder multiply,
  // exactly where the scalar recurrence would have placed it.
  const std::size_t words = bytes.size() / 4;
  std::uint32_t tail = 0;
  const bool has_tail = bytes.size() % 4 != 0;
  if (has_tail) {
    tail = partial_tail_symbol(bytes);
    p0_ ^= tail;
  } else if (words == 0) {
    return;
  }

  const wsc2_kernels::RunSum rs = wsc2_kernels::dispatch()(bytes.data(), words);
  p0_ ^= rs.x;
  std::uint32_t horner = rs.h;
  if (has_tail) {
    horner ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(
                            static_cast<std::uint32_t>(words)),
                        tail);
  }
  p1_ ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(pos), horner);
}

Wsc2Code wsc2_compute(std::span<const std::uint8_t> bytes,
                      std::uint32_t first_pos) {
  Wsc2Accumulator acc;
  acc.add_words(first_pos, bytes);
  return acc.value();
}

}  // namespace chunknet
