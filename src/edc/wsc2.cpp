#include "src/edc/wsc2.hpp"

namespace chunknet {

namespace {
std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}
}  // namespace

void Wsc2Accumulator::add_words(std::uint32_t pos,
                                std::span<const std::uint8_t> bytes) {
  // A contiguous run contributes Σ α^(pos+w)·d_w = α^pos · H where
  // H = Σ α^w·d_w evaluates by Horner's rule over the REVERSED word
  // order: H = d₀ ⊕ α(d₁ ⊕ α(d₂ ⊕ …)). Each step is one ×α (a shift
  // and conditional XOR), so the run costs ~1 cheap op per word plus a
  // single full multiply by the ladder weight α^pos at the end —
  // preserving exact equality with per-symbol absorption (tested).
  const std::size_t words = bytes.size() / 4;
  std::uint32_t horner = 0;

  // Trailing non-word bytes are a contract violation for EDC-covered
  // data; pad-absorb them as a final partial symbol (position
  // pos + words) so nothing is silently dropped if a caller slips.
  const std::size_t tail = bytes.size() - words * 4;
  if (tail != 0) {
    std::uint32_t d = 0;
    for (std::size_t i = 0; i < tail; ++i) {
      d |= static_cast<std::uint32_t>(bytes[words * 4 + i])
           << (24 - 8 * static_cast<int>(i));
    }
    p0_ ^= d;
    horner = d;
  } else if (words == 0) {
    return;
  }

  const std::uint8_t* base = bytes.data();
  for (std::size_t w = words; w-- > 0;) {
    const std::uint32_t d = load_be32(base + w * 4);
    p0_ ^= d;
    horner = gf32::times_alpha(horner) ^ d;
  }
  p1_ ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(pos), horner);
}

Wsc2Code wsc2_compute(std::span<const std::uint8_t> bytes,
                      std::uint32_t first_pos) {
  Wsc2Accumulator acc;
  acc.add_words(first_pos, bytes);
  return acc.value();
}

}  // namespace chunknet
