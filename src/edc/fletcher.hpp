// Fletcher-32 and Adler-32 checksums.
//
// Additional order-DEPENDENT baselines for the E4 detection-power and
// throughput comparison. Fletcher/Adler weight each byte by its
// position through the running second sum, so like CRC they cannot be
// computed on disordered fragments — they sit between the Internet
// checksum and CRC in both cost and strength.
#pragma once

#include <cstdint>
#include <span>

namespace chunknet {

/// Fletcher-32 over 16-bit big-endian words (odd tail zero-padded).
std::uint32_t fletcher32(std::span<const std::uint8_t> data);

/// Adler-32 (zlib) checksum.
std::uint32_t adler32(std::span<const std::uint8_t> data);

}  // namespace chunknet
