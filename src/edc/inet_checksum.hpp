// The Internet (RFC 1071) 16-bit ones-complement checksum.
//
// Footnote 11 of the paper: "The TCP checksum can be computed on
// disordered data, but has less powerful error detection properties
// than both CRC and WSC-2." This module is that middle point of the
// comparison: order-independent (addition commutes, as long as
// fragments split on 16-bit boundaries) but blind to reordered words,
// swapped 16-bit units, and many 2-bit error patterns — bench E4
// measures exactly how much weaker it is.
#pragma once

#include <cstdint>
#include <span>

namespace chunknet {

/// Ones-complement sum of 16-bit big-endian words (without final
/// inversion). Odd trailing byte is padded with zero, per RFC 1071.
std::uint16_t inet_sum(std::span<const std::uint8_t> data);

/// Standard Internet checksum (inverted sum).
inline std::uint16_t inet_checksum(std::span<const std::uint8_t> data) {
  return static_cast<std::uint16_t>(~inet_sum(data));
}

/// Incremental, order-independent accumulator: partial sums over
/// 16-bit-aligned fragments combine by ones-complement addition
/// regardless of arrival order.
class InetChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data) { add_sum(inet_sum(data)); }
  void add_sum(std::uint16_t partial) {
    std::uint32_t s = static_cast<std::uint32_t>(sum_) + partial;
    s = (s & 0xFFFFu) + (s >> 16);
    sum_ = static_cast<std::uint16_t>(s);
  }
  std::uint16_t checksum() const { return static_cast<std::uint16_t>(~sum_); }
  void reset() { sum_ = 0; }

 private:
  std::uint16_t sum_{0};
};

}  // namespace chunknet
