#include "src/edc/wsc2_kernels.hpp"

#include <vector>

#include "src/common/cpu.hpp"
#include "src/gf/gf32.hpp"

namespace chunknet::wsc2_kernels {

namespace {

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

// Scalar Horner of the words in [from, words), i.e. everything past a
// sliced kernel's group region, folded into rs.x and returned as the
// remainder sum Σ_{j} α^j ⊗ d_{from+j}. The caller grafts it at its
// offset with one ladder multiply.
inline std::uint32_t remainder_chain(const std::uint8_t* base,
                                     std::size_t from, std::size_t words,
                                     RunSum& rs) {
  std::uint32_t rem = 0;
  for (std::size_t w = words; w-- > from;) {
    const std::uint32_t d = load_be32(base + w * 4);
    rs.x ^= d;
    rem = gf32::times_alpha(rem) ^ d;
  }
  return rem;
}

}  // namespace

RunSum run_scalar(const std::uint8_t* base, std::size_t words) {
  RunSum rs;
  for (std::size_t w = words; w-- > 0;) {
    const std::uint32_t d = load_be32(base + w * 4);
    rs.x ^= d;
    rs.h = gf32::times_alpha(rs.h) ^ d;
  }
  return rs;
}

RunSum run_sliced4(const std::uint8_t* base, std::size_t words) {
  // Split the word sequence by index mod 4:
  //     h = Σ_w α^w·d_w = Σ_{r<4} α^r · H_r,  H_r = Σ_q (α⁴)^q·d_{4q+r}
  // Each H_r is its own Horner chain in α⁴ (one shift + one 16-entry
  // table fold per step), and the four chains are independent — the
  // CPU overlaps them, retiring ~4 words per chain-step latency.
  const std::size_t groups = words / 4;
  if (groups < 2) return run_scalar(base, words);

  RunSum rs;
  const std::size_t rem_start = groups * 4;
  const std::uint32_t rem = remainder_chain(base, rem_start, words, rs);

  std::uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0;
  std::uint32_t x0 = 0, x1 = 0, x2 = 0, x3 = 0;
  for (std::size_t g = groups; g-- > 0;) {
    const std::uint8_t* p = base + g * 16;
    const std::uint32_t d0 = load_be32(p);
    const std::uint32_t d1 = load_be32(p + 4);
    const std::uint32_t d2 = load_be32(p + 8);
    const std::uint32_t d3 = load_be32(p + 12);
    x0 ^= d0;
    x1 ^= d1;
    x2 ^= d2;
    x3 ^= d3;
    h0 = gf32::times_alpha4(h0) ^ d0;
    h1 = gf32::times_alpha4(h1) ^ d1;
    h2 = gf32::times_alpha4(h2) ^ d2;
    h3 = gf32::times_alpha4(h3) ^ d3;
  }
  rs.x ^= x0 ^ x1 ^ x2 ^ x3;

  // h = H_0 ⊕ α·H_1 ⊕ α²·H_2 ⊕ α³·H_3, then the remainder at its true
  // offset.
  rs.h = h0 ^ gf32::times_alpha(h1) ^
         gf32::times_alpha(gf32::times_alpha(h2)) ^
         gf32::times_alpha(gf32::times_alpha(gf32::times_alpha(h3)));
  if (rem != 0) {
    rs.h ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(
                          static_cast<std::uint32_t>(rem_start)),
                      rem);
  }
  return rs;
}

RunSum run_sliced8(const std::uint8_t* base, std::size_t words) {
  // Same slicing idea widened to eight chains stepped by α⁸: each step
  // is one shift + one 256-entry fold (gf32::times_alpha8), and eight
  // independent chains cover a 32-byte stride per iteration — twice
  // the work per chain-step latency of slice-by-4.
  const std::size_t groups = words / 8;
  if (groups < 2) return run_sliced4(base, words);

  RunSum rs;
  const std::size_t rem_start = groups * 8;
  const std::uint32_t rem = remainder_chain(base, rem_start, words, rs);

  std::uint32_t h[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::uint32_t x[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (std::size_t g = groups; g-- > 0;) {
    const std::uint8_t* p = base + g * 32;
    for (int r = 0; r < 8; ++r) {
      const std::uint32_t d = load_be32(p + 4 * r);
      x[r] ^= d;
      h[r] = gf32::times_alpha8(h[r]) ^ d;
    }
  }
  for (int r = 0; r < 8; ++r) rs.x ^= x[r];

  // h = Σ_{r<8} α^r·H_r by Horner over the chain index.
  std::uint32_t horner = h[7];
  for (int r = 6; r >= 0; --r) horner = gf32::times_alpha(horner) ^ h[r];
  rs.h = horner;
  if (rem != 0) {
    rs.h ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(
                          static_cast<std::uint32_t>(rem_start)),
                      rem);
  }
  return rs;
}

namespace {

KernelFn resolve() {
  if (force_scalar()) return &run_scalar;
  if (KernelFn fn = native_kernel()) return fn;
  return &run_sliced8;
}

}  // namespace

KernelFn dispatch() {
  static const KernelFn fn = resolve();
  return fn;
}

std::span<const NamedKernel> available_kernels() {
  static const std::vector<NamedKernel> kernels = [] {
    std::vector<NamedKernel> v{{"scalar", &run_scalar},
                               {"sliced4", &run_sliced4},
                               {"sliced8", &run_sliced8}};
    if (KernelFn fn = native_kernel()) v.push_back({native_kernel_name(), fn});
    return v;
  }();
  return kernels;
}

const char* selected_kernel_name() {
  const KernelFn fn = dispatch();
  for (const NamedKernel& k : available_kernels()) {
    if (k.fn == fn) return k.name;
  }
  return "scalar";
}

}  // namespace chunknet::wsc2_kernels
