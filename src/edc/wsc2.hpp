// WSC-2: the Weighted Sum Code used by the paper for end-to-end error
// detection over disordered, fragmented chunks (§4, [MCAU 93a]).
//
// A WSC-2 encoder takes 32-bit data symbols d_i at absolute positions i
// and produces two 32-bit parity symbols over GF(2^32):
//
//     P0 = ⊕_i d_i                 (plain XOR sum)
//     P1 = ⊕_i  αⁱ ⊗ d_i           (position-weighted sum)
//
// Valid positions are 0 ≤ i < 2^29 − 2; positions never written are
// equivalent to encoding a zero symbol there. Because each contribution
// depends only on (i, d_i), symbols may be absorbed IN ANY ORDER and
// partial accumulators may be COMBINED — exactly the property that lets
// a receiver checksum chunks as they arrive, before reassembly, and
// that keeps the checksum invariant under in-network fragmentation
// (each fragment's symbols keep their absolute positions).
//
// Detection power (verified empirically in bench E4):
//  - any single corrupted symbol is detected (P0 changes);
//  - any two corrupted symbols are detected: cancellation would need
//    e_i = e_j (from P0) and αⁱe = αʲe (from P1), i.e. αⁱ = αʲ, which
//    cannot happen inside the 2^29-symbol code space since ord(α) ≈ 2^30.4;
//  - random garbage passes with probability ≈ 2^-64.
// This matches the paper's claim of "error detection power of an
// equivalent CRC", while CRC itself cannot be computed on disordered
// data ([FELD 92], demonstrated by bench E4).
#pragma once

#include <cstdint>
#include <span>

#include "src/gf/gf32.hpp"

namespace chunknet {

/// The pair of parity symbols produced by WSC-2.
struct Wsc2Code {
  std::uint32_t p0{0};
  std::uint32_t p1{0};

  friend bool operator==(const Wsc2Code&, const Wsc2Code&) = default;
};

/// Largest valid symbol position (exclusive): 2^29 − 2 per the paper.
inline constexpr std::uint32_t kWsc2PositionLimit = (1u << 29) - 2;

/// Incremental, order-independent WSC-2 accumulator.
///
/// Thread-compatible; independent accumulators over disjoint symbol sets
/// can be combined with `combine` (used by the parallel-processing path
/// and by the transmitter, which encodes header fields and payload in
/// separate passes).
class Wsc2Accumulator {
 public:
  /// Absorbs one 32-bit symbol at absolute position `pos`.
  /// Precondition: pos < kWsc2PositionLimit.
  void add_symbol(std::uint32_t pos, std::uint32_t value) {
    p0_ ^= value;
    p1_ ^= gf32::mul(gf32::PowerLadder::shared().alpha_pow(pos), value);
  }

  /// Absorbs a run of 32-bit symbols starting at `pos`, reading
  /// big-endian words from `bytes`. `bytes.size()` must be a multiple
  /// of 4 (SIZE % 4 == 0 is enforced upstream for EDC-covered chunks).
  /// Dispatches to the widest kernel the CPU supports (slice-by-8
  /// Horner chains portably, 16-word AVX2+PCLMUL groups on x86-64 —
  /// see src/edc/wsc2_kernels.hpp); CHUNKNET_FORCE_SCALAR pins the
  /// scalar chain. Every kernel is bit-identical to
  /// `add_words_scalar` (tested).
  void add_words(std::uint32_t pos, std::span<const std::uint8_t> bytes);

  /// The reference word-at-a-time Horner loop (one ×α per word).
  /// Kept as the equality oracle for the sliced kernel and as the
  /// baseline for bench E10's scalar-vs-sliced comparison.
  void add_words_scalar(std::uint32_t pos, std::span<const std::uint8_t> bytes);

  /// Removes a previously added symbol (add is an involution in GF(2),
  /// so absorb again). Used by duplicate-rejection rollback paths.
  void remove_symbol(std::uint32_t pos, std::uint32_t value) {
    add_symbol(pos, value);
  }

  /// Merges another accumulator (over a disjoint or identical-twice set
  /// of positions) into this one.
  void combine(const Wsc2Accumulator& other) {
    p0_ ^= other.p0_;
    p1_ ^= other.p1_;
  }

  Wsc2Code value() const { return {p0_, p1_}; }

  void reset() { p0_ = p1_ = 0; }

 private:
  std::uint32_t p0_{0};
  std::uint32_t p1_{0};
};

/// One-shot convenience: WSC-2 of a contiguous word buffer placed at
/// positions [first_pos, first_pos + words).
Wsc2Code wsc2_compute(std::span<const std::uint8_t> bytes,
                      std::uint32_t first_pos = 0);

}  // namespace chunknet
