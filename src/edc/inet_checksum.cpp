#include "src/edc/inet_checksum.hpp"

namespace chunknet {

std::uint16_t inet_sum(std::span<const std::uint8_t> data) {
  std::uint64_t sum = 0;
  std::size_t i = 0;
  const std::size_t n2 = data.size() & ~std::size_t{1};
  for (; i < n2; i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFFu) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(sum);
}

}  // namespace chunknet
