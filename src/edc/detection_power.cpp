#include "src/edc/detection_power.hpp"

#include <algorithm>

#include "src/edc/crc32.hpp"
#include "src/edc/fletcher.hpp"
#include "src/edc/inet_checksum.hpp"
#include "src/edc/wsc2.hpp"

namespace chunknet {

const char* to_string(ErrorClass c) {
  switch (c) {
    case ErrorClass::kSingleBit: return "single-bit";
    case ErrorClass::kDoubleBit: return "double-bit";
    case ErrorClass::kBurst32: return "burst<=32b";
    case ErrorClass::kBurst64: return "burst<=64b";
    case ErrorClass::kWordSwap: return "16b-word-swap";
    case ErrorClass::kWordReorder: return "32b-word-reorder";
    case ErrorClass::kRandomGarbage: return "random-garbage";
  }
  return "?";
}

namespace {

void flip_bit(std::vector<std::uint8_t>& m, std::uint64_t bit) {
  m[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

/// Applies one corruption of the given class; returns false if the
/// corruption happened to be an identity (so the trial is not counted).
bool corrupt(std::vector<std::uint8_t>& m, ErrorClass cls, Rng& rng) {
  const std::uint64_t bits = static_cast<std::uint64_t>(m.size()) * 8;
  switch (cls) {
    case ErrorClass::kSingleBit:
      flip_bit(m, rng.below(bits));
      return true;
    case ErrorClass::kDoubleBit: {
      const std::uint64_t a = rng.below(bits);
      std::uint64_t b = rng.below(bits);
      while (b == a) b = rng.below(bits);
      flip_bit(m, a);
      flip_bit(m, b);
      return true;
    }
    case ErrorClass::kBurst32:
    case ErrorClass::kBurst64: {
      const std::uint64_t max_len = cls == ErrorClass::kBurst32 ? 32 : 64;
      const std::uint64_t len = rng.range(2, max_len);
      const std::uint64_t start = rng.below(bits - len + 1);
      // First and last bit of a burst are flipped by definition; the
      // interior is random.
      flip_bit(m, start);
      flip_bit(m, start + len - 1);
      for (std::uint64_t i = 1; i + 1 < len; ++i) {
        if (rng.chance(0.5)) flip_bit(m, start + i);
      }
      return true;
    }
    case ErrorClass::kWordSwap: {
      const std::size_t words = m.size() / 2;
      if (words < 2) return false;
      const std::size_t a = rng.below(words);
      std::size_t b = rng.below(words);
      while (b == a) b = rng.below(words);
      if (m[2 * a] == m[2 * b] && m[2 * a + 1] == m[2 * b + 1]) return false;
      std::swap(m[2 * a], m[2 * b]);
      std::swap(m[2 * a + 1], m[2 * b + 1]);
      return true;
    }
    case ErrorClass::kWordReorder: {
      const std::size_t words = m.size() / 4;
      if (words < 2) return false;
      std::vector<std::uint8_t> orig = m;
      // Fisher-Yates over 32-bit words.
      for (std::size_t i = words - 1; i > 0; --i) {
        const std::size_t j = rng.below(i + 1);
        for (int k = 0; k < 4; ++k) std::swap(m[4 * i + k], m[4 * j + k]);
      }
      return m != orig;
    }
    case ErrorClass::kRandomGarbage: {
      std::vector<std::uint8_t> orig = m;
      for (auto& b : m) b = static_cast<std::uint8_t>(rng.next());
      return m != orig;
    }
  }
  return false;
}

}  // namespace

DetectionResult measure_detection(const CodeUnderTest& code, ErrorClass cls,
                                  std::size_t message_len, std::uint64_t trials,
                                  Rng& rng) {
  DetectionResult result{cls, 0, 0};
  std::vector<std::uint8_t> message(message_len);
  for (std::uint64_t t = 0; t < trials; ++t) {
    for (auto& b : message) b = static_cast<std::uint8_t>(rng.next());
    const std::uint64_t clean = code.compute(message);
    std::vector<std::uint8_t> dirty = message;
    if (!corrupt(dirty, cls, rng)) continue;
    ++result.trials;
    if (code.compute(dirty) == clean) ++result.undetected;
  }
  return result;
}

std::vector<CodeUnderTest> standard_code_roster() {
  std::vector<CodeUnderTest> roster;
  roster.push_back({"WSC-2", 64, true, [](std::span<const std::uint8_t> m) {
                      const Wsc2Code c = wsc2_compute(m);
                      return (static_cast<std::uint64_t>(c.p0) << 32) | c.p1;
                    }});
  roster.push_back({"WSC-2/P0-only", 32, true,
                    [](std::span<const std::uint8_t> m) {
                      return static_cast<std::uint64_t>(wsc2_compute(m).p0);
                    }});
  roster.push_back({"CRC-32", 32, false, [](std::span<const std::uint8_t> m) {
                      return static_cast<std::uint64_t>(crc32(m));
                    }});
  roster.push_back({"Internet-16", 16, true,
                    [](std::span<const std::uint8_t> m) {
                      return static_cast<std::uint64_t>(inet_checksum(m));
                    }});
  roster.push_back({"Fletcher-32", 32, false,
                    [](std::span<const std::uint8_t> m) {
                      return static_cast<std::uint64_t>(fletcher32(m));
                    }});
  roster.push_back({"Adler-32", 32, false, [](std::span<const std::uint8_t> m) {
                      return static_cast<std::uint64_t>(adler32(m));
                    }});
  return roster;
}

}  // namespace chunknet
