// Connection demultiplexing (paper Appendix A + [FELD 90]).
//
// "Packets are utilized more efficiently if multiple chunks can be
// carried in a packet… this idea can be extended to packets that carry
// chunks from multiple connections. Data, signaling information, and
// acknowledgments can be combined in any combination."
//
// The demultiplexer opens each packet envelope ONCE and routes every
// chunk to its connection's receiver by C.ID (and ACK/SIGNAL chunks to
// a control sink, enabling piggybacked acknowledgments without any
// piggybacking logic in the error-control protocol — the Appendix-A
// modularity point). Chunk TYPE-based routing to processing units is
// how the paper envisions distributed protocol processors.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/netsim/simulator.hpp"
#include "src/transport/receiver.hpp"

namespace chunknet {

class ChunkDemultiplexer final : public PacketSink {
 public:
  /// Routes data/ED chunks with the given C.ID to `receiver`.
  void attach(std::uint32_t connection_id, ChunkTransportReceiver& receiver) {
    receivers_[connection_id] = &receiver;
  }

  /// Routes ACK and SIGNAL chunks (any connection) to `sink`; they are
  /// re-wrapped in a single-chunk packet since control consumers speak
  /// the PacketSink interface.
  void attach_control(PacketSink& sink) { control_ = &sink; }

  void on_packet(SimPacket pkt) override;

  struct Stats {
    std::uint64_t packets{0};
    std::uint64_t malformed{0};
    std::uint64_t data_chunks_routed{0};
    std::uint64_t control_chunks_routed{0};
    std::uint64_t unknown_connection{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  std::map<std::uint32_t, ChunkTransportReceiver*> receivers_;
  PacketSink* control_{nullptr};
  /// Reused across packets (no per-packet allocation at steady state).
  std::vector<ChunkView> view_scratch_;
  Stats stats_;
};

}  // namespace chunknet
