// Connection demultiplexing (paper Appendix A + [FELD 90]).
//
// "Packets are utilized more efficiently if multiple chunks can be
// carried in a packet… this idea can be extended to packets that carry
// chunks from multiple connections. Data, signaling information, and
// acknowledgments can be combined in any combination."
//
// The demultiplexer opens each packet envelope ONCE and routes every
// chunk to its connection's receiver by C.ID (and ACK/SIGNAL chunks to
// a control sink, enabling piggybacked acknowledgments without any
// piggybacking logic in the error-control protocol — the Appendix-A
// modularity point). Chunk TYPE-based routing to processing units is
// how the paper envisions distributed protocol processors.
//
// Million-flow scale-out: the connection table is SHARDED by a mixed
// hash of C.ID. Each shard owns its flows (an open-addressed FlatMap),
// its refused-connection table, its idle-LRU order, and its slice of
// the admission lease — nothing on the per-packet path crosses shards
// or takes a global lock. Shards map 1:1 onto the paper's distributed
// protocol processors: a chunk's owning shard is a pure function of
// the label, so a hardware demultiplexer could route to per-shard
// processing units the same way.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/flat_map.hpp"
#include "src/common/pick_queue.hpp"
#include "src/common/resource_governor.hpp"
#include "src/common/timer_wheel.hpp"
#include "src/netsim/simulator.hpp"
#include "src/transport/receiver.hpp"
#include "src/transport/signalling.hpp"

namespace chunknet {

/// Admission control for new connections (docs/ROBUSTNESS.md,
/// "Overload control"): a ConnectionOpen for an unknown C.ID is
/// admitted only if the governor can reserve `reserve_bytes` of
/// headroom under its hard watermark; otherwise the demultiplexer
/// answers with an explicit ConnectionRefused signal instead of letting
/// the newcomer thrash established connections.
struct DemuxAdmissionConfig {
  ResourceGovernor* governor{nullptr};
  std::uint64_t reserve_bytes{32 * 1024};
  int priority{1};
  /// Batched admission: when > 0, each shard reserves
  /// `lease_batch * reserve_bytes` of governor headroom in one call
  /// and admits that many connections locally before going back —
  /// the admit fast path touches only shard-local state. 0 keeps the
  /// legacy one-governor-call-per-connection behaviour.
  std::uint32_t lease_batch{0};
  /// Governor client ids for the per-shard leases: shard i leases
  /// under `lease_client_base + i`. Must not collide with connection
  /// ids (the default sits at the top of the id space).
  std::uint32_t lease_client_base{0xFFFF0000u};
  /// Creates and attaches the receiver for an admitted connection
  /// (ownership stays with the caller; return nullptr to refuse).
  std::function<ChunkTransportReceiver*(const ConnectionOpen&)>
      open_connection;
  /// Carries the refusal signal back toward the would-be sender.
  std::function<void(Chunk)> send_refusal;
};

/// Structural knobs, fixed at construction. The defaults reproduce the
/// single-shard demultiplexer (1 shard, no timers) — sharding and the
/// deadline-driven maintenance paths are opt-in.
struct DemuxConfig {
  /// Connection-table shards; rounded up to a power of two.
  std::uint32_t shards{1};
  /// Hard cap on remembered refusals PER SHARD; beyond it the oldest
  /// refusal is forgotten (FIFO) so the table is bounded even without
  /// a timer wheel.
  std::uint32_t max_refused{4096};
  /// Refusals are forgotten after this long (the retry-hint deadline):
  /// a sender that retries later gets a fresh admission decision.
  /// Needs `timers`.
  SimTime refused_ttl{5 * kSecond};
  /// When > 0 (and `timers` is set), a connection with no routed
  /// chunks for this long is evicted from its shard in LRU order.
  SimTime idle_timeout{0};
  /// Drives refused-TTL and idle-eviction deadlines. The wheel is
  /// shared — one per endpoint, not per demux.
  SimTimerWheel* timers{nullptr};
  /// Told about each idle eviction (the receiver is NOT destroyed —
  /// ownership stays with the caller, mirroring attach()).
  std::function<void(std::uint32_t, ChunkTransportReceiver*)> on_idle_evict;
};

class ChunkDemultiplexer final : public PacketSink {
 public:
  ChunkDemultiplexer() : ChunkDemultiplexer(DemuxConfig{}) {}
  explicit ChunkDemultiplexer(DemuxConfig cfg);
  ~ChunkDemultiplexer() override;

  ChunkDemultiplexer(const ChunkDemultiplexer&) = delete;
  ChunkDemultiplexer& operator=(const ChunkDemultiplexer&) = delete;

  /// Routes data/ED chunks with the given C.ID to `receiver`.
  void attach(std::uint32_t connection_id, ChunkTransportReceiver& receiver);

  void detach(std::uint32_t connection_id);

  /// Routes ACK and SIGNAL chunks (any connection) to `sink`; they are
  /// re-wrapped in a single-chunk packet since control consumers speak
  /// the PacketSink interface.
  void attach_control(PacketSink& sink) { control_ = &sink; }

  /// Enables signal-driven admission control (see DemuxAdmissionConfig).
  void configure_admission(DemuxAdmissionConfig admission) {
    admission_ = std::move(admission);
  }

  /// Observability (optional): connection-admission span events are
  /// recorded against `sim`'s clock, and per-shard routing counters
  /// are published to the metrics registry.
  void set_obs(ObsContext* obs, Simulator* sim);

  /// Programmatic admission (benches / topology builders): reserves
  /// governor headroom for `connection_id` without a ConnectionOpen
  /// signal. True when admitted (always, if no governor is configured).
  bool try_admit(std::uint32_t connection_id);

  void on_packet(SimPacket pkt) override;

  struct Stats {
    std::uint64_t packets{0};
    std::uint64_t malformed{0};
    std::uint64_t data_chunks_routed{0};
    std::uint64_t control_chunks_routed{0};
    std::uint64_t unknown_connection{0};
    std::uint64_t connections_admitted{0};
    std::uint64_t connections_refused{0};
    std::uint64_t refused_expired{0};  ///< refusals aged out (TTL/cap)
    std::uint64_t idle_evicted{0};
    std::uint64_t lease_acquires{0};   ///< governor round-trips for admission
  };
  /// Aggregated over shards (packet-level fields are demux-global).
  const Stats& stats() const;

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Which shard owns a connection id (pure function of the label).
  std::uint32_t shard_of(std::uint32_t connection_id) const {
    return static_cast<std::uint32_t>(flat_hash_mix(connection_id) >>
                                      shard_shift_) &
           (shard_count() - 1);
  }
  /// Routing/admission counters for one shard (packet-level fields 0).
  const Stats& shard_stats(std::uint32_t shard) const {
    return shards_[shard].stats;
  }
  std::size_t flows() const;
  std::size_t refused_size() const;  ///< remembered refusals, all shards
  /// Structural memory of the connection tables (flow + refused maps,
  /// LRU queues) — the bench's bytes-per-flow probe.
  std::size_t state_bytes() const;

 private:
  struct FlowEntry {
    ChunkTransportReceiver* rx{nullptr};
    SimTime last_activity{0};
    std::int32_t idle_node{PickQueue::kNil};
    bool leased{false};  ///< admitted against the shard's lease
  };
  struct RefusedEntry {
    SimTime expires{0};
    std::int32_t node{PickQueue::kNil};  ///< position in refused_fifo
  };
  struct Shard {
    FlatMap<std::uint32_t, FlowEntry> flows;
    FlatMap<std::uint32_t, RefusedEntry> refused;
    PickQueue idle_lru;      ///< front = least recently active
    PickQueue refused_fifo;  ///< front = oldest refusal (= earliest TTL)
    TimerWheel::TimerId idle_timer{0};
    TimerWheel::TimerId refused_timer{0};
    std::uint32_t lease_slots{0};   ///< admissions left in current lease
    std::uint64_t lease_bytes{0};   ///< reserve currently held via lease
    Stats stats;
    Counter* c_data_routed{nullptr};
    Counter* c_admitted{nullptr};
    Counter* c_refused{nullptr};
  };

  void handle_connection_open(const ChunkView& v);
  bool admit(Shard& sh, std::uint32_t connection_id);
  void note_refused(Shard& sh, std::uint32_t connection_id);
  void insert_flow(Shard& sh, std::uint32_t connection_id,
                   ChunkTransportReceiver* rx, bool leased);
  void remove_flow(Shard& sh, std::uint32_t connection_id, FlowEntry& f);
  void arm_idle_timer(Shard& sh);
  void fire_idle(Shard& sh);
  void arm_refused_timer(Shard& sh);
  void fire_refused(Shard& sh);
  std::uint32_t lease_id(const Shard& sh) const;
  SimTime now() const;
  void span(SpanEventKind kind, std::uint32_t connection_id,
            std::uint64_t aux = 0) const;

  Shard& shard_for(std::uint32_t connection_id) {
    return shards_[shard_of(connection_id)];
  }

  DemuxConfig cfg_;
  std::vector<Shard> shards_;
  /// mix(id) >> shift, masked to the shard count, picks the shard. Uses
  /// the TOP bits of the mix — the FlatMap bucket index uses the low
  /// bits, so shard choice and probe position stay uncorrelated. With
  /// one shard the mask is 0 (shift stays < 64: no UB).
  int shard_shift_{32};
  PacketSink* control_{nullptr};
  ObsContext* obs_{nullptr};
  Simulator* sim_{nullptr};
  DemuxAdmissionConfig admission_;
  /// Reused across packets (no per-packet allocation at steady state).
  std::vector<ChunkView> view_scratch_;
  /// Packet-level counters (a packet may span shards).
  std::uint64_t packets_{0};
  std::uint64_t malformed_{0};
  std::uint64_t control_chunks_routed_{0};
  mutable Stats agg_;  ///< stats() aggregation scratch
};

}  // namespace chunknet
