// Connection demultiplexing (paper Appendix A + [FELD 90]).
//
// "Packets are utilized more efficiently if multiple chunks can be
// carried in a packet… this idea can be extended to packets that carry
// chunks from multiple connections. Data, signaling information, and
// acknowledgments can be combined in any combination."
//
// The demultiplexer opens each packet envelope ONCE and routes every
// chunk to its connection's receiver by C.ID (and ACK/SIGNAL chunks to
// a control sink, enabling piggybacked acknowledgments without any
// piggybacking logic in the error-control protocol — the Appendix-A
// modularity point). Chunk TYPE-based routing to processing units is
// how the paper envisions distributed protocol processors.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/common/resource_governor.hpp"
#include "src/netsim/simulator.hpp"
#include "src/transport/receiver.hpp"
#include "src/transport/signalling.hpp"

namespace chunknet {

/// Admission control for new connections (docs/ROBUSTNESS.md,
/// "Overload control"): a ConnectionOpen for an unknown C.ID is
/// admitted only if the governor can reserve `reserve_bytes` of
/// headroom under its hard watermark; otherwise the demultiplexer
/// answers with an explicit ConnectionRefused signal instead of letting
/// the newcomer thrash established connections.
struct DemuxAdmissionConfig {
  ResourceGovernor* governor{nullptr};
  std::uint64_t reserve_bytes{32 * 1024};
  int priority{1};
  /// Creates and attaches the receiver for an admitted connection
  /// (ownership stays with the caller; return nullptr to refuse).
  std::function<ChunkTransportReceiver*(const ConnectionOpen&)>
      open_connection;
  /// Carries the refusal signal back toward the would-be sender.
  std::function<void(Chunk)> send_refusal;
};

class ChunkDemultiplexer final : public PacketSink {
 public:
  /// Routes data/ED chunks with the given C.ID to `receiver`.
  void attach(std::uint32_t connection_id, ChunkTransportReceiver& receiver) {
    receivers_[connection_id] = &receiver;
  }

  void detach(std::uint32_t connection_id) {
    receivers_.erase(connection_id);
  }

  /// Routes ACK and SIGNAL chunks (any connection) to `sink`; they are
  /// re-wrapped in a single-chunk packet since control consumers speak
  /// the PacketSink interface.
  void attach_control(PacketSink& sink) { control_ = &sink; }

  /// Enables signal-driven admission control (see DemuxAdmissionConfig).
  void configure_admission(DemuxAdmissionConfig admission) {
    admission_ = std::move(admission);
  }

  /// Observability (optional): connection-admission span events are
  /// recorded against `sim`'s clock. Read dynamically — admission is a
  /// cold path.
  void set_obs(ObsContext* obs, Simulator* sim) {
    obs_ = obs;
    sim_ = sim;
  }

  /// Programmatic admission (benches / topology builders): reserves
  /// governor headroom for `connection_id` without a ConnectionOpen
  /// signal. True when admitted (always, if no governor is configured).
  bool try_admit(std::uint32_t connection_id);

  void on_packet(SimPacket pkt) override;

  struct Stats {
    std::uint64_t packets{0};
    std::uint64_t malformed{0};
    std::uint64_t data_chunks_routed{0};
    std::uint64_t control_chunks_routed{0};
    std::uint64_t unknown_connection{0};
    std::uint64_t connections_admitted{0};
    std::uint64_t connections_refused{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  void handle_connection_open(const ChunkView& v);
  void span(SpanEventKind kind, std::uint32_t connection_id,
            std::uint64_t aux = 0) const;

  std::map<std::uint32_t, ChunkTransportReceiver*> receivers_;
  PacketSink* control_{nullptr};
  ObsContext* obs_{nullptr};
  Simulator* sim_{nullptr};
  DemuxAdmissionConfig admission_;
  /// Connections already refused: late data for them is dropped
  /// silently (counted under unknown_connection), not re-refused.
  std::map<std::uint32_t, bool> refused_;
  /// Reused across packets (no per-packet allocation at steady state).
  std::vector<ChunkView> view_scratch_;
  Stats stats_;
};

}  // namespace chunknet
