// The chunk transport receiver.
//
// Implements the receive side the paper argues for: every arriving
// packet is opened, and each chunk is processed *immediately* — placed
// into application memory by its C.SN, absorbed into the TPDU's WSC-2
// invariant, checked for SN consistency, and tracked by virtual
// reassembly — with no reordering or reassembly buffering in the data
// path. For comparison (§3.3's three options), the receiver can also
// run in reorder-first or reassemble-first mode; those modes buffer
// data and therefore touch bytes twice, which the receiver accounts as
// bus crossings (the RISC-workstation bottleneck of §1).
//
// TPDU acceptance needs all three Table-1 mechanisms to pass:
//   1. virtual reassembly completes exactly (no stop conflicts, no
//      data past the stop, no layout violations);
//   2. the incremental WSC-2 invariant equals the ED chunk's code;
//   3. (C.SN − T.SN) and (C.SN − X.SN) stayed constant.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/chunk/builder.hpp"
#include "src/chunk/compress.hpp"
#include "src/chunk/types.hpp"
#include "src/common/buffer_pool.hpp"
#include "src/common/flat_map.hpp"
#include "src/common/interval_set.hpp"
#include "src/common/pick_queue.hpp"
#include "src/common/resource_governor.hpp"
#include "src/common/timer_wheel.hpp"
#include "src/netsim/simulator.hpp"
#include "src/obs/obs.hpp"
#include "src/reassembly/virtual_reassembly.hpp"
#include "src/transport/invariant.hpp"

namespace chunknet {

enum class DeliveryMode : std::uint8_t {
  kImmediate,   ///< process-as-it-arrives (the paper's design point)
  kReorder,     ///< hold disordered data until in C.SN order
  kReassemble,  ///< hold each TPDU until physically complete
};

const char* to_string(DeliveryMode m);

/// Why a TPDU was accepted or rejected (Table 1's detection buckets).
enum class TpduVerdict : std::uint8_t {
  kAccepted,
  kCodeMismatch,        ///< "Error Detection Code"
  kConsistencyFailure,  ///< "Consistency Check"
  kReassemblyError,     ///< "Reassembly Error"
};

const char* to_string(TpduVerdict v);

struct TpduOutcome {
  std::uint32_t tpdu_id{0};
  TpduVerdict verdict{TpduVerdict::kAccepted};
  SimTime first_chunk_at{0};
  SimTime completed_at{0};
  std::uint64_t elements{0};
};

struct ReceiverConfig {
  std::uint32_t connection_id{1};
  std::uint16_t element_size{4};
  std::uint32_t first_conn_sn{0};
  std::size_t app_buffer_bytes{1 << 20};
  DeliveryMode mode{DeliveryMode::kImmediate};
  InvariantConfig invariant{};
  /// Called when a TPDU finishes verification.
  std::function<void(const TpduOutcome&)> on_tpdu;
  /// Called to send a control chunk (ACK/NAK) back to the sender;
  /// null = no feedback channel.
  std::function<void(Chunk)> send_control;
  /// Selective retransmission (extension; see signalling.hpp): when a
  /// TPDU is still incomplete this long after its first chunk, send a
  /// GapNak listing the exact missing runs from virtual reassembly.
  /// 0 disables (the sender's whole-TPDU timer is then the only
  /// recovery). Re-armed after each NAK, up to max_gap_naks times.
  SimTime gap_nak_delay{0};
  int max_gap_naks{6};
  /// When set, gap-NAK deadlines are armed on this shared timer wheel
  /// instead of as individual simulator events — at million-flow scale
  /// one pump event replaces one heap node per pending deadline. The
  /// wheel must outlive the receiver.
  SimTimerWheel* timers{nullptr};
  /// When set, packets in the compact Appendix-A syntax (magic 0xC5)
  /// are accepted under this (signalled) profile, alongside canonical
  /// ones — "chunk headers can have different formats in different
  /// parts of the network".
  std::optional<CompressionProfile> compression;
  /// Graceful-degradation cap on bytes held outside application memory
  /// (reorder queue / reassemble holds). 0 = unbounded. Under pressure
  /// the receiver EVICTS rather than grows: reorder mode force-places
  /// the queue out of order (data stays byte-exact, ordering guarantee
  /// degrades), reassemble mode aborts the oldest held TPDU (its
  /// retransmission starts clean). Immediate mode holds nothing and
  /// never evicts — the paper's point, stressed by bench E7/E11.
  std::size_t max_held_bytes{0};
  /// Cap on per-TPDU context entries (open + finished tombstones).
  /// 0 = unbounded. Eviction prefers finished tombstones, then
  /// incomplete TPDUs, and only then complete-but-undelivered ones
  /// (oldest first within a class); evicting an unfinished TPDU aborts
  /// it.
  std::size_t max_open_tpdus{0};
  /// Endpoint-wide overload control (docs/ROBUSTNESS.md, "Overload
  /// control"): held bytes are charged to this governor under
  /// `connection_id` (class kHeld), a chunk that would cross the hard
  /// watermark triggers shedding (self first, then governor-selected
  /// victims), and the receiver registers a shed hook so OTHER
  /// connections' pressure can reclaim this one's holdings. The
  /// governor must outlive the receiver.
  ResourceGovernor* governor{nullptr};
  /// Weight for the governor's priority-weighted shed policy
  /// (higher = more protected).
  int shed_priority{1};
  /// Credit-based flow control: advertise credit to the sender (via
  /// send_control) after every finished TPDU and re-ACK. The advertised
  /// window is `credit_window_bytes` capped by the governor's headroom
  /// share; slots halve while the governor is over its soft watermark.
  bool grant_credit{false};
  std::uint64_t credit_window_bytes{64 * 1024};
  std::uint16_t credit_tpdu_slots{4};
  /// Per-element delivery-latency samples are appended to
  /// stats().delivery_latency_ns when true. Benches that sweep very
  /// large flow counts turn this off: the histogram (obs) keeps
  /// recording, but per-element vectors would dominate memory.
  bool record_latency_samples{true};
  /// Observability (optional). Metric names are prefixed with
  /// "receiver.<mode>." so runs in different delivery modes stay
  /// distinguishable in one registry.
  ObsContext* obs{nullptr};
  std::uint16_t obs_site{0};
  /// When set, on_packet returns every packet's byte buffer to this
  /// pool once its chunks are processed, closing the recycle loop with
  /// a pool-acquiring driver (zero steady-state allocation; see
  /// docs/PERFORMANCE.md). The pool must outlive the receiver.
  PacketBufferPool* pool{nullptr};
};

class ChunkTransportReceiver final : public PacketSink {
 public:
  ChunkTransportReceiver(Simulator& sim, ReceiverConfig cfg);
  ~ChunkTransportReceiver() override;

  void on_packet(SimPacket pkt) override;

  /// Per-chunk entry point used by ChunkDemultiplexer (which has
  /// already opened the envelope): processes one chunk of THIS
  /// connection. `packet_created_at` is the carrying packet's creation
  /// time, for latency accounting; `packet_id` keys trace events to
  /// the carrying packet (0 = unknown).
  void on_chunk(Chunk c, SimTime packet_created_at,
                std::uint64_t packet_id = 0);

  /// Zero-copy per-chunk entry point: the view's payload aliases the
  /// caller's packet buffer, which must stay alive (and unmoved) for
  /// the duration of the call. Immediate mode places the payload
  /// straight from the view — one bus crossing, no intermediate Chunk;
  /// the holding modes materialize an owning copy (that copy IS the
  /// extra crossing the bus accounting charges them).
  void on_chunk_view(const ChunkView& v, SimTime packet_created_at,
                     std::uint64_t packet_id = 0);

  /// Application address space (spatially reassembled data).
  std::span<const std::uint8_t> app_data() const { return app_buffer_; }

  /// Elements of the connection stream delivered so far.
  std::uint64_t elements_delivered() const { return app_coverage_.covered(); }
  bool stream_complete(std::uint64_t total_elements) const {
    return app_coverage_.covers(0, total_elements);
  }

  struct Stats {
    std::uint64_t packets{0};
    std::uint64_t malformed_packets{0};
    std::uint64_t data_chunks{0};
    std::uint64_t ed_chunks{0};
    std::uint64_t foreign_chunks{0};     ///< wrong connection id
    std::uint64_t duplicate_chunks{0};
    std::uint64_t overlap_chunks{0};
    std::uint64_t framing_error_chunks{0};
    std::uint64_t tpdus_accepted{0};
    std::uint64_t tpdus_rejected{0};
    /// Positive ACKs re-sent for an already-finished TPDU whose ED
    /// chunk arrived again (the original ACK was lost in the network);
    /// without this the sender retransmits a delivered TPDU to death.
    std::uint64_t acks_resent{0};
    /// Chunk disposition (mutually exclusive, for conservation checks):
    /// every data chunk that passes framing/duplicate/overlap triage
    /// ends up placed, out-of-range, dropped unplaced, or still held.
    std::uint64_t chunks_placed{0};
    std::uint64_t bytes_placed{0};
    std::uint64_t oob_chunks{0};  ///< placement outside the app buffer
    /// Held/queued chunks dropped without ever being placed: a rejected
    /// TPDU's holds, reassemble-mode evictions, and aborts.
    std::uint64_t dropped_unplaced_chunks{0};
    std::uint64_t dropped_unplaced_bytes{0};
    /// Bytes moved across the memory bus in the data path. Immediate
    /// placement moves each byte once (interface → app memory); held
    /// bytes move twice (interface → hold buffer → app memory).
    std::uint64_t bus_bytes{0};
    std::uint64_t held_bytes_peak{0};
    std::uint64_t held_bytes_now{0};
    /// Graceful degradation (max_held_bytes / max_open_tpdus).
    std::uint64_t tpdus_evicted{0};
    std::uint64_t held_chunks_evicted{0};
    std::uint64_t held_bytes_evicted{0};
    /// Overload control: chunks whose TPDU was aborted because the
    /// governor's hard watermark left no room even after shedding, and
    /// credit grants advertised to the sender.
    std::uint64_t governor_refusals{0};
    std::uint64_t credit_grants_sent{0};
    /// Entries examined by eviction passes (holder eviction is queue-
    /// head pops, open-cap eviction walks the age order only until the
    /// first incomplete TPDU): the bounded-shed tests assert this stays
    /// O(evicted), never O(live table).
    std::uint64_t evict_scan_steps{0};
    /// Per-element delivery latency samples (ns), packet creation to
    /// placement in application memory.
    std::vector<double> delivery_latency_ns;
  };
  const Stats& stats() const { return stats_; }

  /// Drops state of TPDUs that can no longer complete (sender gave
  /// up). Used by long-running simulations to bound memory. Purges the
  /// TPDU's held chunks AND its reorder-queue entries; the dropped data
  /// is counted under dropped_unplaced_* so conservation still closes.
  void abort_tpdu(std::uint32_t tpdu_id);

  /// State-leak probes for post-quiescence checks (chaos oracles).
  std::size_t open_tpdus() const { return tpdus_.size(); }
  std::size_t unfinished_tpdus() const;
  std::vector<std::uint32_t> unfinished_tpdu_ids() const;
  std::size_t reorder_queue_chunks() const { return reorder_queue_.size(); }

  /// Structural bytes of the per-connection tables (TPDU contexts,
  /// reorder queue, eviction queues) — the footprint the flow-scale
  /// bench tracks per connection. Excludes the app buffer and the
  /// variable-size per-TPDU internals (held vectors, tracker runs).
  std::size_t state_bytes() const;

 private:
  struct HeldChunk {
    Chunk chunk;
    SimTime packet_created_at{0};
    std::uint64_t packet_id{0};
  };

  struct TpduState {
    TpduInvariant invariant;
    PduTracker tracker;
    SnConsistencyChecker consistency;
    std::optional<Wsc2Code> received_code;
    bool framing_error{false};
    bool layout_error{false};
    bool finished{false};
    SimTime first_chunk_at{0};
    std::uint64_t elements{0};
    int gap_naks_sent{0};
    bool nak_timer_armed{false};
    std::vector<HeldChunk> held;  ///< kReassemble mode only
    /// Intrusive handles into the eviction queues (PickQueue::kNil when
    /// not enqueued): creation-order node (active_ while unfinished,
    /// tombstones_ once accepted) and first-hold-order node (holders_,
    /// kReassemble mode while held is non-empty).
    std::int32_t order_node{PickQueue::kNil};
    std::int32_t holder_node{PickQueue::kNil};
  };

  void handle_data_chunk(const ChunkView& v, SimTime packet_created_at,
                         std::uint64_t packet_id);
  void handle_ed_chunk(const ChunkView& v);
  void arm_gap_nak_timer(std::uint32_t tpdu_id, TpduState& st);
  void fire_gap_nak(std::uint32_t tpdu_id);
  void place_chunk(const ChunkHeader& h,
                   std::span<const std::uint8_t> payload,
                   SimTime packet_created_at, bool was_held,
                   std::uint64_t packet_id);
  void release_in_order();
  void try_finish(std::uint32_t tpdu_id, TpduState& st);
  /// max_held_bytes pressure, reorder mode: force-places the whole
  /// queue out of order and advances next_release_off_ past it.
  void flush_reorder_queue();
  /// max_held_bytes pressure, reassemble mode: aborts the unfinished
  /// TPDU with the oldest first chunk that holds bytes. Returns its id,
  /// or nullopt when nothing is holding.
  std::optional<std::uint32_t> evict_oldest_holder();
  /// max_open_tpdus pressure: drops one context entry (finished
  /// tombstones first, oldest first; else the oldest unfinished TPDU).
  void evict_for_open_cap();
  /// Unlinks the TPDU's eviction-queue nodes and erases its table
  /// entry. Any TpduState pointers are invalid afterwards.
  void erase_tpdu_entry(std::uint32_t tpdu_id, TpduState& st);
  /// Drops stale (already-erased) offsets from the top of the reorder
  /// min-heap so front() is the smallest live queued offset.
  void prune_reorder_heap();
  void hold_bytes(std::uint64_t n);
  void unhold_bytes(std::uint64_t n);
  /// Governor shed hook: frees one round of holdings (reorder: flush
  /// the queue; reassemble: evict the oldest holder) and returns the
  /// bytes released.
  std::uint64_t shed_held();
  /// Aborts THIS TPDU under hard-watermark pressure (its holds and the
  /// incoming chunk are dropped; retransmission starts clean).
  void abort_for_governor(std::uint32_t tpdu_id, std::size_t incoming_bytes);
  /// Advertises a CreditGrant reflecting current governor headroom.
  void maybe_send_grant();
  /// Counts a triaged-accepted chunk discarded without ever being
  /// placed (rejection, eviction, abort, supersession); releases its
  /// hold accounting when it was held.
  void drop_unplaced(std::size_t payload_bytes, bool was_held);
  void trace_chunk(TraceEventKind kind, const ChunkHeader& h,
                   std::uint64_t packet_id, std::uint64_t aux = 0) const;
  void trace_packet(TraceEventKind kind, std::uint64_t packet_id) const;
  void span(SpanEventKind kind, std::uint32_t tpdu_id,
            std::uint64_t aux = 0) const;

  struct ObsHandles {
    Counter* packets{nullptr};
    Counter* malformed_packets{nullptr};
    Counter* data_chunks{nullptr};
    Counter* ed_chunks{nullptr};
    Counter* foreign_chunks{nullptr};
    Counter* duplicate_chunks{nullptr};
    Counter* overlap_chunks{nullptr};
    Counter* framing_error_chunks{nullptr};
    Counter* tpdus_accepted{nullptr};
    Counter* tpdus_rejected{nullptr};
    Counter* acks_resent{nullptr};
    Counter* chunks_placed{nullptr};
    Counter* oob_chunks{nullptr};
    Counter* dropped_unplaced_chunks{nullptr};
    Counter* dropped_unplaced_bytes{nullptr};
    Counter* bus_bytes{nullptr};
    Counter* bytes_placed{nullptr};
    Counter* tpdus_evicted{nullptr};
    Counter* held_chunks_evicted{nullptr};
    Counter* held_bytes_evicted{nullptr};
    Gauge* held_bytes{nullptr};
    Gauge* held_bytes_peak{nullptr};
    Histogram* delivery_latency{nullptr};
    Counter* governor_refusals{nullptr};
    Counter* grants_sent{nullptr};
  };

  Simulator& sim_;
  ReceiverConfig cfg_;
  ObsHandles m_;
  SpanRecorder* spans_{nullptr};  ///< resolved once; hot path
  /// Reused across packets by on_packet so steady-state receive does
  /// no per-packet allocation (capacity sticks at the high-water mark).
  std::vector<ChunkView> view_scratch_;
  std::vector<std::uint8_t> app_buffer_;
  IntervalSet app_coverage_;  ///< element-granular, relative to first_conn_sn
  FlatMap<std::uint32_t, TpduState> tpdus_;
  /// Eviction bookkeeping over tpdus_, all O(1) per update: unfinished
  /// TPDUs in creation order (== first-chunk order; sim time is
  /// monotonic), accepted tombstones in finish order, and reassemble-
  /// mode holders in first-hold order. Eviction pops queue heads
  /// instead of scanning the table, so shedding a few entries from a
  /// 100k-flow table is O(evicted), not O(live).
  PickQueue active_;
  PickQueue tombstones_;
  PickQueue holders_;
  /// kReorder mode: chunks waiting for their turn, keyed by the
  /// chunk's stream offset — the wrapping 32-bit distance from
  /// first_conn_sn, widened to 64 bits. Ordering in offset space stays
  /// correct when C.SN wraps past 2^32 mid-connection; ordering in raw
  /// C.SN space does not. The flat map is unordered, so release order
  /// comes from a lazy-deletion min-heap of offsets: entries erased
  /// behind the heap's back (aborts) are skipped when they surface.
  FlatMap<std::uint64_t, HeldChunk> reorder_queue_;
  std::vector<std::uint64_t> reorder_heap_;
  std::uint64_t next_release_off_{0};
  /// Stream offset of a data chunk: wrapping distance from the
  /// connection's first C.SN.
  std::uint64_t stream_offset(std::uint32_t conn_sn) const {
    return static_cast<std::uint32_t>(conn_sn - cfg_.first_conn_sn);
  }
  Stats stats_;
  /// Flow control: cumulative finished-TPDU payload bytes (the base of
  /// every advertised credit limit) and the grant ordering sequence.
  std::uint64_t credited_bytes_{0};
  std::uint32_t grant_seq_{0};
};

}  // namespace chunknet
