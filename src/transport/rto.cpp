#include "src/transport/rto.hpp"

#include <algorithm>
#include <cmath>

namespace chunknet {

RtoEstimator::RtoEstimator(RtoConfig cfg, SimTime initial_rto)
    : cfg_(cfg),
      base_rto_(std::clamp(initial_rto, cfg.min_rto, cfg.max_rto)) {}

void RtoEstimator::on_sample(SimTime rtt, bool retransmitted) {
  if (retransmitted) {
    ++stats_.samples_discarded;
    return;
  }
  ++stats_.samples_taken;
  const double r = static_cast<double>(rtt);
  if (!have_srtt_) {
    srtt_ = r;
    rttvar_ = r / 2.0;
    have_srtt_ = true;
  } else {
    rttvar_ = (1.0 - cfg_.beta) * rttvar_ + cfg_.beta * std::abs(srtt_ - r);
    srtt_ = (1.0 - cfg_.alpha) * srtt_ + cfg_.alpha * r;
  }
  const double rto = srtt_ + cfg_.k * rttvar_;
  base_rto_ = std::clamp(static_cast<SimTime>(rto), cfg_.min_rto, cfg_.max_rto);
  backoff_shift_ = 0;  // fresh evidence the path is alive at this RTT
}

void RtoEstimator::on_timeout() {
  if ((base_rto_ << backoff_shift_) < cfg_.max_rto) ++backoff_shift_;
  ++stats_.backoffs;
}

SimTime RtoEstimator::rto() const {
  // Shift with overflow care: SimTime is ns in a uint64, and the shift
  // is bounded by the max_rto cap check in on_timeout anyway.
  const SimTime backed = base_rto_ << backoff_shift_;
  return std::clamp(backed, cfg_.min_rto, cfg_.max_rto);
}

}  // namespace chunknet
