// Adaptive retransmission timeout (Jacobson/Karn).
//
// Every transport in this repo retransmits on a timer, and until now
// that timer was a fixed constant — tuned for one topology, hopeless on
// any other (too short → spurious retransmits that the receiver's
// duplicate rejection must absorb; too long → goodput collapses under
// loss). This estimator implements the classic adaptive algorithm:
//
//   - RTT samples are taken from ACKs: sample = now − last_sent.
//   - Karn's rule: retransmitted PDUs reuse their ORIGINAL identifiers
//     (§3.3 of the paper), so an ACK for a retransmitted PDU is
//     ambiguous — the sample is discarded.
//   - Jacobson smoothing: SRTT ← (1−α)·SRTT + α·R,
//     RTTVAR ← (1−β)·RTTVAR + β·|SRTT − R|, RTO = SRTT + k·RTTVAR,
//     with α=1/8, β=1/4, k=4 (first sample: SRTT=R, RTTVAR=R/2).
//   - Exponential backoff on timeout, capped at max_rto; a valid
//     (non-Karn-discarded) sample resets the backoff.
//
// The estimator is deliberately transport-agnostic: the chunk sender
// and all three baseline senders embed one.
#pragma once

#include <cstdint>

#include "src/netsim/simulator.hpp"

namespace chunknet {

struct RtoConfig {
  /// Off by default so existing fixed-timeout experiments reproduce
  /// bit-for-bit; senders consult rto() only when this is set.
  bool adaptive{false};
  SimTime min_rto{1 * kMillisecond};
  SimTime max_rto{4 * kSecond};  ///< also the backoff cap
  double alpha{0.125};
  double beta{0.25};
  double k{4.0};
};

class RtoEstimator {
 public:
  /// `initial_rto` is used until the first RTT sample arrives (senders
  /// pass their configured `retransmit_timeout`).
  RtoEstimator(RtoConfig cfg, SimTime initial_rto);

  /// Feeds one ACK-derived RTT sample. `retransmitted` must be true if
  /// the acked PDU was ever resent (Karn's rule discards the sample —
  /// the ACK cannot be matched to a transmission). A kept sample also
  /// resets exponential backoff.
  void on_sample(SimTime rtt, bool retransmitted);

  /// A retransmission timer fired: double the backoff (capped).
  void on_timeout();

  /// The timeout to arm now (smoothed estimate × backoff, clamped).
  SimTime rto() const;

  bool has_estimate() const { return have_srtt_; }
  SimTime srtt() const { return static_cast<SimTime>(srtt_); }
  SimTime rttvar() const { return static_cast<SimTime>(rttvar_); }

  struct Stats {
    std::uint64_t samples_taken{0};
    std::uint64_t samples_discarded{0};  ///< Karn's rule
    std::uint64_t backoffs{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  RtoConfig cfg_;
  SimTime base_rto_;      ///< current estimate before backoff
  std::uint32_t backoff_shift_{0};
  bool have_srtt_{false};
  double srtt_{0};
  double rttvar_{0};
  Stats stats_;
};

}  // namespace chunknet
