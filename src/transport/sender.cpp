#include "src/transport/sender.hpp"

#include <algorithm>
#include <optional>

#include "src/chunk/codec.hpp"
#include "src/chunk/fragment.hpp"
#include "src/transport/signalling.hpp"

namespace chunknet {

ChunkTransportSender::ChunkTransportSender(Simulator& sim, SenderConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rto_(cfg_.rto, cfg_.retransmit_timeout) {
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    MetricsRegistry& reg = *cfg_.obs->metrics;
    m_.tpdus_sent = &reg.counter("sender.tpdus_sent");
    m_.tpdus_acked = &reg.counter("sender.tpdus_acked");
    m_.retransmissions = &reg.counter("sender.retransmissions");
    m_.naks = &reg.counter("sender.naks");
    m_.gave_up = &reg.counter("sender.gave_up");
    m_.packets_sent = &reg.counter("sender.packets_sent");
    m_.bytes_sent = &reg.counter("sender.bytes_sent");
    m_.gap_naks_honoured = &reg.counter("sender.gap_naks_honoured");
    m_.retx_payload_bytes = &reg.counter("sender.retx_payload_bytes");
    m_.rto_samples = &reg.counter("sender.rto_samples");
    m_.rto_discarded = &reg.counter("sender.rto_discarded");
    m_.rto_backoffs = &reg.counter("sender.rto_backoffs");
  }
}

void ChunkTransportSender::trace_chunk(TraceEventKind kind, const Chunk& c,
                                       std::uint64_t aux) const {
  if (cfg_.obs == nullptr || cfg_.obs->tracer == nullptr) return;
  TraceEvent e;
  e.t = sim_.now();
  e.kind = kind;
  e.site = cfg_.obs_site;
  e.tpdu_id = c.h.tpdu.id;
  e.conn_sn = c.h.conn.sn;
  e.len = c.h.len;
  e.aux = aux;
  cfg_.obs->tracer->record(e);
}

void ChunkTransportSender::send_stream(std::span<const std::uint8_t> stream) {
  started_ = true;
  auto chunks = frame_stream(stream, cfg_.framer);
  auto tpdus = group_by_tpdu(std::move(chunks));

  for (auto& tpdu_chunks : tpdus) {
    if (tpdu_chunks.empty()) continue;
    const std::uint32_t tpdu_id = tpdu_chunks.front().h.tpdu.id;
    const std::uint32_t conn_sn = tpdu_chunks.front().h.conn.sn;

    // Transmitter-side invariant: absorb the pristine chunks once.
    TpduInvariant inv(cfg_.invariant);
    bool ok = true;
    for (const Chunk& c : tpdu_chunks) ok = inv.absorb(c) && ok;
    if (!ok) continue;  // stream too large for the invariant layout

    tpdu_chunks.push_back(make_ed_chunk(cfg_.framer.connection_id, tpdu_id,
                                        conn_sn, inv.value()));
    for (const Chunk& c : tpdu_chunks) {
      trace_chunk(TraceEventKind::kChunkBuilt, c);
    }

    PendingTpdu pending;
    pending.chunks = std::move(tpdu_chunks);
    auto [it, inserted] = outstanding_.emplace(tpdu_id, std::move(pending));
    ++stats_.tpdus_sent;
    obs_add(m_.tpdus_sent);
    transmit_tpdu(tpdu_id, it->second);
  }
}

void ChunkTransportSender::transmit_tpdu(std::uint32_t tpdu_id,
                                         PendingTpdu& p) {
  ++p.attempts;
  p.last_sent = sim_.now();
  if (p.attempts > 1) {
    p.retransmitted = true;
    for (const Chunk& c : p.chunks) {
      if (c.h.type == ChunkType::kData) {
        stats_.retx_payload_bytes += c.payload.size();
        obs_add(m_.retx_payload_bytes, c.payload.size());
      }
    }
  }
  send_chunks(p.chunks);  // copies: the originals stay for retransmission
  arm_timer(tpdu_id);
}

void ChunkTransportSender::arm_timer(std::uint32_t tpdu_id) {
  const SimTime armed_at = sim_.now();
  const SimTime timeout =
      cfg_.rto.adaptive ? rto_.rto() : cfg_.retransmit_timeout;
  sim_.schedule_in(timeout, [this, tpdu_id, armed_at] {
    auto it = outstanding_.find(tpdu_id);
    if (it == outstanding_.end()) return;          // acked meanwhile
    if (it->second.last_sent > armed_at) return;   // newer timer pending
    if (it->second.attempts > cfg_.max_retransmits) {
      ++stats_.gave_up;
      obs_add(m_.gave_up);
      gave_up_ids_.push_back(tpdu_id);
      outstanding_.erase(it);
      return;
    }
    rto_.on_timeout();
    ++stats_.rto_backoffs;
    obs_add(m_.rto_backoffs);
    ++stats_.retransmissions;
    obs_add(m_.retransmissions);
    transmit_tpdu(tpdu_id, it->second);
  });
}

namespace {

/// Cuts the piece of `c` covering elements [lo, hi) in T.SN space, or
/// nullopt if they don't intersect. Appendix-C splits keep every header
/// field (SNs, ST bits) exact, so the receiver accepts the piece as if
/// it had been fragmented in the network.
std::optional<Chunk> slice_chunk(const Chunk& c, std::uint64_t lo,
                                 std::uint64_t hi) {
  const std::uint64_t s = c.h.tpdu.sn;
  const std::uint64_t e = s + c.h.len;
  const std::uint64_t a = std::max(lo, s);
  const std::uint64_t b = std::min(hi, e);
  if (a >= b) return std::nullopt;
  Chunk piece = c;
  if (a > s) {
    piece = split_chunk(piece, static_cast<std::uint16_t>(a - s)).second;
  }
  if (b < e) {
    piece = split_chunk(piece, static_cast<std::uint16_t>(b - a)).first;
  }
  return piece;
}

}  // namespace

void ChunkTransportSender::send_chunks(std::vector<Chunk> chunks) {
  PacketizerOptions opts;
  opts.mtu = cfg_.mtu;
  opts.policy = cfg_.pack_policy;
  PacketizeResult packed = packetize(std::move(chunks), opts);
  for (auto& pkt : packed.packets) {
    if (cfg_.compress_wire) {
      // Re-encode the packet in the compact negotiated syntax; the
      // compressed form is never larger, and unrepresentable chunks
      // fall back to the canonical envelope (both parse at the peer).
      const ParsedPacket parsed = decode_packet(pkt);
      auto compact = compress_packet(parsed.chunks, *cfg_.compress_wire,
                                     cfg_.mtu);
      if (!compact.empty()) pkt = std::move(compact);
    }
    stats_.bytes_sent += pkt.size();
    ++stats_.packets_sent;
    obs_add(m_.packets_sent);
    obs_add(m_.bytes_sent, pkt.size());
    if (cfg_.obs != nullptr && cfg_.obs->tracer != nullptr) {
      TraceEvent e;
      e.t = sim_.now();
      e.kind = TraceEventKind::kPacketized;
      e.site = cfg_.obs_site;
      e.aux = pkt.size();
      cfg_.obs->tracer->record(e);
    }
    if (cfg_.send_packet) cfg_.send_packet(std::move(pkt));
  }
}

void ChunkTransportSender::handle_gap_nak(const Chunk& signal) {
  const auto nak = parse_gap_nak(signal);
  if (!nak) return;
  const auto it = outstanding_.find(nak->tpdu_id);
  if (it == outstanding_.end()) return;  // already acked or abandoned
  ++stats_.gap_naks_honoured;
  obs_add(m_.gap_naks_honoured);

  std::vector<Chunk> resend;
  for (const Chunk& c : it->second.chunks) {
    if (c.h.type == ChunkType::kErrorDetection) {
      if (nak->need_ed_chunk) resend.push_back(c);
      continue;
    }
    if (c.h.type != ChunkType::kData) continue;
    bool taken = false;
    for (const GapRange& g : nak->gaps) {
      if (auto piece = slice_chunk(c, g.first_sn,
                                   static_cast<std::uint64_t>(g.first_sn) +
                                       g.length)) {
        stats_.selective_retx_elements += piece->h.len;
        stats_.retx_payload_bytes += piece->payload.size();
        obs_add(m_.retx_payload_bytes, piece->payload.size());
        trace_chunk(TraceEventKind::kChunkBuilt, *piece, 1);
        resend.push_back(std::move(*piece));
        taken = true;
      }
    }
    if (!taken && nak->need_tail) {
      if (auto piece = slice_chunk(c, nak->tail_from, ~std::uint64_t{0})) {
        stats_.selective_retx_elements += piece->h.len;
        stats_.retx_payload_bytes += piece->payload.size();
        obs_add(m_.retx_payload_bytes, piece->payload.size());
        trace_chunk(TraceEventKind::kChunkBuilt, *piece, 1);
        resend.push_back(std::move(*piece));
      }
    }
  }
  if (resend.empty()) return;
  it->second.last_sent = sim_.now();  // quiet the whole-TPDU backstop
  it->second.retransmitted = true;    // Karn: later ACK is ambiguous
  send_chunks(std::move(resend));
  arm_timer(nak->tpdu_id);
}

void ChunkTransportSender::on_packet(SimPacket pkt) {
  ParsedPacket parsed = decode_packet(pkt.bytes);
  if (!parsed.ok) return;
  for (const Chunk& c : parsed.chunks) {
    if (c.h.type == ChunkType::kSignal && cfg_.selective_retransmit) {
      handle_gap_nak(c);
      continue;
    }
    if (c.h.type != ChunkType::kAck) continue;
    const AckInfo ack = parse_ack_chunk(c);
    auto it = outstanding_.find(ack.tpdu_id);
    if (it == outstanding_.end()) continue;
    if (ack.positive) {
      rto_.on_sample(sim_.now() - it->second.last_sent,
                     it->second.retransmitted);
      // Karn's rule: an ACK for a retransmitted TPDU is ambiguous, so
      // the estimator discarded that sample.
      if (it->second.retransmitted) {
        ++stats_.rto_discarded;
        obs_add(m_.rto_discarded);
      } else {
        ++stats_.rto_samples;
        obs_add(m_.rto_samples);
      }
      ++stats_.tpdus_acked;
      obs_add(m_.tpdus_acked);
      outstanding_.erase(it);
    } else {
      // NAK: retransmit immediately with the same identifiers.
      ++stats_.naks;
      obs_add(m_.naks);
      if (it->second.attempts > cfg_.max_retransmits) {
        ++stats_.gave_up;
        obs_add(m_.gave_up);
        gave_up_ids_.push_back(ack.tpdu_id);
        outstanding_.erase(it);
        continue;
      }
      ++stats_.retransmissions;
      obs_add(m_.retransmissions);
      transmit_tpdu(ack.tpdu_id, it->second);
    }
  }
}

}  // namespace chunknet
