#include "src/transport/sender.hpp"

#include <algorithm>
#include <optional>

#include "src/chunk/codec.hpp"
#include "src/chunk/fragment.hpp"
#include "src/transport/signalling.hpp"

namespace chunknet {

ChunkTransportSender::ChunkTransportSender(Simulator& sim, SenderConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rto_(cfg_.rto, cfg_.retransmit_timeout) {
  if (cfg_.obs != nullptr) spans_ = cfg_.obs->spans;
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    MetricsRegistry& reg = *cfg_.obs->metrics;
    m_.tpdus_sent = &reg.counter("sender.tpdus_sent");
    m_.tpdus_acked = &reg.counter("sender.tpdus_acked");
    m_.retransmissions = &reg.counter("sender.retransmissions");
    m_.naks = &reg.counter("sender.naks");
    m_.gave_up = &reg.counter("sender.gave_up");
    m_.packets_sent = &reg.counter("sender.packets_sent");
    m_.bytes_sent = &reg.counter("sender.bytes_sent");
    m_.gap_naks_honoured = &reg.counter("sender.gap_naks_honoured");
    m_.retx_payload_bytes = &reg.counter("sender.retx_payload_bytes");
    m_.tx_bytes_copied = &reg.counter("sender.tx_bytes_copied");
    m_.tx_gather_bytes = &reg.counter("sender.tx_gather_bytes");
    m_.rto_samples = &reg.counter("sender.rto_samples");
    m_.rto_discarded = &reg.counter("sender.rto_discarded");
    m_.rto_backoffs = &reg.counter("sender.rto_backoffs");
    if (cfg_.flow.enabled) {
      m_.credit_grants = &reg.counter("flow.credit_grants");
      m_.flow_blocked = &reg.counter("flow.blocked");
      m_.zero_credit_probes = &reg.counter("flow.zero_credit_probes");
      m_.flow_backoffs = &reg.counter("flow.backoffs");
      m_.credit_window = &reg.gauge("flow.credit_window_bytes");
      m_.inflight_tpdus = &reg.gauge("flow.inflight_tpdus");
    }
  }
  if (cfg_.flow.enabled) {
    credit_limit_ = cfg_.flow.initial_credit_bytes;
    slots_ = std::max<std::uint16_t>(cfg_.flow.initial_tpdu_slots, 1);
    publish_flow_gauges();
  }
}

void ChunkTransportSender::publish_flow_gauges() {
  obs_set(m_.credit_window,
          static_cast<std::int64_t>(
              credit_limit_ > credit_consumed_ ? credit_limit_ - credit_consumed_
                                               : 0));
  obs_set(m_.inflight_tpdus, static_cast<std::int64_t>(inflight_));
}

void ChunkTransportSender::trace_chunk(TraceEventKind kind,
                                       const ChunkHeader& h,
                                       std::uint64_t aux) const {
  if (cfg_.obs == nullptr || cfg_.obs->tracer == nullptr) return;
  TraceEvent e;
  e.t = sim_.now();
  e.kind = kind;
  e.site = cfg_.obs_site;
  e.tpdu_id = h.tpdu.id;
  e.conn_sn = h.conn.sn;
  e.len = h.len;
  e.aux = aux;
  cfg_.obs->tracer->record(e);
}

void ChunkTransportSender::span(SpanEventKind kind, std::uint32_t tpdu_id,
                                std::uint64_t aux) const {
  if (spans_ == nullptr) return;
  SpanEvent e;
  e.t = sim_.now();
  e.kind = kind;
  e.connection_id = cfg_.framer.connection_id;
  e.tpdu_id = tpdu_id;
  e.aux = aux;
  spans_->record(e);
}

void ChunkTransportSender::send_stream(std::span<const std::uint8_t> stream) {
  started_ = true;
  auto chunks = frame_stream(stream, cfg_.framer);
  auto tpdus = group_by_tpdu(std::move(chunks));

  for (auto& tpdu_chunks : tpdus) {
    if (tpdu_chunks.empty()) continue;
    const std::uint32_t tpdu_id = tpdu_chunks.front().h.tpdu.id;
    const std::uint32_t conn_sn = tpdu_chunks.front().h.conn.sn;

    // Transmitter-side invariant: absorb the pristine chunks once.
    TpduInvariant inv(cfg_.invariant);
    bool ok = true;
    for (const Chunk& c : tpdu_chunks) ok = inv.absorb(c) && ok;
    if (!ok) continue;  // stream too large for the invariant layout

    tpdu_chunks.push_back(make_ed_chunk(cfg_.framer.connection_id, tpdu_id,
                                        conn_sn, inv.value()));
    for (const Chunk& c : tpdu_chunks) {
      trace_chunk(TraceEventKind::kChunkBuilt, c.h);
    }

    PendingTpdu pending;
    for (const Chunk& c : tpdu_chunks) {
      if (c.h.type == ChunkType::kData) pending.payload_bytes += c.payload.size();
    }
    pending.chunks = std::move(tpdu_chunks);
    auto [it, inserted] = outstanding_.emplace(tpdu_id, std::move(pending));
    ++stats_.tpdus_sent;
    obs_add(m_.tpdus_sent);
    span(SpanEventKind::kTpduFramed, tpdu_id, it->second.payload_bytes);
    if (cfg_.flow.enabled) {
      send_queue_.push_back(tpdu_id);
    } else {
      it->second.admitted = true;
      transmit_tpdu(tpdu_id, it->second);
    }
  }
  if (cfg_.flow.enabled) pump_queue();
}

void ChunkTransportSender::admit_tpdu(std::uint32_t tpdu_id, PendingTpdu& p) {
  p.admitted = true;
  credit_consumed_ += p.payload_bytes;
  ++inflight_;
  ++admit_epoch_;
  span(SpanEventKind::kTpduAdmitted, tpdu_id, p.payload_bytes);
  transmit_tpdu(tpdu_id, p);
}

void ChunkTransportSender::pump_queue() {
  while (!send_queue_.empty()) {
    auto it = outstanding_.find(send_queue_.front());
    if (it == outstanding_.end()) {  // retired before admission (shouldn't
      send_queue_.pop_front();       // happen, but never wedge on it)
      continue;
    }
    if (inflight_ >= slots_ ||
        credit_consumed_ + it->second.payload_bytes > credit_limit_) {
      break;
    }
    send_queue_.pop_front();
    admit_tpdu(it->first, it->second);
  }
  const bool now_blocked = !send_queue_.empty();
  if (now_blocked && !blocked_) {
    ++stats_.flow_blocked;
    obs_add(m_.flow_blocked);
  }
  blocked_ = now_blocked;
  if (now_blocked) arm_probe();
  publish_flow_gauges();
}

void ChunkTransportSender::schedule_after(SimTime delay,
                                          std::function<void()> cb) {
  if (cfg_.timers != nullptr) {
    cfg_.timers->arm_in(delay, std::move(cb));
  } else {
    sim_.schedule_in(delay, std::move(cb));
  }
}

void ChunkTransportSender::arm_probe() {
  if (probe_armed_) return;
  probe_armed_ = true;
  const std::uint64_t epoch = admit_epoch_;
  schedule_after(cfg_.flow.probe_timeout, [this, epoch] {
    probe_armed_ = false;
    if (send_queue_.empty()) return;
    if (admit_epoch_ != epoch) {
      // Progress happened since arming; still blocked, so keep watch.
      arm_probe();
      return;
    }
    // Genuinely stalled: every grant since the last one we applied was
    // lost, or the receiver went quiet. Decay the slot estimate
    // (conservative restart) and force ONE TPDU through as a probe —
    // its ACK or the grant it provokes re-opens the window.
    slots_ = std::max<std::uint16_t>(slots_ / 2, 1);
    ++stats_.zero_credit_probes;
    obs_add(m_.zero_credit_probes);
    auto it = outstanding_.find(send_queue_.front());
    send_queue_.pop_front();
    if (it != outstanding_.end()) admit_tpdu(it->first, it->second);
    if (!send_queue_.empty()) arm_probe();
    publish_flow_gauges();
  });
}

void ChunkTransportSender::on_tpdu_retired(const PendingTpdu& p) {
  if (!cfg_.flow.enabled || !p.admitted) return;
  if (inflight_ > 0) --inflight_;
}

void ChunkTransportSender::handle_credit_grant(const Chunk& signal) {
  const auto grant = parse_credit_grant(signal);
  if (!grant || grant->connection_id != cfg_.framer.connection_id) return;
  // Wrap-safe ordering: apply only grants newer than the last applied.
  if (any_grant_ &&
      static_cast<std::int32_t>(grant->grant_seq - grant_seq_seen_) <= 0) {
    return;
  }
  any_grant_ = true;
  grant_seq_seen_ = grant->grant_seq;
  ++stats_.credit_grants;
  obs_add(m_.credit_grants);
  span(SpanEventKind::kCreditGrant, 0, grant->credit_limit_bytes);

  const std::uint64_t old_window =
      credit_limit_ > credit_consumed_ ? credit_limit_ - credit_consumed_ : 0;
  const std::uint64_t new_window = grant->credit_limit_bytes > credit_consumed_
                                       ? grant->credit_limit_bytes - credit_consumed_
                                       : 0;
  const std::uint16_t offered_slots =
      std::max<std::uint16_t>(grant->tpdu_slots, 1);
  if (new_window < old_window || offered_slots < slots_) {
    // The receiver is under pressure: back off multiplicatively rather
    // than sliding gently to the offered window.
    slots_ = std::max<std::uint16_t>(std::min(offered_slots,
                                              static_cast<std::uint16_t>(
                                                  slots_ / 2)),
                                     1);
    ++stats_.flow_backoffs;
    obs_add(m_.flow_backoffs);
  } else {
    slots_ = offered_slots;
  }
  credit_limit_ = grant->credit_limit_bytes;
  pump_queue();
}

void ChunkTransportSender::transmit_tpdu(std::uint32_t tpdu_id,
                                         PendingTpdu& p) {
  ++p.attempts;
  p.last_sent = sim_.now();
  if (p.attempts > 1) {
    p.retransmitted = true;
    for (const Chunk& c : p.chunks) {
      if (c.h.type == ChunkType::kData) {
        stats_.retx_payload_bytes += c.payload.size();
        obs_add(m_.retx_payload_bytes, c.payload.size());
      }
    }
  }
  if (use_gather()) {
    // Zero-copy: packets borrow the pending chunks' payload bytes, so
    // a retransmission re-references the same bytes it sent last time.
    std::vector<ChunkView> views;
    views.reserve(p.chunks.size());
    for (const Chunk& c : p.chunks) views.push_back(as_view(c));
    send_chunk_views(views);
  } else {
    send_chunks(p.chunks);  // copies: the originals stay for retransmission
  }
  arm_timer(tpdu_id);
}

std::size_t ChunkTransportSender::abandon_outstanding() {
  std::size_t n = 0;
  while (!outstanding_.empty()) {
    auto it = outstanding_.begin();
    ++stats_.gave_up;
    obs_add(m_.gave_up);
    span(SpanEventKind::kTpduGaveUp, it->first);
    gave_up_ids_.push_back(it->first);
    on_tpdu_retired(it->second);
    outstanding_.erase(it);
    ++n;
  }
  // Flow-queued ids point into outstanding_, so the loop above already
  // abandoned them; just clear the queue so no timer re-admits a ghost.
  send_queue_.clear();
  if (cfg_.flow.enabled) publish_flow_gauges();
  return n;
}

void ChunkTransportSender::arm_timer(std::uint32_t tpdu_id) {
  const SimTime armed_at = sim_.now();
  const SimTime timeout =
      cfg_.rto.adaptive ? rto_.rto() : cfg_.retransmit_timeout;
  schedule_after(timeout, [this, tpdu_id, armed_at] {
    auto it = outstanding_.find(tpdu_id);
    if (it == outstanding_.end()) return;          // acked meanwhile
    if (it->second.last_sent > armed_at) return;   // newer timer pending
    if (it->second.attempts > cfg_.max_retransmits) {
      ++stats_.gave_up;
      obs_add(m_.gave_up);
      span(SpanEventKind::kTpduGaveUp, tpdu_id);
      gave_up_ids_.push_back(tpdu_id);
      on_tpdu_retired(it->second);
      outstanding_.erase(it);
      if (cfg_.flow.enabled) pump_queue();
      return;
    }
    rto_.on_timeout();
    ++stats_.rto_backoffs;
    obs_add(m_.rto_backoffs);
    ++stats_.retransmissions;
    obs_add(m_.retransmissions);
    transmit_tpdu(tpdu_id, it->second);
  });
}

namespace {

/// Cuts the piece of `v` covering elements [lo, hi) in T.SN space, or
/// nullopt if they don't intersect. Appendix-C splits keep every header
/// field (SNs, ST bits) exact, so the receiver accepts the piece as if
/// it had been fragmented in the network. Views make the cut pure
/// header math — the payload halves are subspans of the original.
std::optional<ChunkView> slice_view(const ChunkView& v, std::uint64_t lo,
                                    std::uint64_t hi) {
  const std::uint64_t s = v.h.tpdu.sn;
  const std::uint64_t e = s + v.h.len;
  const std::uint64_t a = std::max(lo, s);
  const std::uint64_t b = std::min(hi, e);
  if (a >= b) return std::nullopt;
  ChunkView piece = v;
  if (a > s) {
    piece = split_view(piece, static_cast<std::uint16_t>(a - s)).second;
  }
  if (b < e) {
    piece = split_view(piece, static_cast<std::uint16_t>(b - a)).first;
  }
  return piece;
}

}  // namespace

void ChunkTransportSender::send_chunk_views(std::span<const ChunkView> views) {
  PacketizerOptions opts;
  opts.mtu = cfg_.mtu;
  opts.policy = cfg_.pack_policy;
  GatherResult packed = gather_packetize(views, opts);
  for (const GatherPacket& gp : packed.packets) {
    stats_.bytes_sent += gp.wire_size;
    ++stats_.packets_sent;
    stats_.tx_gather_bytes += gp.borrowed_payload_bytes;
    obs_add(m_.packets_sent);
    obs_add(m_.bytes_sent, gp.wire_size);
    obs_add(m_.tx_gather_bytes, gp.borrowed_payload_bytes);
    if (cfg_.obs != nullptr && cfg_.obs->tracer != nullptr) {
      TraceEvent e;
      e.t = sim_.now();
      e.kind = TraceEventKind::kPacketized;
      e.site = cfg_.obs_site;
      e.aux = gp.wire_size;
      cfg_.obs->tracer->record(e);
    }
    // Linearization is the scatter-gather DMA analogue at the network
    // handoff — the sender itself copied no payload bytes.
    if (cfg_.send_packet) cfg_.send_packet(gp.linearize());
  }
}

void ChunkTransportSender::send_chunks(std::vector<Chunk> chunks) {
  PacketizerOptions opts;
  opts.mtu = cfg_.mtu;
  opts.policy = cfg_.pack_policy;
  PacketizeResult packed = packetize(std::move(chunks), opts);
  // Materializing assembly copies every (deliverable) payload byte
  // into the flat packet buffers.
  stats_.tx_bytes_copied += packed.payload_bytes;
  obs_add(m_.tx_bytes_copied, packed.payload_bytes);
  for (auto& pkt : packed.packets) {
    if (cfg_.compress_wire) {
      // Re-encode the packet in the compact negotiated syntax; the
      // compressed form is never larger, and unrepresentable chunks
      // fall back to the canonical envelope (both parse at the peer).
      const ParsedPacket parsed = decode_packet(pkt);
      auto compact = compress_packet(parsed.chunks, *cfg_.compress_wire,
                                     cfg_.mtu);
      if (!compact.empty()) pkt = std::move(compact);
    }
    stats_.bytes_sent += pkt.size();
    ++stats_.packets_sent;
    obs_add(m_.packets_sent);
    obs_add(m_.bytes_sent, pkt.size());
    if (cfg_.obs != nullptr && cfg_.obs->tracer != nullptr) {
      TraceEvent e;
      e.t = sim_.now();
      e.kind = TraceEventKind::kPacketized;
      e.site = cfg_.obs_site;
      e.aux = pkt.size();
      cfg_.obs->tracer->record(e);
    }
    if (cfg_.send_packet) cfg_.send_packet(std::move(pkt));
  }
}

void ChunkTransportSender::handle_gap_nak(const Chunk& signal) {
  const auto nak = parse_gap_nak(signal);
  if (!nak) return;
  const auto it = outstanding_.find(nak->tpdu_id);
  if (it == outstanding_.end()) return;  // already acked or abandoned
  // An honoured gap NAK consumes a retransmit attempt. Without this the
  // retry budget never trips on the selective path (each honoured NAK
  // also quiets the whole-TPDU backstop below), and a receiver that
  // keeps shedding held state under memory pressure re-arms its NAK
  // budget with every recreated TPDU context — an unbounded
  // NAK → slice → evict livelock. Over budget, give up truthfully
  // exactly like the whole-TPDU retransmission path.
  if (it->second.attempts > cfg_.max_retransmits) {
    ++stats_.gave_up;
    obs_add(m_.gave_up);
    span(SpanEventKind::kTpduGaveUp, nak->tpdu_id);
    gave_up_ids_.push_back(nak->tpdu_id);
    on_tpdu_retired(it->second);
    outstanding_.erase(it);
    if (cfg_.flow.enabled) pump_queue();
    return;
  }
  ++it->second.attempts;
  ++stats_.gap_naks_honoured;
  obs_add(m_.gap_naks_honoured);

  // Slices are views over the pending chunks: the cut is header math
  // plus a payload subspan, so building the resend list copies nothing.
  std::vector<ChunkView> resend;
  for (const Chunk& c : it->second.chunks) {
    if (c.h.type == ChunkType::kErrorDetection) {
      if (nak->need_ed_chunk) resend.push_back(as_view(c));
      continue;
    }
    if (c.h.type != ChunkType::kData) continue;
    const ChunkView v = as_view(c);
    bool taken = false;
    for (const GapRange& g : nak->gaps) {
      if (auto piece = slice_view(v, g.first_sn,
                                  static_cast<std::uint64_t>(g.first_sn) +
                                      g.length)) {
        stats_.selective_retx_elements += piece->h.len;
        stats_.retx_payload_bytes += piece->payload.size();
        obs_add(m_.retx_payload_bytes, piece->payload.size());
        trace_chunk(TraceEventKind::kChunkBuilt, piece->h, 1);
        resend.push_back(*piece);
        taken = true;
      }
    }
    if (!taken && nak->need_tail) {
      if (auto piece = slice_view(v, nak->tail_from, ~std::uint64_t{0})) {
        stats_.selective_retx_elements += piece->h.len;
        stats_.retx_payload_bytes += piece->payload.size();
        obs_add(m_.retx_payload_bytes, piece->payload.size());
        trace_chunk(TraceEventKind::kChunkBuilt, piece->h, 1);
        resend.push_back(*piece);
      }
    }
  }
  if (resend.empty()) return;
  it->second.last_sent = sim_.now();  // quiet the whole-TPDU backstop
  it->second.retransmitted = true;    // Karn: later ACK is ambiguous
  if (use_gather()) {
    send_chunk_views(resend);
  } else {
    std::vector<Chunk> owned;
    owned.reserve(resend.size());
    for (const ChunkView& piece : resend) owned.push_back(piece.to_chunk());
    send_chunks(std::move(owned));
  }
  arm_timer(nak->tpdu_id);
}

void ChunkTransportSender::on_packet(SimPacket pkt) {
  ParsedPacket parsed = decode_packet(pkt.bytes);
  if (!parsed.ok) return;
  for (const Chunk& c : parsed.chunks) {
    if (c.h.type == ChunkType::kSignal) {
      if (cfg_.flow.enabled && signal_kind(c) == SignalKind::kCreditGrant) {
        handle_credit_grant(c);
      } else if (cfg_.selective_retransmit) {
        handle_gap_nak(c);
      }
      continue;
    }
    if (c.h.type != ChunkType::kAck) continue;
    const AckInfo ack = parse_ack_chunk(c);
    auto it = outstanding_.find(ack.tpdu_id);
    if (it == outstanding_.end()) continue;
    if (ack.positive) {
      rto_.on_sample(sim_.now() - it->second.last_sent,
                     it->second.retransmitted);
      // Karn's rule: an ACK for a retransmitted TPDU is ambiguous, so
      // the estimator discarded that sample.
      if (it->second.retransmitted) {
        ++stats_.rto_discarded;
        obs_add(m_.rto_discarded);
      } else {
        ++stats_.rto_samples;
        obs_add(m_.rto_samples);
      }
      ++stats_.tpdus_acked;
      obs_add(m_.tpdus_acked);
      span(SpanEventKind::kTpduAcked, ack.tpdu_id);
      on_tpdu_retired(it->second);
      outstanding_.erase(it);
      if (cfg_.flow.enabled) pump_queue();
    } else {
      // NAK: retransmit immediately with the same identifiers.
      ++stats_.naks;
      obs_add(m_.naks);
      if (it->second.attempts > cfg_.max_retransmits) {
        ++stats_.gave_up;
        obs_add(m_.gave_up);
        span(SpanEventKind::kTpduGaveUp, ack.tpdu_id);
        gave_up_ids_.push_back(ack.tpdu_id);
        on_tpdu_retired(it->second);
        outstanding_.erase(it);
        if (cfg_.flow.enabled) pump_queue();
        continue;
      }
      ++stats_.retransmissions;
      obs_add(m_.retransmissions);
      transmit_tpdu(ack.tpdu_id, it->second);
    }
  }
}

}  // namespace chunknet
