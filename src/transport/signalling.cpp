#include "src/transport/signalling.hpp"

#include <algorithm>

#include "src/common/bytes.hpp"

namespace chunknet {

namespace {

/// Wraps a serialized signal payload into a SIGNAL chunk. Control
/// information is indivisible (§2), so the payload travels as one
/// element: SIZE = payload bytes, LEN = 1.
Chunk wrap(std::uint32_t connection_id, std::vector<std::uint8_t> payload) {
  Chunk c;
  c.h.type = ChunkType::kSignal;
  c.h.size = static_cast<std::uint16_t>(payload.size());
  c.h.len = 1;
  c.h.conn = {connection_id, 0, false};
  c.payload = std::move(payload);
  return c;
}

constexpr std::uint8_t kFlagElideSize = 0x01;
constexpr std::uint8_t kFlagImplicitTid = 0x02;
constexpr std::uint8_t kFlagImplicitXid = 0x04;
constexpr std::uint8_t kFlagContinuation = 0x08;

}  // namespace

Chunk make_signal_chunk(const ConnectionOpen& open) {
  std::vector<std::uint8_t> p;
  ByteWriter w(p);
  w.u8(static_cast<std::uint8_t>(SignalKind::kConnectionOpen));
  w.u32(open.connection_id);
  w.u32(open.first_conn_sn);
  std::uint8_t flags = 0;
  if (open.profile.elide_size) flags |= kFlagElideSize;
  if (open.profile.implicit_tid) flags |= kFlagImplicitTid;
  if (open.profile.implicit_xid) flags |= kFlagImplicitXid;
  if (open.profile.intra_packet_continuation) flags |= kFlagContinuation;
  w.u8(flags);
  for (const std::uint16_t s : open.profile.size_by_type) w.u16(s);
  return wrap(open.connection_id, std::move(p));
}

Chunk make_signal_chunk(const ConnectionClose& close) {
  std::vector<std::uint8_t> p;
  ByteWriter w(p);
  w.u8(static_cast<std::uint8_t>(SignalKind::kConnectionClose));
  w.u32(close.connection_id);
  w.u32(close.final_conn_sn);
  return wrap(close.connection_id, std::move(p));
}

Chunk make_signal_chunk(const GapNak& nak) {
  // More ranges than the 16-bit SIZE field can carry would silently
  // truncate the chunk header; clamp instead — a NAK is advisory, and
  // runs past the clamp are re-requested by the next one.
  const std::size_t n = std::min(nak.gaps.size(), kMaxGapRanges);
  std::vector<std::uint8_t> p;
  ByteWriter w(p);
  w.u8(static_cast<std::uint8_t>(SignalKind::kGapNak));
  w.u32(nak.connection_id);
  w.u32(nak.tpdu_id);
  w.u8(static_cast<std::uint8_t>((nak.need_ed_chunk ? 1 : 0) |
                                 (nak.need_tail ? 2 : 0)));
  w.u32(nak.tail_from);
  w.u16(static_cast<std::uint16_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    w.u32(nak.gaps[i].first_sn);
    w.u32(nak.gaps[i].length);
  }
  return wrap(nak.connection_id, std::move(p));
}

Chunk make_signal_chunk(const CreditGrant& grant) {
  std::vector<std::uint8_t> p;
  ByteWriter w(p);
  w.u8(static_cast<std::uint8_t>(SignalKind::kCreditGrant));
  w.u32(grant.connection_id);
  w.u32(grant.grant_seq);
  w.u64(grant.credit_limit_bytes);
  w.u16(grant.tpdu_slots);
  return wrap(grant.connection_id, std::move(p));
}

Chunk make_signal_chunk(const ConnectionRefused& refused) {
  std::vector<std::uint8_t> p;
  ByteWriter w(p);
  w.u8(static_cast<std::uint8_t>(SignalKind::kConnectionRefused));
  w.u32(refused.connection_id);
  w.u64(refused.retry_hint_bytes);
  return wrap(refused.connection_id, std::move(p));
}

std::optional<SignalKind> signal_kind(const Chunk& c) {
  if (c.h.type != ChunkType::kSignal || c.payload.empty()) return std::nullopt;
  // Control information is indivisible (§2): every signal travels as
  // exactly one element. A multi-element "signal" never came from
  // make_signal_chunk, so refuse it before any payload parse.
  if (c.h.len != 1) return std::nullopt;
  const std::uint8_t k = c.payload[0];
  if (k < 1 || k > 5) return std::nullopt;
  return static_cast<SignalKind>(k);
}

std::optional<ConnectionOpen> parse_connection_open(const Chunk& c) {
  if (signal_kind(c) != SignalKind::kConnectionOpen) return std::nullopt;
  ByteReader r(c.payload);
  r.u8();
  ConnectionOpen open;
  open.connection_id = r.u32();
  open.first_conn_sn = r.u32();
  const std::uint8_t flags = r.u8();
  open.profile.elide_size = (flags & kFlagElideSize) != 0;
  open.profile.implicit_tid = (flags & kFlagImplicitTid) != 0;
  open.profile.implicit_xid = (flags & kFlagImplicitXid) != 0;
  open.profile.intra_packet_continuation = (flags & kFlagContinuation) != 0;
  for (auto& s : open.profile.size_by_type) s = r.u16();
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return open;
}

std::optional<ConnectionClose> parse_connection_close(const Chunk& c) {
  if (signal_kind(c) != SignalKind::kConnectionClose) return std::nullopt;
  ByteReader r(c.payload);
  r.u8();
  ConnectionClose close;
  close.connection_id = r.u32();
  close.final_conn_sn = r.u32();
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return close;
}

std::optional<GapNak> parse_gap_nak(const Chunk& c) {
  if (signal_kind(c) != SignalKind::kGapNak) return std::nullopt;
  ByteReader r(c.payload);
  r.u8();
  GapNak nak;
  nak.connection_id = r.u32();
  nak.tpdu_id = r.u32();
  const std::uint8_t flags = r.u8();
  nak.need_ed_chunk = (flags & 1) != 0;
  nak.need_tail = (flags & 2) != 0;
  nak.tail_from = r.u32();
  const std::uint16_t n = r.u16();
  // The count is attacker-controlled; size the allocation from the
  // bytes that are actually THERE, not from the claim. A 15-byte
  // datagram claiming 65535 ranges must not reserve 512 KB before the
  // truncation check finally fails.
  if (!r.ok() || r.remaining() != static_cast<std::size_t>(n) * 8) {
    return std::nullopt;
  }
  nak.gaps.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    GapRange g;
    g.first_sn = r.u32();
    g.length = r.u32();
    nak.gaps.push_back(g);
  }
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return nak;
}

std::optional<CreditGrant> parse_credit_grant(const Chunk& c) {
  if (signal_kind(c) != SignalKind::kCreditGrant) return std::nullopt;
  ByteReader r(c.payload);
  r.u8();
  CreditGrant grant;
  grant.connection_id = r.u32();
  grant.grant_seq = r.u32();
  grant.credit_limit_bytes = r.u64();
  grant.tpdu_slots = r.u16();
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return grant;
}

std::optional<ConnectionRefused> parse_connection_refused(const Chunk& c) {
  if (signal_kind(c) != SignalKind::kConnectionRefused) return std::nullopt;
  ByteReader r(c.payload);
  r.u8();
  ConnectionRefused refused;
  refused.connection_id = r.u32();
  refused.retry_hint_bytes = r.u64();
  if (!r.ok() || r.remaining() != 0) return std::nullopt;
  return refused;
}

}  // namespace chunknet
