#include "src/transport/invariant.hpp"

namespace chunknet {

bool TpduInvariant::absorb(const ChunkHeader& h,
                           std::span<const std::uint8_t> payload) {
  if (h.type != ChunkType::kData) return false;
  if (h.size % 4 != 0) return false;  // data must be 32-bit symbols

  const std::uint32_t words_per_element = h.size / 4;
  // A hostile T.SN can wrap 32-bit position arithmetic and slip a chunk
  // past the layout bound (the wrapped product lands back inside
  // [0, max_data_symbols)); do the extent check in 64 bits so rejection
  // is decided on the true positions (fuzzer regression).
  const std::uint64_t first_symbol =
      static_cast<std::uint64_t>(h.tpdu.sn) * words_per_element;
  const std::uint64_t symbol_count =
      static_cast<std::uint64_t>(h.len) * words_per_element;
  if (first_symbol + symbol_count > cfg_.max_data_symbols) return false;

  // --- payload words at their fragmentation-invariant positions.
  acc_.add_words(static_cast<std::uint32_t>(first_symbol), payload);

  // --- once-per-TPDU constants. T.ID and C.ID are identical in every
  // chunk of the TPDU, so encoding them on first contact is equivalent
  // to the transmitter encoding them once.
  const std::uint32_t base = cfg_.max_data_symbols;
  if (!ids_encoded_) {
    encode_symbol(base + 0, h.tpdu.id);
    encode_symbol(base + 1, h.conn.id);
    ids_encoded_ = true;
  }

  // --- C.ST: "can be set only on a TPDU boundary, so a set C.ST bit
  // can occur at most once in a TPDU". Encoding value 0 is a no-op, so
  // unconditionally encoding the bit's value when it appears preserves
  // the exactly-once semantics.
  if (h.conn.st) encode_symbol(base + 2, 1);

  // --- (X.ID, X.ST) pairs (Figure 6). Encode when the chunk ends an
  // external PDU (X.ST) or ends the TPDU (T.ST, covering an external
  // PDU that begins but does not end here). When both bits are set the
  // pair is encoded once, with the X.ST value inside, so X.ST
  // corruption is detectable even then.
  if (h.xpdu.st || h.tpdu.st) {
    // In range after the 64-bit extent check above (t < max_data_symbols),
    // so the 32-bit pair-position arithmetic cannot wrap.
    const std::uint32_t last_element_sn = h.tpdu.sn + h.len - 1;
    const std::uint32_t t = last_element_sn * words_per_element;
    const std::uint32_t pair_pos = 2 * t + base + 3;
    encode_symbol(pair_pos, h.xpdu.id);
    encode_symbol(pair_pos + 1, h.xpdu.st ? 1u : 0u);
  }
  return true;
}

bool SnConsistencyChecker::check(const ChunkHeader& h) {
  if (h.type != ChunkType::kData) return consistent_;
  const std::uint32_t dct = h.conn.sn - h.tpdu.sn;
  if (!delta_ct_) {
    delta_ct_ = dct;
  } else if (*delta_ct_ != dct) {
    consistent_ = false;
  }
  const std::uint32_t dcx = h.conn.sn - h.xpdu.sn;
  const auto [it, inserted] = delta_cx_by_xid_.emplace(h.xpdu.id, dcx);
  if (!inserted && it->second != dcx) consistent_ = false;
  return consistent_;
}

}  // namespace chunknet
