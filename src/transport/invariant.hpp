// The TPDU error-detection invariant (paper §4, Figures 5 and 6).
//
// End-to-end error detection over chunks is hard because routers
// legitimately rewrite chunk headers during fragmentation (SN, LEN and
// ST fields change). The paper's solution: compute the WSC-2 code over
// an *invariant of the TPDU under chunk fragmentation* — a virtual
// 2^29-symbol code space laid out so that every quantity that must be
// protected appears at a fragmentation-independent position exactly
// once:
//
//   [0 … D-1]          TPDU payload words at position
//                      T.SN·(SIZE/4) + word-within-element
//   [D]                T.ID          (once per TPDU)
//   [D+1]              C.ID          (once per TPDU)
//   [D+2]              C.ST value    (set only on a TPDU boundary)
//   [2·t + D+3, +1]    (X.ID, X.ST) pair, where t is the symbol index
//                      of the data element whose X.ST or T.ST is set
//
// with D = max_data_symbols (16,384 in the paper → offsets 16384/16385/
// 16386/16387). The encode-exactly-once rule for X (Figure 6): encode
// at each X.ST (one per external PDU), and at T.ST for the still-open
// external PDU that begins but does not end in this TPDU.
//
// Because WSC-2 contributions depend only on (position, value), and
// fragmentation preserves each datum's absolute position and moves ST
// bits onto the piece holding the marked element, the accumulated code
// is identical no matter how chunks were split, merged, repacked or
// reordered — verified exhaustively by tests and bench E4.
//
// Fields NOT covered (TYPE, LEN, SIZE, T.SN, T.ST) are protected by
// virtual-reassembly failure; C.SN and X.SN by the consistency checks
// below (Table 1's three detection mechanisms).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>

#include "src/chunk/types.hpp"
#include "src/edc/wsc2.hpp"

namespace chunknet {

struct InvariantConfig {
  /// Capacity of the data region in 32-bit symbols (paper: 16,384,
  /// i.e. 64 KiB TPDUs).
  std::uint32_t max_data_symbols{16384};
};

/// Incremental, order-independent accumulator of one TPDU's invariant.
class TpduInvariant {
 public:
  explicit TpduInvariant(InvariantConfig cfg = {}) : cfg_(cfg) {}

  /// Absorbs one data chunk belonging to this TPDU. The caller is
  /// responsible for duplicate rejection (virtual reassembly) — a
  /// duplicate absorbed twice cancels itself and corrupts the code,
  /// which is exactly why §3.3 requires rejecting duplicates.
  /// Returns false if the chunk violates the layout (SIZE not a
  /// multiple of 4, or data beyond max_data_symbols).
  ///
  /// The (header, payload) form is the primitive: it reads the payload
  /// exactly once wherever it lives, so the zero-copy receive path can
  /// absorb straight from the packet buffer.
  bool absorb(const ChunkHeader& h, std::span<const std::uint8_t> payload);
  bool absorb(const Chunk& c) { return absorb(c.h, c.payload); }
  bool absorb(const ChunkView& c) { return absorb(c.h, c.payload); }

  Wsc2Code value() const { return acc_.value(); }

  std::uint32_t data_region_symbols() const { return cfg_.max_data_symbols; }

 private:
  void encode_symbol(std::uint32_t pos, std::uint32_t v) {
    // Zero-valued symbols are the identity — unused positions are
    // "equivalent to encoding a symbol of zero at that i value".
    if (v != 0) acc_.add_symbol(pos, v);
  }

  InvariantConfig cfg_;
  Wsc2Accumulator acc_;
  bool ids_encoded_{false};
};

/// The Table-1 "Consistency Check" mechanism for C.SN and X.SN:
/// (C.SN − T.SN) must be constant across all chunks of a TPDU, and
/// (C.SN − X.SN) constant across all chunks of an external PDU within
/// it. Both differences are preserved by fragmentation (all SNs shift
/// together), so any divergence is corruption.
class SnConsistencyChecker {
 public:
  /// Feeds one data chunk; returns false on an inconsistency. Only the
  /// header participates, so a ChunkView's header works identically.
  bool check(const ChunkHeader& h);
  bool check(const Chunk& c) { return check(c.h); }
  bool check(const ChunkView& c) { return check(c.h); }

  bool consistent() const { return consistent_; }

 private:
  std::optional<std::uint32_t> delta_ct_;
  std::map<std::uint32_t, std::uint32_t> delta_cx_by_xid_;
  bool consistent_{true};
};

}  // namespace chunknet
