#include "src/transport/receiver.hpp"

#include <algorithm>

#include "src/chunk/codec.hpp"
#include "src/transport/signalling.hpp"

namespace chunknet {

const char* to_string(DeliveryMode m) {
  switch (m) {
    case DeliveryMode::kImmediate: return "immediate";
    case DeliveryMode::kReorder: return "reorder";
    case DeliveryMode::kReassemble: return "reassemble";
  }
  return "?";
}

const char* to_string(TpduVerdict v) {
  switch (v) {
    case TpduVerdict::kAccepted: return "accepted";
    case TpduVerdict::kCodeMismatch: return "code-mismatch";
    case TpduVerdict::kConsistencyFailure: return "consistency-failure";
    case TpduVerdict::kReassemblyError: return "reassembly-error";
  }
  return "?";
}

ChunkTransportReceiver::ChunkTransportReceiver(Simulator& sim,
                                               ReceiverConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      app_buffer_(cfg_.app_buffer_bytes, 0) {
  if (cfg_.obs != nullptr) spans_ = cfg_.obs->spans;
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    MetricsRegistry& reg = *cfg_.obs->metrics;
    const std::string p =
        std::string("receiver.") + to_string(cfg_.mode) + ".";
    m_.packets = &reg.counter(p + "packets");
    m_.malformed_packets = &reg.counter(p + "malformed_packets");
    m_.data_chunks = &reg.counter(p + "data_chunks");
    m_.ed_chunks = &reg.counter(p + "ed_chunks");
    m_.foreign_chunks = &reg.counter(p + "foreign_chunks");
    m_.duplicate_chunks = &reg.counter(p + "duplicate_chunks");
    m_.overlap_chunks = &reg.counter(p + "overlap_chunks");
    m_.framing_error_chunks = &reg.counter(p + "framing_error_chunks");
    m_.tpdus_accepted = &reg.counter(p + "tpdus_accepted");
    m_.tpdus_rejected = &reg.counter(p + "tpdus_rejected");
    m_.acks_resent = &reg.counter(p + "acks_resent");
    m_.chunks_placed = &reg.counter(p + "chunks_placed");
    m_.oob_chunks = &reg.counter(p + "oob_chunks");
    m_.dropped_unplaced_chunks = &reg.counter(p + "dropped_unplaced_chunks");
    m_.dropped_unplaced_bytes = &reg.counter(p + "dropped_unplaced_bytes");
    m_.bus_bytes = &reg.counter(p + "bus_bytes");
    m_.bytes_placed = &reg.counter(p + "bytes_placed");
    m_.tpdus_evicted = &reg.counter(p + "tpdus_evicted");
    m_.held_chunks_evicted = &reg.counter(p + "held_chunks_evicted");
    m_.held_bytes_evicted = &reg.counter(p + "held_bytes_evicted");
    m_.held_bytes = &reg.gauge(p + "held_bytes");
    m_.held_bytes_peak = &reg.gauge(p + "held_bytes_peak");
    m_.delivery_latency = &reg.histogram(p + "delivery_latency_ns");
    if (cfg_.governor != nullptr) {
      m_.governor_refusals = &reg.counter(p + "governor_refusals");
    }
    if (cfg_.grant_credit) {
      m_.grants_sent = &reg.counter("flow.grants_sent");
    }
  }
  if (cfg_.governor != nullptr) {
    cfg_.governor->bind_client(cfg_.connection_id, cfg_.shed_priority,
                               [this] { return shed_held(); });
  }
}

ChunkTransportReceiver::~ChunkTransportReceiver() {
  if (cfg_.governor != nullptr) {
    cfg_.governor->unbind_client(cfg_.connection_id);
  }
}

std::uint64_t ChunkTransportReceiver::shed_held() {
  const std::uint64_t before = stats_.held_bytes_now;
  switch (cfg_.mode) {
    case DeliveryMode::kImmediate:
      return 0;  // holds nothing — the paper's point
    case DeliveryMode::kReorder:
      if (reorder_queue_.empty()) return 0;
      flush_reorder_queue();
      break;
    case DeliveryMode::kReassemble:
      if (!evict_oldest_holder()) return 0;
      break;
  }
  return before - stats_.held_bytes_now;
}

void ChunkTransportReceiver::abort_for_governor(std::uint32_t tpdu_id,
                                                std::size_t incoming_bytes) {
  ++stats_.governor_refusals;
  obs_add(m_.governor_refusals);
  if (TpduState* st = tpdus_.find(tpdu_id)) {
    for (const HeldChunk& hc : st->held) {
      drop_unplaced(hc.chunk.payload.size(), /*was_held=*/true);
      ++stats_.held_chunks_evicted;
      stats_.held_bytes_evicted += hc.chunk.payload.size();
      obs_add(m_.held_chunks_evicted);
      obs_add(m_.held_bytes_evicted, hc.chunk.payload.size());
    }
    ++stats_.tpdus_evicted;
    obs_add(m_.tpdus_evicted);
    erase_tpdu_entry(tpdu_id, *st);
  }
  span(SpanEventKind::kTpduEvicted, tpdu_id, 1);
  drop_unplaced(incoming_bytes, /*was_held=*/false);
}

void ChunkTransportReceiver::maybe_send_grant() {
  if (!cfg_.grant_credit || !cfg_.send_control) return;
  CreditGrant grant;
  grant.connection_id = cfg_.connection_id;
  grant.grant_seq = ++grant_seq_;
  std::uint64_t window = cfg_.credit_window_bytes;
  std::uint16_t slots = cfg_.credit_tpdu_slots;
  if (cfg_.governor != nullptr) {
    window = std::min(window, cfg_.governor->grant_hint(cfg_.connection_id));
    if (cfg_.governor->over_soft()) {
      slots = std::max<std::uint16_t>(slots / 2, 1);
    }
  }
  grant.credit_limit_bytes = credited_bytes_ + window;
  grant.tpdu_slots = slots;
  ++stats_.credit_grants_sent;
  obs_add(m_.grants_sent);
  span(SpanEventKind::kCreditGrant, 0, grant.credit_limit_bytes);
  cfg_.send_control(make_signal_chunk(grant));
}

void ChunkTransportReceiver::trace_chunk(TraceEventKind kind,
                                         const ChunkHeader& h,
                                         std::uint64_t packet_id,
                                         std::uint64_t aux) const {
  if (cfg_.obs == nullptr || cfg_.obs->tracer == nullptr) return;
  TraceEvent e;
  e.t = sim_.now();
  e.kind = kind;
  e.site = cfg_.obs_site;
  e.packet_id = packet_id;
  e.tpdu_id = h.tpdu.id;
  e.conn_sn = h.conn.sn;
  e.len = h.len;
  e.aux = aux;
  cfg_.obs->tracer->record(e);
}

void ChunkTransportReceiver::trace_packet(TraceEventKind kind,
                                          std::uint64_t packet_id) const {
  if (cfg_.obs == nullptr || cfg_.obs->tracer == nullptr) return;
  TraceEvent e;
  e.t = sim_.now();
  e.kind = kind;
  e.site = cfg_.obs_site;
  e.packet_id = packet_id;
  cfg_.obs->tracer->record(e);
}

void ChunkTransportReceiver::span(SpanEventKind kind, std::uint32_t tpdu_id,
                                  std::uint64_t aux) const {
  if (spans_ == nullptr) return;
  SpanEvent e;
  e.t = sim_.now();
  e.kind = kind;
  e.connection_id = cfg_.connection_id;
  e.tpdu_id = tpdu_id;
  e.aux = aux;
  spans_->record(e);
}

void ChunkTransportReceiver::on_packet(SimPacket pkt) {
  ++stats_.packets;
  obs_add(m_.packets);
  trace_packet(TraceEventKind::kPacketReceived, pkt.id);
  if (cfg_.compression && !pkt.bytes.empty() &&
      pkt.bytes[0] == kCompressedPacketMagic) {
    // Compact-syntax packets are re-materialized by the decompressor,
    // so they keep the owning path.
    DecompressedPacket parsed =
        decompress_packet(pkt.bytes, *cfg_.compression);
    if (!parsed.ok) {
      ++stats_.malformed_packets;
      obs_add(m_.malformed_packets);
      trace_packet(TraceEventKind::kMalformedPacket, pkt.id);
    } else {
      for (Chunk& c : parsed.chunks) {
        on_chunk(std::move(c), pkt.created_at, pkt.id);
      }
    }
  } else if (!decode_packet_views(pkt.bytes, view_scratch_)) {
    ++stats_.malformed_packets;
    obs_add(m_.malformed_packets);
    trace_packet(TraceEventKind::kMalformedPacket, pkt.id);
  } else {
    // Zero-copy path: every view aliases pkt.bytes, which stays alive
    // and unmoved until this loop finishes.
    for (const ChunkView& v : view_scratch_) {
      on_chunk_view(v, pkt.created_at, pkt.id);
    }
    view_scratch_.clear();
  }
  if (cfg_.pool != nullptr) cfg_.pool->release(std::move(pkt.bytes));
}

void ChunkTransportReceiver::on_chunk(Chunk c, SimTime packet_created_at,
                                      std::uint64_t packet_id) {
  on_chunk_view(as_view(c), packet_created_at, packet_id);
}

void ChunkTransportReceiver::on_chunk_view(const ChunkView& v,
                                           SimTime packet_created_at,
                                           std::uint64_t packet_id) {
  if (v.h.conn.id != cfg_.connection_id) {
    ++stats_.foreign_chunks;
    obs_add(m_.foreign_chunks);
    return;
  }
  switch (v.h.type) {
    case ChunkType::kData:
      handle_data_chunk(v, packet_created_at, packet_id);
      break;
    case ChunkType::kErrorDetection:
      handle_ed_chunk(v);
      break;
    default:
      break;  // signalling/ack chunks are not for the data receiver
  }
}

void ChunkTransportReceiver::hold_bytes(std::uint64_t n) {
  stats_.held_bytes_now += n;
  stats_.held_bytes_peak =
      std::max(stats_.held_bytes_peak, stats_.held_bytes_now);
  obs_add(m_.held_bytes, static_cast<std::int64_t>(n));
  obs_set(m_.held_bytes_peak,
          static_cast<std::int64_t>(stats_.held_bytes_peak));
  if (cfg_.governor != nullptr) {
    cfg_.governor->charge(cfg_.connection_id, ResourceClass::kHeld, n);
  }
}

void ChunkTransportReceiver::unhold_bytes(std::uint64_t n) {
  stats_.held_bytes_now -= n;
  obs_add(m_.held_bytes, -static_cast<std::int64_t>(n));
  if (cfg_.governor != nullptr) {
    cfg_.governor->release(cfg_.connection_id, ResourceClass::kHeld, n);
  }
}

void ChunkTransportReceiver::drop_unplaced(std::size_t payload_bytes,
                                           bool was_held) {
  if (was_held) unhold_bytes(payload_bytes);
  ++stats_.dropped_unplaced_chunks;
  stats_.dropped_unplaced_bytes += payload_bytes;
  obs_add(m_.dropped_unplaced_chunks);
  obs_add(m_.dropped_unplaced_bytes, payload_bytes);
}

void ChunkTransportReceiver::handle_data_chunk(const ChunkView& v,
                                               SimTime packet_created_at,
                                               std::uint64_t packet_id) {
  ++stats_.data_chunks;
  obs_add(m_.data_chunks);
  if (v.h.size != cfg_.element_size || !v.structurally_valid()) {
    ++stats_.framing_error_chunks;
    obs_add(m_.framing_error_chunks);
    trace_chunk(TraceEventKind::kFramingRejected, v.h, packet_id);
    return;
  }

  if (cfg_.max_open_tpdus > 0 && tpdus_.size() >= cfg_.max_open_tpdus &&
      tpdus_.find(v.h.tpdu.id) == nullptr) {
    evict_for_open_cap();
  }
  const auto [stp, inserted] = tpdus_.try_emplace(v.h.tpdu.id);
  TpduState& st = *stp;
  if (inserted) st.order_node = active_.push_back(v.h.tpdu.id);
  if (st.elements == 0 && st.first_chunk_at == 0) {
    st.first_chunk_at = sim_.now();
    span(SpanEventKind::kTpduFirstChunk, v.h.tpdu.id);
  }
  arm_gap_nak_timer(v.h.tpdu.id, st);

  // --- virtual reassembly first: duplicates must never reach the
  // incremental code or overwrite placed data (§3.3).
  switch (st.tracker.add(v.h.tpdu.sn, v.h.len, v.h.tpdu.st)) {
    case PieceVerdict::kAccept:
      break;
    case PieceVerdict::kDuplicate:
      ++stats_.duplicate_chunks;
      obs_add(m_.duplicate_chunks);
      trace_chunk(TraceEventKind::kDuplicateRejected, v.h, packet_id);
      return;
    case PieceVerdict::kOverlap:
      // Two conflicting framings of the same elements: one of them is
      // corrupt (e.g. a rewritten LEN shrank an accepted piece, and
      // this is the honest copy that can now never fit). Without the
      // framing_error flag the TPDU wedges open forever — the tracker
      // can't complete, every canonical retransmission re-overlaps,
      // and no verdict ever fires. Flagging it routes the TPDU through
      // the ReassemblyError reject → erase → clean-retransmission
      // recovery path, same as the other framing corruptions.
      ++stats_.overlap_chunks;
      obs_add(m_.overlap_chunks);
      trace_chunk(TraceEventKind::kOverlapRejected, v.h, packet_id);
      st.framing_error = true;
      try_finish(v.h.tpdu.id, st);
      return;
    case PieceVerdict::kAfterStop:
    case PieceVerdict::kStopConflict:
      ++stats_.framing_error_chunks;
      obs_add(m_.framing_error_chunks);
      trace_chunk(TraceEventKind::kFramingRejected, v.h, packet_id);
      st.framing_error = true;
      // If the ED chunk already landed, resolve now rather than waiting
      // for the next (possibly never-arriving) chunk to trigger it.
      try_finish(v.h.tpdu.id, st);
      return;
  }
  st.elements += v.h.len;

  // --- incremental protocol processing on the disordered chunk,
  // reading the payload in place (still inside the packet buffer).
  const bool absorbed_ok = st.invariant.absorb(v);
  if (!absorbed_ok) st.layout_error = true;
  trace_chunk(TraceEventKind::kInvariantAbsorbed, v.h, packet_id,
              absorbed_ok ? 1 : 0);
  st.consistency.check(v);

  const std::uint32_t tpdu_id = v.h.tpdu.id;

  // --- data placement, by delivery mode. Immediate placement copies
  // straight from the view — the payload's ONLY copy. The holding modes
  // materialize an owning Chunk (to_chunk); that copy is the extra bus
  // crossing the accounting charges held bytes for.
  switch (cfg_.mode) {
    case DeliveryMode::kImmediate:
      place_chunk(v.h, v.payload, packet_created_at, /*was_held=*/false,
                  packet_id);
      break;
    case DeliveryMode::kReorder: {
      // All ordering decisions happen in stream-offset space (wrapping
      // distance from first_conn_sn), never on raw C.SN: a connection
      // whose SNs cross the 2^32 boundary mid-stream would otherwise
      // see post-wrap chunks compare "before" the release point and be
      // re-placed out of turn (wraparound audit).
      const std::uint64_t off = stream_offset(v.h.conn.sn);
      if (off < next_release_off_) {
        // Retransmission of stream range already released (the original
        // TPDU was rejected): re-place directly, it cannot be queued.
        place_chunk(v.h, v.payload, packet_created_at, /*was_held=*/false,
                    packet_id);
      } else if (off == next_release_off_) {
        place_chunk(v.h, v.payload, packet_created_at, /*was_held=*/false,
                    packet_id);
        next_release_off_ += v.h.len;
        release_in_order();
      } else if ((cfg_.max_held_bytes > 0 &&
                  stats_.held_bytes_now + v.payload.size() >
                      cfg_.max_held_bytes) ||
                 (cfg_.governor != nullptr &&
                  !cfg_.governor->fits(v.payload.size()) &&
                  !cfg_.governor->make_room(v.payload.size(),
                                            cfg_.connection_id))) {
        // Cap pressure: force-place the whole queue (placement is
        // position-keyed by C.SN, so out-of-order release keeps the
        // application bytes exact) and this chunk with it, rather than
        // let a loss burst grow the queue without bound.
        flush_reorder_queue();
        place_chunk(v.h, v.payload, packet_created_at, /*was_held=*/false,
                    packet_id);
        next_release_off_ = std::max(next_release_off_, off + v.h.len);
      } else {
        // Overwrite any stale entry at this offset (a retransmission
        // after rejection must supersede the queued original, which may
        // be the corrupted copy that caused the rejection). The
        // superseded copy is dropped unplaced — and its bytes un-held —
        // so both hold accounting and the conservation balance close.
        trace_chunk(TraceEventKind::kChunkHeld, v.h, packet_id);
        if (HeldChunk* hc = reorder_queue_.find(off)) {
          drop_unplaced(hc->chunk.payload.size(), /*was_held=*/true);
          *hc = HeldChunk{v.to_chunk(), packet_created_at, packet_id};
          hold_bytes(hc->chunk.payload.size());
        } else {
          const auto [ins, _] = reorder_queue_.insert_or_assign(
              off, HeldChunk{v.to_chunk(), packet_created_at, packet_id});
          hold_bytes(ins->chunk.payload.size());
          reorder_heap_.push_back(off);
          std::push_heap(reorder_heap_.begin(), reorder_heap_.end(),
                         std::greater<>{});
        }
      }
      break;
    }
    case DeliveryMode::kReassemble:
      if (cfg_.max_held_bytes > 0) {
        while (stats_.held_bytes_now + v.payload.size() >
               cfg_.max_held_bytes) {
          const auto evicted = evict_oldest_holder();
          if (!evicted) break;  // nothing held: cap below one chunk
          // The incoming chunk's own TPDU was the oldest holder: its
          // state (this chunk included) is gone; the sender's
          // retransmission will start it clean. The chunk itself was
          // triaged-accepted above, so account its disposition.
          if (*evicted == tpdu_id) {
            drop_unplaced(v.payload.size(), /*was_held=*/false);
            return;
          }
        }
      }
      if (cfg_.governor != nullptr) {
        // Hard-watermark gate: evict our own oldest holders first, then
        // let the governor shed other clients under its policy. If no
        // room can be made, abort THIS TPDU — the hard bound is never
        // crossed, and the retransmission starts clean once the
        // sender's credit recovers.
        while (!cfg_.governor->fits(v.payload.size())) {
          const auto evicted = evict_oldest_holder();
          if (!evicted) break;
          if (*evicted == tpdu_id) {
            drop_unplaced(v.payload.size(), /*was_held=*/false);
            return;
          }
        }
        if (!cfg_.governor->fits(v.payload.size()) &&
            !cfg_.governor->make_room(v.payload.size(),
                                      cfg_.connection_id)) {
          abort_for_governor(tpdu_id, v.payload.size());
          return;
        }
      }
      {
        // The eviction/shedding paths above may have erased entries
        // (including, via the governor's shed hooks, this very TPDU) and
        // the flat table moves entries on erase — re-resolve the state
        // before appending the hold.
        TpduState* hst = tpdus_.find(tpdu_id);
        if (hst == nullptr) {
          drop_unplaced(v.payload.size(), /*was_held=*/false);
          return;
        }
        hold_bytes(v.payload.size());
        trace_chunk(TraceEventKind::kChunkHeld, v.h, packet_id);
        if (hst->held.empty()) {
          hst->holder_node = holders_.push_back(tpdu_id);
        }
        hst->held.push_back(HeldChunk{v.to_chunk(), packet_created_at,
                                      packet_id});
      }
      break;
  }

  if (TpduState* fst = tpdus_.find(tpdu_id)) try_finish(tpdu_id, *fst);
}

void ChunkTransportReceiver::prune_reorder_heap() {
  while (!reorder_heap_.empty() &&
         reorder_queue_.find(reorder_heap_.front()) == nullptr) {
    std::pop_heap(reorder_heap_.begin(), reorder_heap_.end(),
                  std::greater<>{});
    reorder_heap_.pop_back();
  }
}

void ChunkTransportReceiver::release_in_order() {
  // The queue's flat table is unordered; the min-heap supplies offset
  // order. Offsets erased behind the heap's back (abort purges, full
  // flushes) surface as stale heap tops and are skipped by the prune.
  for (prune_reorder_heap(); !reorder_heap_.empty(); prune_reorder_heap()) {
    const std::uint64_t off = reorder_heap_.front();
    HeldChunk* hc = reorder_queue_.find(off);
    const std::uint64_t end = off + hc->chunk.h.len;
    if (end <= next_release_off_) {
      // Fully covered by data already placed: a larger retransmitted
      // chunk (or a direct re-placement) advanced the release point
      // past this entry, e.g. a GapNak slice queued alongside the
      // original. Without this branch the entry sits below the release
      // point forever — a held-state leak.
      drop_unplaced(hc->chunk.payload.size(), /*was_held=*/true);
      reorder_queue_.erase(off);
      continue;
    }
    if (off > next_release_off_) break;
    // off ≤ next_release_off_ < end: due (a partial overlap re-writes
    // the already-placed prefix with identical bytes — placement is
    // position-keyed).
    unhold_bytes(hc->chunk.payload.size());
    place_chunk(hc->chunk.h, hc->chunk.payload, hc->packet_created_at,
                /*was_held=*/true, hc->packet_id);
    next_release_off_ = end;
    reorder_queue_.erase(off);
  }
}

void ChunkTransportReceiver::place_chunk(
    const ChunkHeader& h, std::span<const std::uint8_t> payload,
    SimTime packet_created_at, bool was_held, std::uint64_t packet_id) {
  const std::uint64_t element_off = stream_offset(h.conn.sn);
  const std::uint64_t byte_off = element_off * cfg_.element_size;
  if (byte_off + payload.size() > app_buffer_.size()) {
    ++stats_.oob_chunks;
    obs_add(m_.oob_chunks);
    return;
  }
  ++stats_.chunks_placed;
  stats_.bytes_placed += payload.size();
  obs_add(m_.chunks_placed);

  std::copy(payload.begin(), payload.end(),
            app_buffer_.begin() + static_cast<std::ptrdiff_t>(byte_off));
  app_coverage_.add(element_off, element_off + h.len);

  // Bus accounting: a held byte crossed once into the hold buffer and
  // once more now; an immediate byte crosses once.
  const std::uint64_t crossings = payload.size() * (was_held ? 2 : 1);
  stats_.bus_bytes += crossings;
  obs_add(m_.bus_bytes, crossings);
  obs_add(m_.bytes_placed, payload.size());
  trace_chunk(TraceEventKind::kChunkPlaced, h, packet_id,
              was_held ? 1 : 0);
  const double latency =
      static_cast<double>(sim_.now() - packet_created_at);
  obs_observe(m_.delivery_latency, latency, h.len);
  if (cfg_.record_latency_samples) {
    for (std::uint32_t i = 0; i < h.len; ++i) {
      stats_.delivery_latency_ns.push_back(latency);
    }
  }
}

void ChunkTransportReceiver::handle_ed_chunk(const ChunkView& v) {
  ++stats_.ed_chunks;
  obs_add(m_.ed_chunks);
  if (cfg_.max_open_tpdus > 0 && tpdus_.size() >= cfg_.max_open_tpdus &&
      tpdus_.find(v.h.tpdu.id) == nullptr) {
    evict_for_open_cap();
  }
  const auto [stp, inserted] = tpdus_.try_emplace(v.h.tpdu.id);
  TpduState& st = *stp;
  if (inserted) st.order_node = active_.push_back(v.h.tpdu.id);
  if (st.finished) {
    // Finished tombstones exist only for ACCEPTED TPDUs (rejected state
    // is erased). A re-arriving ED chunk means our positive ACK was
    // lost: the sender is still retransmitting a TPDU we delivered.
    // Re-ACK so it stops — otherwise it retries to give-up and the
    // delivery report turns falsely negative (chaos oracle 1/4).
    if (cfg_.send_control) {
      ++stats_.acks_resent;
      obs_add(m_.acks_resent);
      cfg_.send_control(
          make_ack_chunk(cfg_.connection_id, v.h.tpdu.id, /*accepted=*/true));
      // The grants sent with the original finish may be lost too —
      // re-advertise so the sender's window re-opens.
      maybe_send_grant();
    }
    return;
  }
  if (st.first_chunk_at == 0) {
    st.first_chunk_at = sim_.now();
    span(SpanEventKind::kTpduFirstChunk, v.h.tpdu.id);
  }
  st.received_code = parse_ed_chunk(v);
  arm_gap_nak_timer(v.h.tpdu.id, st);
  try_finish(v.h.tpdu.id, st);
}

void ChunkTransportReceiver::try_finish(std::uint32_t tpdu_id, TpduState& st) {
  if (st.finished || !st.received_code) return;
  if (!st.tracker.complete() && !st.framing_error) return;

  TpduVerdict verdict = TpduVerdict::kAccepted;
  if (st.framing_error || st.layout_error) {
    verdict = TpduVerdict::kReassemblyError;
  } else if (!st.consistency.consistent()) {
    verdict = TpduVerdict::kConsistencyFailure;
  } else if (!(st.invariant.value() == *st.received_code)) {
    verdict = TpduVerdict::kCodeMismatch;
  }

  // In reassemble mode the TPDU's data is physically released only if
  // it passes. A rejected TPDU's held chunks may be misframed (e.g. a
  // rewritten LEN inflating a chunk past its own TPDU's range) and
  // would scribble over neighbours that already passed; the
  // retransmission re-delivers the dropped bytes.
  if (cfg_.mode == DeliveryMode::kReassemble) {
    for (const HeldChunk& hc : st.held) {
      if (verdict == TpduVerdict::kAccepted) {
        unhold_bytes(hc.chunk.payload.size());
        place_chunk(hc.chunk.h, hc.chunk.payload, hc.packet_created_at,
                    /*was_held=*/true, hc.packet_id);
      } else {
        drop_unplaced(hc.chunk.payload.size(), /*was_held=*/true);
      }
    }
    st.held.clear();
  }

  st.finished = true;
  // Queue upkeep: finished TPDUs hold nothing, and only ACCEPTED ones
  // keep a tombstone (in finish order); rejected state is erased below,
  // so its creation-order node is simply unlinked.
  if (st.holder_node != PickQueue::kNil) {
    holders_.remove(st.holder_node);
    st.holder_node = PickQueue::kNil;
  }
  if (st.order_node != PickQueue::kNil) active_.remove(st.order_node);
  st.order_node = verdict == TpduVerdict::kAccepted
                      ? tombstones_.push_back(tpdu_id)
                      : PickQueue::kNil;
  if (verdict == TpduVerdict::kAccepted) {
    ++stats_.tpdus_accepted;
    obs_add(m_.tpdus_accepted);
    span(SpanEventKind::kTpduDelivered, tpdu_id,
         static_cast<std::uint64_t>(verdict));
  } else {
    ++stats_.tpdus_rejected;
    obs_add(m_.tpdus_rejected);
    span(SpanEventKind::kTpduRejected, tpdu_id,
         static_cast<std::uint64_t>(verdict));
  }
  if (cfg_.obs != nullptr && cfg_.obs->tracer != nullptr) {
    TraceEvent e;
    e.t = sim_.now();
    e.kind = verdict == TpduVerdict::kAccepted
                 ? TraceEventKind::kTpduAccepted
                 : TraceEventKind::kTpduRejected;
    e.site = cfg_.obs_site;
    e.tpdu_id = tpdu_id;
    e.len = static_cast<std::uint32_t>(st.elements);
    e.aux = static_cast<std::uint64_t>(verdict);
    cfg_.obs->tracer->record(e);
  }

  if (cfg_.on_tpdu) {
    TpduOutcome outcome;
    outcome.tpdu_id = tpdu_id;
    outcome.verdict = verdict;
    outcome.first_chunk_at = st.first_chunk_at;
    outcome.completed_at = sim_.now();
    outcome.elements = st.elements;
    cfg_.on_tpdu(outcome);
  }
  if (cfg_.send_control) {
    cfg_.send_control(make_ack_chunk(cfg_.connection_id, tpdu_id,
                                     verdict == TpduVerdict::kAccepted));
  }
  // Flow control: a finished TPDU's bytes leave the in-flight window
  // (whatever the verdict — a rejected TPDU's retransmission reuses its
  // already-consumed credit), so advance the cumulative base and
  // advertise the fresh window.
  credited_bytes_ += st.elements * cfg_.element_size;
  maybe_send_grant();
  if (verdict != TpduVerdict::kAccepted) {
    // Drop poisoned state so a retransmission with the same identifiers
    // (§3.3) starts clean.
    tpdus_.erase(tpdu_id);
  }
}

void ChunkTransportReceiver::arm_gap_nak_timer(std::uint32_t tpdu_id,
                                               TpduState& st) {
  if (cfg_.gap_nak_delay == 0 || !cfg_.send_control || st.nak_timer_armed ||
      st.finished || st.gap_naks_sent >= cfg_.max_gap_naks) {
    return;
  }
  st.nak_timer_armed = true;
  if (cfg_.timers != nullptr) {
    // Shared-wheel path: O(1) arm, one pump event for the whole
    // endpoint instead of one simulator heap node per pending NAK.
    cfg_.timers->arm_in(cfg_.gap_nak_delay,
                        [this, tpdu_id] { fire_gap_nak(tpdu_id); });
  } else {
    sim_.schedule_in(cfg_.gap_nak_delay,
                     [this, tpdu_id] { fire_gap_nak(tpdu_id); });
  }
}

void ChunkTransportReceiver::fire_gap_nak(std::uint32_t tpdu_id) {
  TpduState* stp = tpdus_.find(tpdu_id);
  if (stp == nullptr) return;  // rejected & erased meanwhile
  TpduState& st = *stp;
  st.nak_timer_armed = false;
  if (st.finished) return;

  // Ask for exactly what virtual reassembly says is missing.
  GapNak nak;
  nak.connection_id = cfg_.connection_id;
  nak.tpdu_id = tpdu_id;
  nak.need_ed_chunk = !st.received_code.has_value();
  if (!st.tracker.stop_element()) {
    nak.need_tail = true;
    nak.tail_from = static_cast<std::uint32_t>(st.tracker.max_seen());
  }
  for (const auto& [lo, hi] : st.tracker.missing_runs()) {
    nak.gaps.push_back({static_cast<std::uint32_t>(lo),
                        static_cast<std::uint32_t>(hi - lo)});
  }
  ++st.gap_naks_sent;
  cfg_.send_control(make_signal_chunk(nak));
  arm_gap_nak_timer(tpdu_id, st);
}

void ChunkTransportReceiver::flush_reorder_queue() {
  // Placement is position-keyed, so the flat table's unordered walk is
  // fine here: every queued chunk force-places to its own offset.
  for (auto& e : reorder_queue_) {
    HeldChunk& hc = e.value;
    unhold_bytes(hc.chunk.payload.size());
    ++stats_.held_chunks_evicted;
    stats_.held_bytes_evicted += hc.chunk.payload.size();
    obs_add(m_.held_chunks_evicted);
    obs_add(m_.held_bytes_evicted, hc.chunk.payload.size());
    trace_chunk(TraceEventKind::kChunkEvicted, hc.chunk.h, hc.packet_id, 1);
    place_chunk(hc.chunk.h, hc.chunk.payload, hc.packet_created_at,
                /*was_held=*/true, hc.packet_id);
    next_release_off_ =
        std::max(next_release_off_, e.key + hc.chunk.h.len);
  }
  reorder_queue_.clear();
  reorder_heap_.clear();
}

std::optional<std::uint32_t> ChunkTransportReceiver::evict_oldest_holder() {
  // holders_ is first-hold order, and a TPDU's first hold happens at
  // its first chunk (reassemble mode holds every accepted chunk), so
  // the queue head IS the oldest holder: O(1), no table scan.
  if (holders_.empty()) return std::nullopt;
  ++stats_.evict_scan_steps;
  const std::uint32_t id = holders_.value(holders_.front());
  TpduState& st = *tpdus_.find(id);
  for (const HeldChunk& hc : st.held) {
    drop_unplaced(hc.chunk.payload.size(), /*was_held=*/true);
    ++stats_.held_chunks_evicted;
    stats_.held_bytes_evicted += hc.chunk.payload.size();
    obs_add(m_.held_chunks_evicted);
    obs_add(m_.held_bytes_evicted, hc.chunk.payload.size());
    trace_chunk(TraceEventKind::kChunkEvicted, hc.chunk.h, hc.packet_id, 0);
  }
  ++stats_.tpdus_evicted;
  obs_add(m_.tpdus_evicted);
  span(SpanEventKind::kTpduEvicted, id, 0);
  erase_tpdu_entry(id, st);
  return id;
}

void ChunkTransportReceiver::evict_for_open_cap() {
  // Finished tombstones go first (they hold no data and exist only to
  // absorb late duplicates), then INCOMPLETE unfinished TPDUs; a
  // complete-but-not-yet-delivered TPDU (all data arrived, ED chunk
  // still in flight) is the worst possible victim — evicting it throws
  // away a full retransmission's worth of progress — so it goes last.
  // Among equals, oldest first chunk. Tombstones pop from their queue
  // head in O(1); otherwise the creation-order walk (== first-chunk
  // order; sim time is monotonic) stops at the FIRST incomplete TPDU,
  // so under a TPDU flood — where the oldest entries are incomplete —
  // shedding is O(evicted), not O(live table).
  std::uint32_t victim_id = 0;
  if (!tombstones_.empty()) {
    ++stats_.evict_scan_steps;
    victim_id = tombstones_.value(tombstones_.front());
  } else {
    std::int32_t complete_fallback = PickQueue::kNil;
    std::int32_t chosen = PickQueue::kNil;
    for (std::int32_t n = active_.front(); n != PickQueue::kNil;
         n = active_.next(n)) {
      ++stats_.evict_scan_steps;
      const TpduState& st = *tpdus_.find(active_.value(n));
      if (!st.tracker.complete()) {
        chosen = n;
        break;
      }
      if (complete_fallback == PickQueue::kNil) complete_fallback = n;
    }
    if (chosen == PickQueue::kNil) chosen = complete_fallback;
    if (chosen == PickQueue::kNil) return;
    victim_id = active_.value(chosen);
  }
  TpduState& st = *tpdus_.find(victim_id);
  for (const HeldChunk& hc : st.held) {
    drop_unplaced(hc.chunk.payload.size(), /*was_held=*/true);
    ++stats_.held_chunks_evicted;
    stats_.held_bytes_evicted += hc.chunk.payload.size();
    obs_add(m_.held_chunks_evicted);
    obs_add(m_.held_bytes_evicted, hc.chunk.payload.size());
    trace_chunk(TraceEventKind::kChunkEvicted, hc.chunk.h, hc.packet_id, 0);
  }
  ++stats_.tpdus_evicted;
  obs_add(m_.tpdus_evicted);
  span(SpanEventKind::kTpduEvicted, victim_id, 0);
  erase_tpdu_entry(victim_id, st);
}

void ChunkTransportReceiver::erase_tpdu_entry(std::uint32_t tpdu_id,
                                              TpduState& st) {
  if (st.holder_node != PickQueue::kNil) holders_.remove(st.holder_node);
  if (st.order_node != PickQueue::kNil) {
    (st.finished ? tombstones_ : active_).remove(st.order_node);
  }
  tpdus_.erase(tpdu_id);
}

void ChunkTransportReceiver::abort_tpdu(std::uint32_t tpdu_id) {
  // No early-out on a missing context entry: a rejected-then-abandoned
  // TPDU was already erased by try_finish, but its chunks may still sit
  // in the reorder queue below.
  if (TpduState* st = tpdus_.find(tpdu_id)) {
    for (const HeldChunk& hc : st->held) {
      drop_unplaced(hc.chunk.payload.size(), /*was_held=*/true);
    }
    erase_tpdu_entry(tpdu_id, *st);
  }
  if (cfg_.mode != DeliveryMode::kReorder) return;
  // Purge the aborted TPDU's queued chunks (they can never be released
  // in order now), then skip the permanent hole the abort leaves: the
  // sender will not resend this stream range, so anything queued behind
  // it would otherwise wait forever (held-state leak). Placement is
  // position-keyed, so releasing past the hole keeps bytes exact — the
  // same ordering-degradation contract as flush_reorder_queue().
  // Collect first: FlatMap::erase backward-shifts entries, which would
  // derail an in-place iteration.
  std::vector<std::uint64_t> purge;
  for (const auto& e : reorder_queue_) {
    if (e.value.chunk.h.tpdu.id == tpdu_id) purge.push_back(e.key);
  }
  for (const std::uint64_t off : purge) {
    HeldChunk* hc = reorder_queue_.find(off);
    drop_unplaced(hc->chunk.payload.size(), /*was_held=*/true);
    reorder_queue_.erase(off);
  }
  prune_reorder_heap();  // the purged offsets may include the heap top
  if (!reorder_heap_.empty() && next_release_off_ < reorder_heap_.front()) {
    next_release_off_ = reorder_heap_.front();
    release_in_order();
  }
}

std::size_t ChunkTransportReceiver::unfinished_tpdus() const {
  return active_.size();
}

std::vector<std::uint32_t> ChunkTransportReceiver::unfinished_tpdu_ids()
    const {
  std::vector<std::uint32_t> ids;
  ids.reserve(active_.size());
  for (std::int32_t n = active_.front(); n != PickQueue::kNil;
       n = active_.next(n)) {
    ids.push_back(active_.value(n));
  }
  return ids;
}

std::size_t ChunkTransportReceiver::state_bytes() const {
  return tpdus_.memory_bytes() + reorder_queue_.memory_bytes() +
         reorder_heap_.capacity() * sizeof(std::uint64_t) +
         active_.memory_bytes() + tombstones_.memory_bytes() +
         holders_.memory_bytes();
}

}  // namespace chunknet
