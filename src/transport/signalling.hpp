// Connection signalling (paper §2 + Appendix A).
//
// "The beginning of a connection is indicated with a special signaling
// message (connection establishment)" — and Appendix A moves several
// chunk-header fields into signalling: "the value of the SIZE field of
// each chunk TYPE can be carried in the signaling message", and "the
// C.ST bit also could be sent as a signaling message".
//
// SIGNAL chunks (TYPE = kSignal) carry these messages. This module
// defines their payload codecs:
//   - ConnectionOpen: connection id, first C.SN, element SIZE per chunk
//     TYPE (enabling SIZE elision), and whether the sender assigns
//     implicit IDs (enabling the Figure-7 transform) — i.e. the
//     CompressionProfile both ends will use;
//   - ConnectionClose: the signalled C.ST;
//   - GapNak: a selective retransmission request listing the missing
//     (T.SN, length) runs of a TPDU, straight out of the receiver's
//     virtual-reassembly interval set (an extension the paper enables:
//     the tracker knows exactly which elements are missing).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/chunk/compress.hpp"
#include "src/chunk/types.hpp"

namespace chunknet {

enum class SignalKind : std::uint8_t {
  kConnectionOpen = 1,
  kConnectionClose = 2,
  kGapNak = 3,
  kCreditGrant = 4,
  kConnectionRefused = 5,
};

struct ConnectionOpen {
  std::uint32_t connection_id{0};
  std::uint32_t first_conn_sn{0};
  CompressionProfile profile{};

  friend bool operator==(const ConnectionOpen& a, const ConnectionOpen& b) {
    return a.connection_id == b.connection_id &&
           a.first_conn_sn == b.first_conn_sn &&
           a.profile.elide_size == b.profile.elide_size &&
           a.profile.implicit_tid == b.profile.implicit_tid &&
           a.profile.implicit_xid == b.profile.implicit_xid &&
           a.profile.intra_packet_continuation ==
               b.profile.intra_packet_continuation &&
           a.profile.size_by_type == b.profile.size_by_type;
  }
};

struct ConnectionClose {
  std::uint32_t connection_id{0};
  std::uint32_t final_conn_sn{0};  ///< C.SN of the last element

  friend bool operator==(const ConnectionClose&,
                         const ConnectionClose&) = default;
};

/// One missing run of a TPDU, in elements.
struct GapRange {
  std::uint32_t first_sn{0};
  std::uint32_t length{0};

  friend bool operator==(const GapRange&, const GapRange&) = default;
};

struct GapNak {
  std::uint32_t connection_id{0};
  std::uint32_t tpdu_id{0};
  bool need_ed_chunk{false};  ///< the ED control chunk itself is missing
  /// When the TPDU's stop position is unknown (the T.ST chunk was
  /// lost), the receiver cannot enumerate trailing gaps; it asks for
  /// everything from `tail_from` onward instead.
  bool need_tail{false};
  std::uint32_t tail_from{0};
  std::vector<GapRange> gaps;

  friend bool operator==(const GapNak&, const GapNak&) = default;
};

/// The most gap ranges one GapNak can carry on the wire: the signal
/// payload's byte budget is the chunk header's 16-bit SIZE field, and
/// the fixed GapNak fields take 16 of those bytes. make_signal_chunk
/// clamps to this (the NAK is advisory — runs past the clamp are
/// simply re-requested next round) and parse_gap_nak refuses counts
/// the payload cannot actually contain.
inline constexpr std::size_t kMaxGapRanges = (65535 - 16) / 8;

/// A flow-control credit advertisement (receiver → sender). The limit
/// is CUMULATIVE — "you may have admitted up to `credit_limit_bytes` of
/// stream payload since the connection opened" — so a lost grant is
/// simply superseded by the next one (same loss-tolerance trick as a
/// TCP window / SCTP a_rwnd). `grant_seq` orders grants: a sender
/// ignores any grant older than the newest it has applied.
struct CreditGrant {
  std::uint32_t connection_id{0};
  std::uint32_t grant_seq{0};
  std::uint64_t credit_limit_bytes{0};
  std::uint16_t tpdu_slots{0};  ///< max unacknowledged TPDUs in flight

  friend bool operator==(const CreditGrant&, const CreditGrant&) = default;
};

/// Admission-control refusal (endpoint → would-be sender): the governor
/// had no headroom for a new connection. `retry_hint_bytes` tells the
/// peer how much headroom admission would have needed.
struct ConnectionRefused {
  std::uint32_t connection_id{0};
  std::uint64_t retry_hint_bytes{0};

  friend bool operator==(const ConnectionRefused&,
                         const ConnectionRefused&) = default;
};

/// Builds a SIGNAL chunk carrying the given message.
Chunk make_signal_chunk(const ConnectionOpen& open);
Chunk make_signal_chunk(const ConnectionClose& close);
Chunk make_signal_chunk(const GapNak& nak);
Chunk make_signal_chunk(const CreditGrant& grant);
Chunk make_signal_chunk(const ConnectionRefused& refused);

/// Returns the signal kind of a SIGNAL chunk (nullopt if malformed).
std::optional<SignalKind> signal_kind(const Chunk& c);

/// Payload parsers; nullopt on malformed input.
std::optional<ConnectionOpen> parse_connection_open(const Chunk& c);
std::optional<ConnectionClose> parse_connection_close(const Chunk& c);
std::optional<GapNak> parse_gap_nak(const Chunk& c);
std::optional<CreditGrant> parse_credit_grant(const Chunk& c);
std::optional<ConnectionRefused> parse_connection_refused(const Chunk& c);

}  // namespace chunknet
