// The chunk transport sender.
//
// Frames an application stream into chunks (three-level framing of
// Figure 1), computes each TPDU's WSC-2 invariant (Figure 5) and
// attaches it as an ED control chunk (Figure 3), packetizes to the
// first-hop MTU, and handles error control: per-TPDU ACK/NAK plus a
// retransmission timer. Retransmitted data reuses the ORIGINAL
// identifiers (§3.3: "retransmitted data should use the same
// identifiers as the originally transmitted data"), so late duplicates
// of the first transmission are recognized and rejected by the
// receiver's virtual reassembly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include <optional>

#include "src/chunk/builder.hpp"
#include "src/chunk/compress.hpp"
#include "src/chunk/gather.hpp"
#include "src/chunk/packetizer.hpp"
#include "src/common/timer_wheel.hpp"
#include "src/netsim/simulator.hpp"
#include "src/obs/obs.hpp"
#include "src/transport/invariant.hpp"
#include "src/transport/rto.hpp"

namespace chunknet {

struct SenderConfig {
  FramerOptions framer{};
  std::size_t mtu{1500};
  RepackPolicy pack_policy{RepackPolicy::kRepack};
  InvariantConfig invariant{};
  SimTime retransmit_timeout{50 * kMillisecond};
  int max_retransmits{8};
  /// Adaptive RTO (Jacobson/Karn). When `rto.adaptive` is set the
  /// retransmission timer tracks measured RTT instead of the fixed
  /// `retransmit_timeout` (which then only seeds the estimator).
  RtoConfig rto{};
  /// When set, retransmission and zero-credit-probe deadlines are armed
  /// on this shared timer wheel instead of as individual simulator heap
  /// events — at million-flow scale one pump event replaces one heap
  /// node per armed deadline. The wheel must outlive the sender.
  SimTimerWheel* timers{nullptr};
  /// Selective retransmission (extension): honour GapNak signal chunks
  /// by resending ONLY the missing element runs (chunks are cut to the
  /// exact gap boundaries with the Appendix-C split, so the receiver's
  /// duplicate/overlap rejection never discards them). The whole-TPDU
  /// timer remains as a backstop.
  bool selective_retransmit{false};
  /// When set, packets leave in the compact Appendix-A syntax under
  /// this (signalled) profile instead of the canonical fixed-field
  /// syntax. Falls back to canonical per packet if a chunk is not
  /// representable under the profile.
  std::optional<CompressionProfile> compress_wire;
  /// Credit-based end-to-end flow control (docs/ROBUSTNESS.md,
  /// "Overload control"). When enabled, framed TPDUs wait in a send
  /// queue until the receiver's advertised credit (cumulative payload
  /// bytes + open-TPDU slots, carried in CreditGrant signal chunks)
  /// admits them; overload becomes sender-side queueing instead of
  /// receiver-side eviction storms.
  struct FlowControlConfig {
    bool enabled{false};
    /// Credit assumed before the first grant arrives (bootstraps the
    /// connection; one or two TPDUs' worth is typical).
    std::uint64_t initial_credit_bytes{16 * 1024};
    std::uint16_t initial_tpdu_slots{2};
    /// Zero-credit probe: blocked this long with no admission progress,
    /// the sender forces ONE TPDU through and halves its slot estimate
    /// — the decay that keeps a connection live when every grant since
    /// the last one was lost. Armed only while blocked, so an idle
    /// sender schedules nothing.
    SimTime probe_timeout{200 * kMillisecond};
  };
  FlowControlConfig flow{};
  /// Gather-encode transmit path (src/chunk/gather.hpp): packets are
  /// assembled iovec-style, borrowing payload bytes from the pending
  /// TPDU store, so transmission — and in particular RETRANSMISSION —
  /// copies zero payload bytes on the sender (stats().tx_bytes_copied
  /// stays flat; linearization is the NIC DMA analogue and is not
  /// charged). Automatically falls back to the materializing path for
  /// kReassemble packing and compressed wire syntax, which both
  /// re-encode payload bytes by nature.
  bool gather_tx{true};
  /// Transmit a packet body into the network (first hop). Bodies are
  /// PacketBytes (64-byte aligned) so pooled/gathered packets travel
  /// without re-copying.
  std::function<void(PacketBytes)> send_packet;
  /// Observability (optional). Metric names are prefixed "sender.".
  ObsContext* obs{nullptr};
  std::uint16_t obs_site{0};
};

class ChunkTransportSender final : public PacketSink {
 public:
  ChunkTransportSender(Simulator& sim, SenderConfig cfg);

  /// Frames and transmits the whole stream (length must be a multiple
  /// of the framer element size). May be called once per connection.
  void send_stream(std::span<const std::uint8_t> stream);

  /// Feedback channel: ACK/NAK chunks arrive here.
  void on_packet(SimPacket pkt) override;

  /// Every TPDU was positively acknowledged. A transfer that gave up
  /// on a TPDU also drains `outstanding_`, so this is NOT merely
  /// "nothing left to send" — see finished()/failed().
  bool all_acked() const { return finished() && !failed(); }
  /// The sender has no more work (every TPDU was acked OR abandoned).
  bool finished() const { return outstanding_.empty() && started_; }
  /// At least one TPDU was abandoned after max_retransmits.
  bool failed() const { return stats_.gave_up > 0; }

  const RtoEstimator& rto() const { return rto_; }

  /// Gives up on EVERY still-outstanding TPDU right now (drain path:
  /// the runtime is shutting down and will not wait out more RTO
  /// cycles). Each abandoned TPDU is accounted exactly like a
  /// max-retransmits give-up — stats().gave_up, the kTpduGaveUp span,
  /// gave_up_tpdus() — so delivery accounting stays truthful. Returns
  /// the number abandoned.
  std::size_t abandon_outstanding();

  /// TPDU ids abandoned after max_retransmits, in give-up order. The
  /// chaos conservation/leak oracles use this to tell the receiver to
  /// abort matching held state and to exclude these TPDUs from the
  /// truthful-delivery check.
  const std::vector<std::uint32_t>& gave_up_tpdus() const {
    return gave_up_ids_;
  }

  struct Stats {
    std::uint64_t tpdus_sent{0};
    std::uint64_t tpdus_acked{0};
    std::uint64_t retransmissions{0};
    std::uint64_t naks{0};
    std::uint64_t gave_up{0};
    std::uint64_t packets_sent{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t gap_naks_honoured{0};
    std::uint64_t selective_retx_elements{0};
    std::uint64_t retx_payload_bytes{0};  ///< payload resent (any kind)
    /// Payload bytes COPIED during sender-side packet assembly (the
    /// materializing encode path). Zero on the gather path — the
    /// zero-copy proof the lossy-link retransmission test pins.
    std::uint64_t tx_bytes_copied{0};
    /// Payload bytes transmitted by reference through gather segments
    /// (the bytes that would have been copied without the gather path).
    std::uint64_t tx_gather_bytes{0};
    /// Adaptive-RTO bookkeeping: RTT samples fed to the estimator,
    /// samples discarded by Karn's rule, and timeout backoffs.
    std::uint64_t rto_samples{0};
    std::uint64_t rto_discarded{0};
    std::uint64_t rto_backoffs{0};
    /// Flow control: grants applied, blocked episodes, zero-credit
    /// probes fired, and multiplicative backoffs on shrinking grants.
    std::uint64_t credit_grants{0};
    std::uint64_t flow_blocked{0};
    std::uint64_t zero_credit_probes{0};
    std::uint64_t flow_backoffs{0};
  };
  const Stats& stats() const { return stats_; }

  /// Flow-control introspection (tests + benches).
  std::size_t flow_queued() const { return send_queue_.size(); }
  std::size_t flow_inflight() const { return inflight_; }
  std::uint64_t credit_limit() const { return credit_limit_; }
  std::uint64_t credit_consumed() const { return credit_consumed_; }
  std::uint16_t flow_slots() const { return slots_; }

 private:
  struct PendingTpdu {
    std::vector<Chunk> chunks;  ///< data chunks + ED chunk, original IDs
    int attempts{0};
    SimTime last_sent{0};
    /// Any part of this TPDU was ever resent (timer or GapNak slice):
    /// an ACK can no longer be matched to one transmission, so Karn's
    /// rule discards its RTT sample.
    bool retransmitted{false};
    /// Flow control: past the credit gate (transmitted at least once).
    bool admitted{false};
    std::uint64_t payload_bytes{0};  ///< data payload (credit currency)
  };

  void transmit_tpdu(std::uint32_t tpdu_id, PendingTpdu& p);
  void arm_timer(std::uint32_t tpdu_id);
  /// Routes a deadline to the shared wheel when configured, else to the
  /// simulator's event heap.
  void schedule_after(SimTime delay, std::function<void()> cb);
  void handle_gap_nak(const Chunk& signal);
  void handle_credit_grant(const Chunk& signal);
  /// Admits queued TPDUs while credit and slots allow; arms the
  /// zero-credit probe if the queue stays blocked.
  void pump_queue();
  void admit_tpdu(std::uint32_t tpdu_id, PendingTpdu& p);
  void arm_probe();
  /// An admitted TPDU left outstanding_ (acked or abandoned).
  void on_tpdu_retired(const PendingTpdu& p);
  void publish_flow_gauges();
  void send_chunks(std::vector<Chunk> chunks);
  /// The zero-copy transmit: gather-packetizes views over chunks owned
  /// by the pending store and hands linearized bodies to send_packet.
  void send_chunk_views(std::span<const ChunkView> views);
  /// True when this sender's configuration can use the gather path.
  bool use_gather() const {
    return cfg_.gather_tx && !cfg_.compress_wire &&
           gather_supported(cfg_.pack_policy);
  }
  void trace_chunk(TraceEventKind kind, const ChunkHeader& h,
                   std::uint64_t aux = 0) const;
  void span(SpanEventKind kind, std::uint32_t tpdu_id,
            std::uint64_t aux = 0) const;

  struct ObsHandles {
    Counter* tpdus_sent{nullptr};
    Counter* tpdus_acked{nullptr};
    Counter* retransmissions{nullptr};
    Counter* naks{nullptr};
    Counter* gave_up{nullptr};
    Counter* packets_sent{nullptr};
    Counter* bytes_sent{nullptr};
    Counter* gap_naks_honoured{nullptr};
    Counter* retx_payload_bytes{nullptr};
    Counter* tx_bytes_copied{nullptr};
    Counter* tx_gather_bytes{nullptr};
    Counter* rto_samples{nullptr};
    Counter* rto_discarded{nullptr};
    Counter* rto_backoffs{nullptr};
    Counter* credit_grants{nullptr};
    Counter* flow_blocked{nullptr};
    Counter* zero_credit_probes{nullptr};
    Counter* flow_backoffs{nullptr};
    Gauge* credit_window{nullptr};
    Gauge* inflight_tpdus{nullptr};
  };

  Simulator& sim_;
  SenderConfig cfg_;
  RtoEstimator rto_;
  ObsHandles m_;
  SpanRecorder* spans_{nullptr};  ///< resolved once; hot path
  std::map<std::uint32_t, PendingTpdu> outstanding_;
  std::vector<std::uint32_t> gave_up_ids_;
  bool started_{false};
  Stats stats_;

  // Flow-control state (only mutated when cfg_.flow.enabled).
  std::deque<std::uint32_t> send_queue_;
  std::uint64_t credit_limit_{0};     ///< cumulative admit budget (bytes)
  std::uint64_t credit_consumed_{0};  ///< payload bytes admitted so far
  std::uint16_t slots_{0};            ///< open-TPDU window
  std::size_t inflight_{0};           ///< admitted and not yet retired
  std::uint32_t grant_seq_seen_{0};
  bool any_grant_{false};
  bool blocked_{false};
  std::uint64_t admit_epoch_{0};  ///< bumps on every admission
  bool probe_armed_{false};
};

}  // namespace chunknet
