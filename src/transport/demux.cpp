#include "src/transport/demux.hpp"

#include <string>

#include "src/chunk/codec.hpp"

namespace chunknet {

namespace {
std::uint32_t round_up_pow2(std::uint32_t v) {
  if (v <= 1) return 1;
  --v;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}
}  // namespace

ChunkDemultiplexer::ChunkDemultiplexer(DemuxConfig cfg) : cfg_(std::move(cfg)) {
  const std::uint32_t n = round_up_pow2(cfg_.shards == 0 ? 1 : cfg_.shards);
  int bits = 0;
  while ((1u << bits) < n) ++bits;
  shard_shift_ = bits == 0 ? 32 : 64 - bits;
  shards_.resize(n);
}

ChunkDemultiplexer::~ChunkDemultiplexer() {
  // Hand every shard's outstanding lease reserve back to the governor
  // (covers both unconsumed lease slots and still-attached flows).
  if (admission_.governor != nullptr) {
    for (Shard& sh : shards_) {
      if (sh.lease_bytes > 0) {
        admission_.governor->release_admission_lease(lease_id(sh),
                                                     sh.lease_bytes);
      }
    }
  }
  if (cfg_.timers != nullptr) {
    for (Shard& sh : shards_) {
      if (sh.idle_timer != 0) cfg_.timers->cancel(sh.idle_timer);
      if (sh.refused_timer != 0) cfg_.timers->cancel(sh.refused_timer);
    }
  }
}

std::uint32_t ChunkDemultiplexer::lease_id(const Shard& sh) const {
  return admission_.lease_client_base +
         static_cast<std::uint32_t>(&sh - shards_.data());
}

SimTime ChunkDemultiplexer::now() const {
  if (cfg_.timers != nullptr) return cfg_.timers->sim().now();
  return sim_ != nullptr ? sim_->now() : 0;
}

void ChunkDemultiplexer::set_obs(ObsContext* obs, Simulator* sim) {
  obs_ = obs;
  sim_ = sim;
  if (obs_ != nullptr && obs_->metrics != nullptr) {
    MetricsRegistry& m = *obs_->metrics;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::string base = "demux.shard" + std::to_string(i) + ".";
      shards_[i].c_data_routed = &m.counter(base + "data_chunks");
      shards_[i].c_admitted = &m.counter(base + "admitted");
      shards_[i].c_refused = &m.counter(base + "refused");
    }
  }
}

void ChunkDemultiplexer::span(SpanEventKind kind,
                              std::uint32_t connection_id,
                              std::uint64_t aux) const {
  if (obs_ == nullptr || obs_->spans == nullptr) return;
  SpanEvent e;
  e.t = now();
  e.kind = kind;
  e.connection_id = connection_id;
  e.aux = aux;
  obs_->spans->record(e);
}

const ChunkDemultiplexer::Stats& ChunkDemultiplexer::stats() const {
  agg_ = Stats{};
  agg_.packets = packets_;
  agg_.malformed = malformed_;
  agg_.control_chunks_routed = control_chunks_routed_;
  for (const Shard& sh : shards_) {
    agg_.data_chunks_routed += sh.stats.data_chunks_routed;
    agg_.unknown_connection += sh.stats.unknown_connection;
    agg_.connections_admitted += sh.stats.connections_admitted;
    agg_.connections_refused += sh.stats.connections_refused;
    agg_.refused_expired += sh.stats.refused_expired;
    agg_.idle_evicted += sh.stats.idle_evicted;
    agg_.lease_acquires += sh.stats.lease_acquires;
  }
  return agg_;
}

std::size_t ChunkDemultiplexer::flows() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.flows.size();
  return n;
}

std::size_t ChunkDemultiplexer::refused_size() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.refused.size();
  return n;
}

std::size_t ChunkDemultiplexer::state_bytes() const {
  std::size_t n = sizeof(*this) + shards_.capacity() * sizeof(Shard);
  for (const Shard& sh : shards_) {
    n += sh.flows.memory_bytes() + sh.refused.memory_bytes() +
         sh.idle_lru.memory_bytes() + sh.refused_fifo.memory_bytes();
  }
  return n;
}

// ---------------------------------------------------------------- flows

void ChunkDemultiplexer::insert_flow(Shard& sh, std::uint32_t connection_id,
                                     ChunkTransportReceiver* rx, bool leased) {
  auto [f, inserted] = sh.flows.try_emplace(connection_id);
  f->rx = rx;
  f->leased = f->leased || leased;
  f->last_activity = now();
  if (cfg_.idle_timeout > 0 && cfg_.timers != nullptr) {
    if (inserted || f->idle_node == PickQueue::kNil) {
      f->idle_node = sh.idle_lru.push_back(connection_id);
    } else {
      sh.idle_lru.touch(f->idle_node);
    }
    arm_idle_timer(sh);
  }
}

void ChunkDemultiplexer::remove_flow(Shard& sh, std::uint32_t connection_id,
                                     FlowEntry& f) {
  if (f.idle_node != PickQueue::kNil) sh.idle_lru.remove(f.idle_node);
  if (f.leased && admission_.governor != nullptr) {
    // The flow's slice of the shard lease goes back to the governor so
    // `reserved_now` keeps tracking live admissions, not table size.
    const std::uint64_t give =
        std::min<std::uint64_t>(sh.lease_bytes, admission_.reserve_bytes);
    if (give > 0) {
      admission_.governor->release_admission_lease(lease_id(sh), give);
      sh.lease_bytes -= give;
    }
  }
  sh.flows.erase(connection_id);
}

void ChunkDemultiplexer::attach(std::uint32_t connection_id,
                                ChunkTransportReceiver& receiver) {
  insert_flow(shard_for(connection_id), connection_id, &receiver, false);
}

void ChunkDemultiplexer::detach(std::uint32_t connection_id) {
  Shard& sh = shard_for(connection_id);
  FlowEntry* f = sh.flows.find(connection_id);
  if (f == nullptr) return;
  remove_flow(sh, connection_id, *f);
}

// ------------------------------------------------------------- deadlines

void ChunkDemultiplexer::arm_idle_timer(Shard& sh) {
  if (cfg_.timers == nullptr || cfg_.idle_timeout == 0) return;
  if (sh.idle_timer != 0 || sh.idle_lru.empty()) return;
  const std::uint32_t front_id = sh.idle_lru.value(sh.idle_lru.front());
  const FlowEntry* f = sh.flows.find(front_id);
  if (f == nullptr) return;  // unreachable: LRU mirrors the flow table
  sh.idle_timer = cfg_.timers->arm(f->last_activity + cfg_.idle_timeout,
                                   [this, &sh] { fire_idle(sh); });
}

void ChunkDemultiplexer::fire_idle(Shard& sh) {
  sh.idle_timer = 0;
  const SimTime t = now();
  // Touched flows moved towards the back, so expiry is checked only at
  // the LRU head: O(evicted), never O(live). A head that was touched
  // since the timer was armed just re-arms for its new deadline.
  while (!sh.idle_lru.empty()) {
    const std::uint32_t id = sh.idle_lru.value(sh.idle_lru.front());
    FlowEntry* f = sh.flows.find(id);
    if (f == nullptr || f->last_activity + cfg_.idle_timeout > t) break;
    ChunkTransportReceiver* rx = f->rx;
    const SimTime idle_ns = t - f->last_activity;
    remove_flow(sh, id, *f);
    ++sh.stats.idle_evicted;
    span(SpanEventKind::kConnIdleEvicted, id, idle_ns);
    if (cfg_.on_idle_evict) cfg_.on_idle_evict(id, rx);
  }
  arm_idle_timer(sh);
}

void ChunkDemultiplexer::arm_refused_timer(Shard& sh) {
  if (cfg_.timers == nullptr || cfg_.refused_ttl == 0) return;
  if (sh.refused_timer != 0 || sh.refused_fifo.empty()) return;
  const std::uint32_t front_id =
      sh.refused_fifo.value(sh.refused_fifo.front());
  const RefusedEntry* re = sh.refused.find(front_id);
  if (re == nullptr) return;
  sh.refused_timer =
      cfg_.timers->arm(re->expires, [this, &sh] { fire_refused(sh); });
}

void ChunkDemultiplexer::fire_refused(Shard& sh) {
  sh.refused_timer = 0;
  const SimTime t = now();
  // TTL is constant, so FIFO order == expiry order: only the head can
  // be due.
  while (!sh.refused_fifo.empty()) {
    const std::uint32_t id = sh.refused_fifo.value(sh.refused_fifo.front());
    RefusedEntry* re = sh.refused.find(id);
    if (re == nullptr) {  // unreachable: FIFO mirrors the refused map
      sh.refused_fifo.remove(sh.refused_fifo.front());
      continue;
    }
    if (re->expires > t) break;
    sh.refused_fifo.remove(re->node);
    sh.refused.erase(id);
    ++sh.stats.refused_expired;
  }
  arm_refused_timer(sh);
}

// ------------------------------------------------------------- admission

bool ChunkDemultiplexer::admit(Shard& sh, std::uint32_t connection_id) {
  bool admitted = true;
  if (admission_.governor != nullptr) {
    if (admission_.lease_batch > 0) {
      if (sh.lease_slots == 0) {
        // Refill: one governor transaction buys lease_batch local
        // admissions. Fall back to a single-slot lease under memory
        // pressure so batching never refuses a connection the legacy
        // path would have admitted.
        std::uint32_t batch = admission_.lease_batch;
        ++sh.stats.lease_acquires;
        if (!admission_.governor->acquire_admission_lease(
                lease_id(sh), batch * admission_.reserve_bytes)) {
          batch = 1;
          ++sh.stats.lease_acquires;
          if (!admission_.governor->acquire_admission_lease(
                  lease_id(sh), admission_.reserve_bytes)) {
            batch = 0;
          }
        }
        sh.lease_slots = batch;
        sh.lease_bytes +=
            static_cast<std::uint64_t>(batch) * admission_.reserve_bytes;
      }
      if (sh.lease_slots > 0) {
        --sh.lease_slots;  // shard-local admit: no governor traffic
      } else {
        admitted = false;
      }
    } else {
      admitted = admission_.governor->try_admit(
          connection_id, admission_.reserve_bytes, admission_.priority);
    }
  }
  if (!admitted) {
    ++sh.stats.connections_refused;
    obs_add(sh.c_refused);
    span(SpanEventKind::kConnRefused, connection_id,
         admission_.reserve_bytes);
    return false;
  }
  ++sh.stats.connections_admitted;
  obs_add(sh.c_admitted);
  span(SpanEventKind::kConnAdmitted, connection_id,
       admission_.reserve_bytes);
  return true;
}

bool ChunkDemultiplexer::try_admit(std::uint32_t connection_id) {
  return admit(shard_for(connection_id), connection_id);
}

void ChunkDemultiplexer::note_refused(Shard& sh,
                                      std::uint32_t connection_id) {
  // Bounded by construction: FIFO-evict the oldest remembered refusal
  // at the cap (it simply gets re-refused if it retries), and TTL-evict
  // from the timer wheel when one is available.
  while (sh.refused.size() >= cfg_.max_refused && !sh.refused_fifo.empty()) {
    const std::uint32_t old = sh.refused_fifo.value(sh.refused_fifo.front());
    sh.refused_fifo.remove(sh.refused_fifo.front());
    sh.refused.erase(old);
    ++sh.stats.refused_expired;
  }
  auto [re, inserted] = sh.refused.try_emplace(connection_id);
  re->expires = now() + cfg_.refused_ttl;
  if (inserted) {
    re->node = sh.refused_fifo.push_back(connection_id);
  } else if (re->node != PickQueue::kNil) {
    sh.refused_fifo.touch(re->node);  // refreshed refusal: new deadline
  }
  arm_refused_timer(sh);
}

void ChunkDemultiplexer::handle_connection_open(const ChunkView& v) {
  const Chunk c = v.to_chunk();
  const auto open = parse_connection_open(c);
  if (!open) return;
  span(SpanEventKind::kConnOpenSeen, open->connection_id);
  Shard& sh = shard_for(open->connection_id);
  if (sh.flows.contains(open->connection_id)) return;  // established
  if (RefusedEntry* re = sh.refused.find(open->connection_id)) {
    if (cfg_.timers == nullptr || re->expires > now()) {
      return;  // already told no, hint still fresh
    }
    // The retry-hint deadline passed but the wheel has not swept yet:
    // forget the stale refusal and re-evaluate.
    sh.refused_fifo.remove(re->node);
    sh.refused.erase(open->connection_id);
    ++sh.stats.refused_expired;
  }
  const bool leased =
      admission_.governor != nullptr && admission_.lease_batch > 0;
  bool admitted = admit(sh, open->connection_id);
  ChunkTransportReceiver* r = nullptr;
  if (admitted) {
    r = admission_.open_connection(*open);
    if (r == nullptr) {
      // The endpoint declined even with governor headroom; hand the
      // reservation back so it does not leak.
      if (admission_.governor != nullptr) {
        if (leased) {
          ++sh.lease_slots;  // slot back into the shard-local pool
        } else {
          admission_.governor->unbind_client(open->connection_id);
        }
      }
      --sh.stats.connections_admitted;
      ++sh.stats.connections_refused;
      span(SpanEventKind::kConnRefused, open->connection_id, 0);
      admitted = false;
    }
  }
  if (!admitted) {
    note_refused(sh, open->connection_id);
    if (admission_.send_refusal) {
      ConnectionRefused refusal;
      refusal.connection_id = open->connection_id;
      refusal.retry_hint_bytes = admission_.reserve_bytes;
      admission_.send_refusal(make_signal_chunk(refusal));
    }
    return;
  }
  insert_flow(sh, open->connection_id, r, leased);
}

// ------------------------------------------------------------ data path

void ChunkDemultiplexer::on_packet(SimPacket pkt) {
  ++packets_;
  // The envelope is opened ONCE, into views over pkt.bytes: routing a
  // data/ED chunk to its receiver copies nothing — the receiver's
  // zero-copy entry point reads the payload straight from the packet
  // buffer. Only control chunks (re-wrapped for the PacketSink
  // interface) are materialized.
  if (!decode_packet_views(pkt.bytes, view_scratch_)) {
    ++malformed_;
    return;
  }
  const bool track_idle = cfg_.idle_timeout > 0 && cfg_.timers != nullptr;
  for (const ChunkView& v : view_scratch_) {
    switch (v.h.type) {
      case ChunkType::kData:
      case ChunkType::kErrorDetection: {
        Shard& sh = shard_for(v.h.conn.id);
        FlowEntry* f = sh.flows.find(v.h.conn.id);
        if (f == nullptr) {
          ++sh.stats.unknown_connection;
          break;
        }
        ++sh.stats.data_chunks_routed;
        obs_add(sh.c_data_routed);
        ChunkTransportReceiver* rx = f->rx;
        if (track_idle) {
          // LRU touch is two link splices; done BEFORE the receiver
          // runs, since its callbacks may detach flows and invalidate
          // the FlatMap entry pointer.
          f->last_activity = pkt.created_at > now() ? pkt.created_at : now();
          sh.idle_lru.touch(f->idle_node);
        }
        rx->on_chunk_view(v, pkt.created_at, pkt.id);
        break;
      }
      case ChunkType::kAck:
      case ChunkType::kSignal: {
        if (v.h.type == ChunkType::kSignal && admission_.open_connection &&
            v.payload.size() >= 1 &&
            v.payload[0] ==
                static_cast<std::uint8_t>(SignalKind::kConnectionOpen)) {
          handle_connection_open(v);
        }
        if (control_ == nullptr) break;
        ++control_chunks_routed_;
        SimPacket wrapped;
        encode_packet_into(std::vector<Chunk>{v.to_chunk()}, 65535,
                           wrapped.bytes);
        wrapped.id = pkt.id;
        wrapped.created_at = pkt.created_at;
        wrapped.hops = pkt.hops;
        control_->on_packet(std::move(wrapped));
        break;
      }
      default:
        break;
    }
  }
  view_scratch_.clear();
}

}  // namespace chunknet
