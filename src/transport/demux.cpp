#include "src/transport/demux.hpp"

#include "src/chunk/codec.hpp"

namespace chunknet {

void ChunkDemultiplexer::on_packet(SimPacket pkt) {
  ++stats_.packets;
  ParsedPacket parsed = decode_packet(pkt.bytes);
  if (!parsed.ok) {
    ++stats_.malformed;
    return;
  }
  for (Chunk& c : parsed.chunks) {
    switch (c.h.type) {
      case ChunkType::kData:
      case ChunkType::kErrorDetection: {
        const auto it = receivers_.find(c.h.conn.id);
        if (it == receivers_.end()) {
          ++stats_.unknown_connection;
          break;
        }
        ++stats_.data_chunks_routed;
        it->second->on_chunk(std::move(c), pkt.created_at, pkt.id);
        break;
      }
      case ChunkType::kAck:
      case ChunkType::kSignal: {
        if (control_ == nullptr) break;
        ++stats_.control_chunks_routed;
        SimPacket wrapped;
        wrapped.bytes =
            encode_packet(std::vector<Chunk>{std::move(c)}, 65535);
        wrapped.id = pkt.id;
        wrapped.created_at = pkt.created_at;
        wrapped.hops = pkt.hops;
        control_->on_packet(std::move(wrapped));
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace chunknet
