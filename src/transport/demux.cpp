#include "src/transport/demux.hpp"

#include "src/chunk/codec.hpp"

namespace chunknet {

void ChunkDemultiplexer::on_packet(SimPacket pkt) {
  ++stats_.packets;
  // The envelope is opened ONCE, into views over pkt.bytes: routing a
  // data/ED chunk to its receiver copies nothing — the receiver's
  // zero-copy entry point reads the payload straight from the packet
  // buffer. Only control chunks (re-wrapped for the PacketSink
  // interface) are materialized.
  if (!decode_packet_views(pkt.bytes, view_scratch_)) {
    ++stats_.malformed;
    return;
  }
  for (const ChunkView& v : view_scratch_) {
    switch (v.h.type) {
      case ChunkType::kData:
      case ChunkType::kErrorDetection: {
        const auto it = receivers_.find(v.h.conn.id);
        if (it == receivers_.end()) {
          ++stats_.unknown_connection;
          break;
        }
        ++stats_.data_chunks_routed;
        it->second->on_chunk_view(v, pkt.created_at, pkt.id);
        break;
      }
      case ChunkType::kAck:
      case ChunkType::kSignal: {
        if (control_ == nullptr) break;
        ++stats_.control_chunks_routed;
        SimPacket wrapped;
        encode_packet_into(std::vector<Chunk>{v.to_chunk()}, 65535,
                           wrapped.bytes);
        wrapped.id = pkt.id;
        wrapped.created_at = pkt.created_at;
        wrapped.hops = pkt.hops;
        control_->on_packet(std::move(wrapped));
        break;
      }
      default:
        break;
    }
  }
  view_scratch_.clear();
}

}  // namespace chunknet
