#include "src/transport/demux.hpp"

#include "src/chunk/codec.hpp"

namespace chunknet {

void ChunkDemultiplexer::span(SpanEventKind kind,
                              std::uint32_t connection_id,
                              std::uint64_t aux) const {
  if (obs_ == nullptr || obs_->spans == nullptr || sim_ == nullptr) return;
  SpanEvent e;
  e.t = sim_->now();
  e.kind = kind;
  e.connection_id = connection_id;
  e.aux = aux;
  obs_->spans->record(e);
}

bool ChunkDemultiplexer::try_admit(std::uint32_t connection_id) {
  if (admission_.governor != nullptr &&
      !admission_.governor->try_admit(connection_id,
                                      admission_.reserve_bytes,
                                      admission_.priority)) {
    ++stats_.connections_refused;
    span(SpanEventKind::kConnRefused, connection_id,
         admission_.reserve_bytes);
    return false;
  }
  ++stats_.connections_admitted;
  span(SpanEventKind::kConnAdmitted, connection_id,
       admission_.reserve_bytes);
  return true;
}

void ChunkDemultiplexer::handle_connection_open(const ChunkView& v) {
  const Chunk c = v.to_chunk();
  const auto open = parse_connection_open(c);
  if (!open) return;
  span(SpanEventKind::kConnOpenSeen, open->connection_id);
  if (receivers_.count(open->connection_id) != 0) return;  // established
  if (refused_.count(open->connection_id) != 0) return;    // already told no
  bool admitted = try_admit(open->connection_id);
  ChunkTransportReceiver* r = nullptr;
  if (admitted) {
    r = admission_.open_connection(*open);
    if (r == nullptr) {
      // The endpoint declined even with governor headroom; hand the
      // reservation back so it does not leak.
      if (admission_.governor != nullptr) {
        admission_.governor->unbind_client(open->connection_id);
      }
      --stats_.connections_admitted;
      ++stats_.connections_refused;
      span(SpanEventKind::kConnRefused, open->connection_id, 0);
      admitted = false;
    }
  }
  if (!admitted) {
    refused_[open->connection_id] = true;
    if (admission_.send_refusal) {
      ConnectionRefused refusal;
      refusal.connection_id = open->connection_id;
      refusal.retry_hint_bytes = admission_.reserve_bytes;
      admission_.send_refusal(make_signal_chunk(refusal));
    }
    return;
  }
  receivers_[open->connection_id] = r;
}

void ChunkDemultiplexer::on_packet(SimPacket pkt) {
  ++stats_.packets;
  // The envelope is opened ONCE, into views over pkt.bytes: routing a
  // data/ED chunk to its receiver copies nothing — the receiver's
  // zero-copy entry point reads the payload straight from the packet
  // buffer. Only control chunks (re-wrapped for the PacketSink
  // interface) are materialized.
  if (!decode_packet_views(pkt.bytes, view_scratch_)) {
    ++stats_.malformed;
    return;
  }
  for (const ChunkView& v : view_scratch_) {
    switch (v.h.type) {
      case ChunkType::kData:
      case ChunkType::kErrorDetection: {
        const auto it = receivers_.find(v.h.conn.id);
        if (it == receivers_.end()) {
          ++stats_.unknown_connection;
          break;
        }
        ++stats_.data_chunks_routed;
        it->second->on_chunk_view(v, pkt.created_at, pkt.id);
        break;
      }
      case ChunkType::kAck:
      case ChunkType::kSignal: {
        if (v.h.type == ChunkType::kSignal && admission_.open_connection &&
            v.payload.size() >= 1 &&
            v.payload[0] ==
                static_cast<std::uint8_t>(SignalKind::kConnectionOpen)) {
          handle_connection_open(v);
        }
        if (control_ == nullptr) break;
        ++stats_.control_chunks_routed;
        SimPacket wrapped;
        encode_packet_into(std::vector<Chunk>{v.to_chunk()}, 65535,
                           wrapped.bytes);
        wrapped.id = pkt.id;
        wrapped.created_at = pkt.created_at;
        wrapped.hops = pkt.hops;
        control_->on_packet(std::move(wrapped));
        break;
      }
      default:
        break;
    }
  }
  view_scratch_.clear();
}

}  // namespace chunknet
