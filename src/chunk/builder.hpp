// Building chunks from an application data stream (paper §2, Figures
// 1 and 2): one stream, three simultaneous framings.
//
// The connection is "a single, large PDU" whose SN counts every data
// element since connection establishment. The stream is additionally
// divided into transport PDUs (the unit of error control) and into
// external PDUs (Application Layer Frames) — *independently*: as in
// Figure 1, a single element can sit in the middle of one framing and
// at the boundary of another. The framer emits a new chunk whenever any
// framing ID changes, and caps chunk length so benches can explore the
// chunk-size / header-overhead trade-off.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/chunk/types.hpp"
#include "src/edc/wsc2.hpp"

namespace chunknet {

struct FramerOptions {
  std::uint32_t connection_id{1};
  std::uint16_t element_size{4};      ///< SIZE: bytes per atomic element
  std::uint32_t tpdu_elements{2048};  ///< elements per transport PDU
  std::uint32_t xpdu_elements{512};   ///< elements per external PDU (used
                                      ///< when xpdu_boundaries is empty)
  std::vector<std::uint32_t> xpdu_boundaries;  ///< explicit X-PDU lengths
                                               ///< (elements), cycled
  std::uint16_t max_chunk_elements{0};  ///< 0 = unlimited (chunk per framing run)
  std::uint32_t first_conn_sn{0};     ///< C.SN of the first element
  std::uint32_t first_tpdu_id{1};
  std::uint32_t first_xpdu_id{1};
  /// Assign T.ID = C.SN − T.SN so the implicit-ID transform of
  /// Appendix A / Figure 7 applies. X.IDs are assigned the same way.
  bool implicit_ids{false};
  bool final_element_ends_connection{true};  ///< set C.ST on last element
};

/// Splits a byte stream into data chunks under the three-level framing.
/// The stream length must be a multiple of element_size.
std::vector<Chunk> frame_stream(std::span<const std::uint8_t> stream,
                                const FramerOptions& opts);

/// Groups chunks by T.ID (in first-seen order); used by senders that
/// emit one ED chunk per TPDU and by tests.
std::vector<std::vector<Chunk>> group_by_tpdu(std::vector<Chunk> chunks);

/// Builds the TPDU error-detection control chunk (TYPE = ED, Figure 3):
/// payload is the 8-byte WSC-2 code (P0 ‖ P1). The chunk inherits the
/// connection/TPDU identity of the TPDU it covers.
Chunk make_ed_chunk(std::uint32_t connection_id, std::uint32_t tpdu_id,
                    std::uint32_t conn_sn_of_tpdu, const Wsc2Code& code);

/// Extracts the WSC-2 code from an ED chunk payload (8 bytes; anything
/// else yields the zero code). The span form reads in place, so the
/// zero-copy receive path can parse straight from the packet buffer.
Wsc2Code parse_ed_chunk(std::span<const std::uint8_t> payload);
inline Wsc2Code parse_ed_chunk(const Chunk& ed) {
  return parse_ed_chunk(std::span<const std::uint8_t>{ed.payload});
}
inline Wsc2Code parse_ed_chunk(const ChunkView& ed) {
  return parse_ed_chunk(ed.payload);
}

/// Builds a per-TPDU acknowledgement control chunk (TYPE = ACK).
/// `positive` false means NAK (retransmission request).
Chunk make_ack_chunk(std::uint32_t connection_id, std::uint32_t tpdu_id,
                     bool positive);

struct AckInfo {
  std::uint32_t tpdu_id{0};
  bool positive{true};
};
AckInfo parse_ack_chunk(const Chunk& ack);

}  // namespace chunknet
