// Chunk reassembly — the paper's Appendix D algorithm.
//
// Two chunks are *eligible* for merging when they agree on TYPE, SIZE
// and all three IDs, and the second chunk's SNs continue the first's in
// every framing tuple (first.sn + first.len == second.sn for C, T and
// X simultaneously). The merged chunk takes the head's SNs and the
// tail's ST bits. Merging is optional everywhere — an intermediate
// system may merge (Figure 4 method 3), repack without merging
// (method 2), or do nothing — and the receiver's processing is
// identical in all cases. "Chunks can be reassembled efficiently in
// one step, regardless of how many times they've been fragmented."
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/chunk/types.hpp"

namespace chunknet {

/// True iff b directly continues a (Appendix D eligibility predicate).
bool mergeable(const Chunk& a, const Chunk& b);

/// Merges two eligible chunks. Returns nullopt (and leaves inputs
/// untouched) when not eligible or when the merged LEN would overflow
/// its 16-bit field.
std::optional<Chunk> merge_chunks(const Chunk& a, const Chunk& b);

/// Repeatedly merges every eligible adjacent pair in an arbitrarily
/// ordered collection of chunks, in a single pass over a sort order —
/// the "one-step reassembly" of §3.1. Non-data chunks and chunks from
/// unrelated PDUs pass through untouched. The relative order of
/// unmergeable chunks is not preserved (chunks are order-free by
/// construction).
std::vector<Chunk> coalesce(std::vector<Chunk> chunks);

}  // namespace chunknet
