// Core chunk data model (paper §2, Figure 2).
//
// A chunk is a completely self-describing piece of a PDU: a group of
// data elements with contiguous sequence numbers that share one TYPE
// and one set of framing IDs, under a single header. The header carries
// the three (ID, SN, ST) framing tuples of the paper's example
// communication system:
//
//   C.*  the connection   — the whole conversation treated as one
//        large PDU (one unmultiplexed application-to-application
//        stream, [FELD 90]);
//   T.*  the transport PDU — the unit of error control;
//   X.*  the external PDU  — any PDU of importance above transport,
//        e.g. an Application Layer Frame [CLAR 90].
//
// SN fields count data *elements* (units of SIZE bytes), not bytes:
// SIZE is the atomic unit of protocol data processing that
// fragmentation must never split (e.g. a cipher block). ST is the
// "STop" bit marking the final element of the respective PDU; inside a
// chunk only the last element can carry ST bits, so the header stores
// them once.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace chunknet {

/// One (ID, SN, ST) framing tuple.
struct FrameTuple {
  std::uint32_t id{0};
  std::uint32_t sn{0};
  bool st{false};

  friend bool operator==(const FrameTuple&, const FrameTuple&) = default;
};

/// Chunk TYPE values. TYPE 0 is reserved as the in-packet terminator
/// (the paper's "chunk with LEN = 0 placed after the last valid chunk").
enum class ChunkType : std::uint8_t {
  kTerminator = 0,
  kData = 1,            ///< PDU payload ("D" in Figure 2)
  kErrorDetection = 2,  ///< TPDU error-detection code ("ED" in Figure 3)
  kSignal = 3,          ///< connection signalling (establishment, SIZE advertisement)
  kAck = 4,             ///< per-TPDU acknowledgement / NAK control
};

const char* to_string(ChunkType t);

/// Fixed-field chunk header (the "simple version" of Appendix A; the
/// compressed encodings in compress.hpp are invertible transforms of
/// this canonical form).
struct ChunkHeader {
  ChunkType type{ChunkType::kData};
  std::uint16_t size{1};  ///< bytes per atomic data element
  std::uint16_t len{0};   ///< number of data elements in this chunk
  FrameTuple conn;        ///< C.(ID, SN, ST)
  FrameTuple tpdu;        ///< T.(ID, SN, ST)
  FrameTuple xpdu;        ///< X.(ID, SN, ST)

  friend bool operator==(const ChunkHeader&, const ChunkHeader&) = default;
};

/// Serialized size of the canonical fixed-field header, in bytes.
inline constexpr std::size_t kChunkHeaderBytes = 34;

/// A chunk: header plus payload. For data chunks the payload holds
/// exactly size·len bytes; control chunks carry an opaque payload of
/// size·len bytes as well (the codec enforces the product).
struct Chunk {
  ChunkHeader h;
  std::vector<std::uint8_t> payload;

  std::size_t payload_bytes() const {
    return static_cast<std::size_t>(h.size) * h.len;
  }
  std::size_t wire_size() const { return kChunkHeaderBytes + payload.size(); }

  /// True iff payload length matches size·len and len/size are sane.
  bool structurally_valid() const {
    return h.size > 0 && h.len > 0 && payload.size() == payload_bytes();
  }

  friend bool operator==(const Chunk&, const Chunk&) = default;
};

/// A non-owning chunk: the decoded header plus a span of payload bytes
/// pointing INTO the wire buffer the chunk was parsed from. This is the
/// zero-copy receive representation — the paper's point that
/// self-describing chunks let the receiver touch payload bytes once
/// means the *parse* must not copy them; only the final placement into
/// application memory does. A ChunkView is valid exactly as long as the
/// underlying packet buffer is held unmodified (see docs/PERFORMANCE.md
/// for the pool ownership rules); anything that outlives the buffer
/// must materialize with `to_chunk()`.
struct ChunkView {
  ChunkHeader h;
  std::span<const std::uint8_t> payload;

  std::size_t payload_bytes() const {
    return static_cast<std::size_t>(h.size) * h.len;
  }
  std::size_t wire_size() const { return kChunkHeaderBytes + payload.size(); }

  bool structurally_valid() const {
    return h.size > 0 && h.len > 0 && payload.size() == payload_bytes();
  }

  /// Materializes an owning copy (the one deliberate payload copy).
  Chunk to_chunk() const {
    return Chunk{h, {payload.begin(), payload.end()}};
  }
};

/// Views an owning chunk in place (no copy; borrows c's payload).
inline ChunkView as_view(const Chunk& c) { return {c.h, c.payload}; }

/// Human-readable single-line rendering (used by examples and tests).
std::string to_string(const Chunk& c);
std::string to_string(const FrameTuple& t);

}  // namespace chunknet
