// Invertible chunk-header compression (paper Appendix A).
//
// "Protocols can be defined to use the simplest form of chunks and
// chunk syntax transformations can be used to increase the bandwidth
// efficiency of chunk headers without changing the basic operation of
// the protocol." This module implements the transformations the
// appendix describes, each individually switchable so bench E5 can
// attribute the savings:
//
//  - SIZE elision: the SIZE of each chunk TYPE is agreed at connection
//    setup (signalling), so no SIZE field travels per chunk;
//  - implicit T.ID / X.ID (Figure 7): when the sender assigns
//    id = C.SN − PDU.SN, the difference is constant over the PDU and
//    the explicit ID field can be dropped — the receiver re-derives it;
//  - intra-packet continuation: when consecutive chunks in one packet
//    are related, later headers shrink to a tag + LEN — every other
//    field is derived from the previous chunk (the appendix's
//    positional-information idea).
//
// Every transform is lossless: decode(encode(chunks)) reproduces the
// canonical headers exactly (tested in tests/test_compress.cpp), so
// protocol logic never needs to know which encoding was in use —
// "chunk headers can have different formats in different parts of the
// network if desired".
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/chunk/types.hpp"

namespace chunknet {

struct CompressionProfile {
  bool elide_size{true};
  bool implicit_tid{true};  ///< requires FramerOptions::implicit_ids
  bool implicit_xid{true};  ///< requires FramerOptions::implicit_ids
  bool intra_packet_continuation{true};
  /// Negotiated SIZE per chunk TYPE, used when elide_size is set
  /// (indexed by the numeric TYPE value).
  std::array<std::uint16_t, 8> size_by_type{0, 4, 8, 4, 5, 0, 0, 0};

  /// Profile with every transform disabled (headers stay full-size in
  /// the compact syntax — the baseline for bench E5).
  static CompressionProfile none() {
    CompressionProfile p;
    p.elide_size = false;
    p.implicit_tid = false;
    p.implicit_xid = false;
    p.intra_packet_continuation = false;
    return p;
  }
};

/// Compact packet magic (distinct from the canonical envelope, so a
/// receiver knows which syntax arrived — in a real deployment this is
/// part of link negotiation).
inline constexpr std::uint8_t kCompressedPacketMagic = 0xC5;

/// Encodes chunks into one compact packet. Returns empty vector if the
/// encoded packet would exceed `capacity` (caller fragments first).
std::vector<std::uint8_t> compress_packet(std::span<const Chunk> chunks,
                                          const CompressionProfile& profile,
                                          std::size_t capacity);

struct DecompressedPacket {
  std::vector<Chunk> chunks;
  bool ok{false};
};

/// Decodes a compact packet back to canonical chunks.
DecompressedPacket decompress_packet(std::span<const std::uint8_t> bytes,
                                     const CompressionProfile& profile);

/// Wire bytes the compact encoding needs for one chunk header, given
/// whether it can be a continuation of the previous chunk. Exposed for
/// the E5 overhead accounting.
std::size_t compressed_header_size(const CompressionProfile& profile,
                                   bool continuation);

}  // namespace chunknet
