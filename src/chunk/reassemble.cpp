#include "src/chunk/reassemble.hpp"

#include <algorithm>
#include <tuple>

namespace chunknet {

bool mergeable(const Chunk& a, const Chunk& b) {
  if (a.h.type != b.h.type || a.h.size != b.h.size) return false;
  if (a.h.conn.id != b.h.conn.id || a.h.tpdu.id != b.h.tpdu.id ||
      a.h.xpdu.id != b.h.xpdu.id) {
    return false;
  }
  // A head chunk carrying any stop bit ends its PDU(s); data after a
  // stop bit belongs to a different PDU by definition, so a chunk with
  // ST set cannot be a merge head.
  if (a.h.conn.st || a.h.tpdu.st || a.h.xpdu.st) return false;
  const std::uint32_t n = a.h.len;
  return a.h.conn.sn + n == b.h.conn.sn && a.h.tpdu.sn + n == b.h.tpdu.sn &&
         a.h.xpdu.sn + n == b.h.xpdu.sn;
}

std::optional<Chunk> merge_chunks(const Chunk& a, const Chunk& b) {
  if (!mergeable(a, b)) return std::nullopt;
  const std::uint32_t total = static_cast<std::uint32_t>(a.h.len) + b.h.len;
  if (total > 0xFFFFu) return std::nullopt;

  Chunk c;
  c.h = a.h;  // TYPE, SIZE, IDs and SNs from the head
  c.h.len = static_cast<std::uint16_t>(total);
  c.h.conn.st = b.h.conn.st;  // ST bits from the tail
  c.h.tpdu.st = b.h.tpdu.st;
  c.h.xpdu.st = b.h.xpdu.st;
  c.payload.reserve(a.payload.size() + b.payload.size());
  c.payload = a.payload;
  c.payload.insert(c.payload.end(), b.payload.begin(), b.payload.end());
  return c;
}

std::vector<Chunk> coalesce(std::vector<Chunk> chunks) {
  // One sort brings every mergeable pair adjacent: chunks that can
  // merge share (type, size, ids) and have consecutive T.SNs. This is
  // the single-step reassembly property — no per-fragmentation-round
  // bookkeeping is needed because each chunk is self-describing.
  auto key = [](const Chunk& c) {
    return std::tuple(static_cast<std::uint8_t>(c.h.type), c.h.size,
                      c.h.conn.id, c.h.tpdu.id, c.h.xpdu.id, c.h.conn.sn);
  };
  std::sort(chunks.begin(), chunks.end(),
            [&](const Chunk& a, const Chunk& b) { return key(a) < key(b); });

  std::vector<Chunk> out;
  out.reserve(chunks.size());
  for (Chunk& c : chunks) {
    if (!out.empty()) {
      if (auto merged = merge_chunks(out.back(), c)) {
        out.back() = std::move(*merged);
        continue;
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace chunknet
