#include "src/chunk/fragment.hpp"

#include <cassert>

#include "src/chunk/codec.hpp"

namespace chunknet {

std::pair<Chunk, Chunk> split_chunk(const Chunk& c, std::uint16_t head_len) {
  assert(c.structurally_valid());
  assert(head_len > 0 && head_len < c.h.len);

  const std::size_t cut = static_cast<std::size_t>(head_len) * c.h.size;

  Chunk a;
  a.h = c.h;  // TYPE, SIZE, all IDs, all SNs copied
  a.h.len = head_len;
  a.h.conn.st = false;  // "no ST bits are set in any other chunk"
  a.h.tpdu.st = false;
  a.h.xpdu.st = false;
  a.payload.assign(c.payload.begin(),
                   c.payload.begin() + static_cast<std::ptrdiff_t>(cut));

  Chunk b;
  b.h = c.h;  // ST bits of the original land on the tail
  b.h.len = static_cast<std::uint16_t>(c.h.len - head_len);
  b.h.conn.sn = c.h.conn.sn + head_len;  // SNs advance in lock-step
  b.h.tpdu.sn = c.h.tpdu.sn + head_len;
  b.h.xpdu.sn = c.h.xpdu.sn + head_len;
  b.payload.assign(c.payload.begin() + static_cast<std::ptrdiff_t>(cut),
                   c.payload.end());

  return {std::move(a), std::move(b)};
}

std::pair<ChunkView, ChunkView> split_view(const ChunkView& v,
                                           std::uint16_t head_len) {
  assert(v.structurally_valid());
  assert(head_len > 0 && head_len < v.h.len);

  const std::size_t cut = static_cast<std::size_t>(head_len) * v.h.size;

  ChunkView a;
  a.h = v.h;  // TYPE, SIZE, all IDs, all SNs copied
  a.h.len = head_len;
  a.h.conn.st = false;  // "no ST bits are set in any other chunk"
  a.h.tpdu.st = false;
  a.h.xpdu.st = false;
  a.payload = v.payload.subspan(0, cut);

  ChunkView b;
  b.h = v.h;  // ST bits of the original land on the tail
  b.h.len = static_cast<std::uint16_t>(v.h.len - head_len);
  b.h.conn.sn = v.h.conn.sn + head_len;  // SNs advance in lock-step
  b.h.tpdu.sn = v.h.tpdu.sn + head_len;
  b.h.xpdu.sn = v.h.xpdu.sn + head_len;
  b.payload = v.payload.subspan(cut);

  return {a, b};
}

namespace {

std::uint16_t header_elements_that_fit(const ChunkHeader& h,
                                       std::size_t budget_bytes) {
  if (budget_bytes <= kChunkHeaderBytes) return 0;
  const std::size_t room = budget_bytes - kChunkHeaderBytes;
  const std::size_t n = room / h.size;
  if (n == 0) return 0;
  return static_cast<std::uint16_t>(n < h.len ? n : h.len);
}

}  // namespace

std::uint16_t elements_that_fit(const Chunk& c, std::size_t budget_bytes) {
  return header_elements_that_fit(c.h, budget_bytes);
}

std::uint16_t elements_that_fit(const ChunkView& v, std::size_t budget_bytes) {
  return header_elements_that_fit(v.h, budget_bytes);
}

std::vector<Chunk> split_to_fit(const Chunk& c, std::size_t max_wire_bytes) {
  if (c.wire_size() <= max_wire_bytes) return {c};
  const std::uint16_t per = elements_that_fit(c, max_wire_bytes);
  if (per == 0) return {};
  std::vector<Chunk> out;
  Chunk rest = c;
  while (rest.h.len > per) {
    auto [head, tail] = split_chunk(rest, per);
    out.push_back(std::move(head));
    rest = std::move(tail);
  }
  out.push_back(std::move(rest));
  return out;
}

std::vector<ChunkView> split_view_to_fit(const ChunkView& v,
                                         std::size_t max_wire_bytes) {
  if (v.wire_size() <= max_wire_bytes) return {v};
  const std::uint16_t per = elements_that_fit(v, max_wire_bytes);
  if (per == 0) return {};
  std::vector<ChunkView> out;
  ChunkView rest = v;
  while (rest.h.len > per) {
    auto [head, tail] = split_view(rest, per);
    out.push_back(head);
    rest = tail;
  }
  out.push_back(rest);
  return out;
}

}  // namespace chunknet
