#include "src/chunk/gather.hpp"

#include <cstring>
#include <deque>

#include "src/chunk/codec.hpp"
#include "src/chunk/fragment.hpp"

namespace chunknet {

void GatherPacket::linearize_into(PacketBytes& out) const {
  out.resize_uninitialized(wire_size);
  std::uint8_t* p = out.data();
  for (const GatherSegment& s : segments) {
    const std::uint8_t* src =
        s.external != nullptr ? s.external : arena.data() + s.arena_off;
    std::memcpy(p, src, s.len);
    p += s.len;
  }
}

GatherPacket gather_encode_packet(std::span<const ChunkView> chunks,
                                  std::size_t capacity) {
  GatherPacket pkt;
  std::size_t body = kPacketHeaderBytes;
  for (const ChunkView& v : chunks) body += v.wire_size();
  if (body > capacity) return pkt;  // wire_size == 0 signals failure
  const bool terminator = body < capacity;
  const std::size_t total = body + (terminator ? 1 : 0);

  // Arena layout: packet envelope, then every chunk header back to
  // back, then the terminator byte. Payload never enters the arena.
  pkt.arena.resize_uninitialized(kPacketHeaderBytes +
                                 chunks.size() * kChunkHeaderBytes +
                                 (terminator ? 1 : 0));
  std::uint8_t* a = pkt.arena.data();
  a[0] = kPacketMagic;
  a[1] = kPacketVersion;
  const std::uint16_t length =
      static_cast<std::uint16_t>(total - kPacketHeaderBytes);
  a[2] = static_cast<std::uint8_t>(length >> 8);
  a[3] = static_cast<std::uint8_t>(length);

  pkt.segments.reserve(2 * chunks.size() + 2);
  pkt.segments.push_back(
      {nullptr, 0, static_cast<std::uint32_t>(kPacketHeaderBytes)});
  std::uint32_t off = kPacketHeaderBytes;
  for (const ChunkView& v : chunks) {
    store_chunk_header(a + off, v.h);
    pkt.segments.push_back(
        {nullptr, off, static_cast<std::uint32_t>(kChunkHeaderBytes)});
    off += kChunkHeaderBytes;
    if (!v.payload.empty()) {
      pkt.segments.push_back({v.payload.data(), 0,
                              static_cast<std::uint32_t>(v.payload.size())});
      pkt.borrowed_payload_bytes += v.payload.size();
    }
  }
  if (terminator) {
    a[off] = static_cast<std::uint8_t>(ChunkType::kTerminator);
    pkt.segments.push_back({nullptr, off, 1});
  }
  pkt.wire_size = total;
  return pkt;
}

bool gather_supported(RepackPolicy policy) {
  return policy == RepackPolicy::kOnePerPacket ||
         policy == RepackPolicy::kRepack;
}

GatherResult gather_packetize(std::span<const ChunkView> chunks,
                              const PacketizerOptions& opts) {
  // Deliberately the same loop as packetize() — every packing,
  // splitting, and drop decision must coincide so the linearized
  // output is byte-for-byte identical. Only the chunk representation
  // differs: views split by header math instead of payload copies.
  GatherResult result;
  for (const ChunkView& v : chunks) result.payload_bytes += v.payload.size();

  std::deque<ChunkView> queue(chunks.begin(), chunks.end());
  std::vector<ChunkView> current;
  std::size_t used = kPacketHeaderBytes;

  auto flush = [&] {
    if (current.empty()) return;
    result.packets.push_back(gather_encode_packet(current, opts.mtu));
    current.clear();
    used = kPacketHeaderBytes;
  };

  while (!queue.empty()) {
    ChunkView v = queue.front();
    queue.pop_front();

    const std::size_t room = opts.mtu - used;
    if (v.wire_size() <= room) {
      used += v.wire_size();
      current.push_back(v);
      if (opts.policy == RepackPolicy::kOnePerPacket) flush();
      continue;
    }

    if (opts.split_to_fill && opts.policy != RepackPolicy::kOnePerPacket &&
        v.h.len > 1) {
      const std::uint16_t fit = elements_that_fit(v, room);
      if (fit > 0 && fit < v.h.len) {
        auto [head, tail] = split_view(v, fit);
        ++result.splits;
        used += head.wire_size();
        current.push_back(head);
        flush();
        queue.push_front(tail);
        continue;
      }
    }

    flush();
    if (v.wire_size() > opts.mtu - kPacketHeaderBytes) {
      auto pieces = split_view_to_fit(v, opts.mtu - kPacketHeaderBytes);
      if (pieces.empty()) {
        result.payload_bytes -= v.payload.size();  // undeliverable, drop
        continue;
      }
      result.splits += pieces.size() - 1;
      for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
        queue.push_front(*it);
      }
      continue;
    }
    used += v.wire_size();
    current.push_back(v);
    if (opts.policy == RepackPolicy::kOnePerPacket) flush();
  }
  flush();

  std::uint64_t wire = 0;
  for (const auto& p : result.packets) wire += p.wire_size;
  result.header_bytes = wire - result.payload_bytes;
  return result;
}

}  // namespace chunknet
