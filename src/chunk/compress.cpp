#include "src/chunk/compress.hpp"

#include "src/common/bytes.hpp"
#include "src/chunk/codec.hpp"

namespace chunknet {

namespace {

constexpr std::uint8_t kTagFull = 0x80;  // bit 7: full header follows
// bit 6: IDs carried explicitly in this header even under an implicit-ID
// profile — the escape hatch for control chunks (ED, ACK), whose ID
// fields are references to *other* PDUs and so cannot be derived from
// their own SNs (Appendix A's transforms target data chunks).
constexpr std::uint8_t kTagExplicitIds = 0x40;
constexpr std::uint8_t kTagCst = 0x01;
constexpr std::uint8_t kTagTst = 0x02;
constexpr std::uint8_t kTagXst = 0x04;
// bits 3..5: TYPE (3 bits)

std::uint8_t make_tag(const Chunk& c, bool full, bool explicit_ids) {
  std::uint8_t tag = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(c.h.type) & 0x07u) << 3);
  if (full) tag |= kTagFull;
  if (explicit_ids) tag |= kTagExplicitIds;
  if (c.h.conn.st) tag |= kTagCst;
  if (c.h.tpdu.st) tag |= kTagTst;
  if (c.h.xpdu.st) tag |= kTagXst;
  return tag;
}

/// True when the chunk's IDs match the implicit derivation of Figure 7
/// under the given profile (so they need not be transmitted).
bool ids_derivable(const ChunkHeader& h, const CompressionProfile& profile) {
  if (profile.implicit_tid && h.tpdu.id != h.conn.sn - h.tpdu.sn) return false;
  if (profile.implicit_xid && h.xpdu.id != h.conn.sn - h.xpdu.sn) return false;
  return true;
}

/// Predicts the header a CONT decoder would reconstruct after `prev`,
/// for a chunk with the given tag-derived fields. Encoder emits CONT
/// only when the prediction matches the real header exactly.
ChunkHeader predict_continuation(const ChunkHeader& prev, ChunkType type,
                                 std::uint16_t size, std::uint16_t len,
                                 const CompressionProfile& profile) {
  ChunkHeader h;
  h.type = type;
  h.size = size;
  h.len = len;
  h.conn.id = prev.conn.id;
  h.conn.sn = prev.conn.sn + prev.len;
  if (prev.tpdu.st) {
    h.tpdu.sn = 0;
    h.tpdu.id = profile.implicit_tid ? h.conn.sn : prev.tpdu.id + 1;
  } else {
    h.tpdu.sn = prev.tpdu.sn + prev.len;
    h.tpdu.id = prev.tpdu.id;
  }
  if (prev.xpdu.st) {
    h.xpdu.sn = 0;
    h.xpdu.id = profile.implicit_xid ? h.conn.sn : prev.xpdu.id + 1;
  } else {
    h.xpdu.sn = prev.xpdu.sn + prev.len;
    h.xpdu.id = prev.xpdu.id;
  }
  return h;
}

bool headers_equal_ignoring_st(const ChunkHeader& a, const ChunkHeader& b) {
  return a.type == b.type && a.size == b.size && a.len == b.len &&
         a.conn.id == b.conn.id && a.conn.sn == b.conn.sn &&
         a.tpdu.id == b.tpdu.id && a.tpdu.sn == b.tpdu.sn &&
         a.xpdu.id == b.xpdu.id && a.xpdu.sn == b.xpdu.sn;
}

void encode_full(ByteWriter& w, const Chunk& c,
                 const CompressionProfile& profile) {
  const bool explicit_ids = !ids_derivable(c.h, profile);
  w.u8(make_tag(c, /*full=*/true, explicit_ids));
  if (!profile.elide_size) w.u16(c.h.size);
  w.u16(c.h.len);
  w.u32(c.h.conn.id);
  w.u32(c.h.conn.sn);
  if (!profile.implicit_tid || explicit_ids) w.u32(c.h.tpdu.id);
  w.u32(c.h.tpdu.sn);
  if (!profile.implicit_xid || explicit_ids) w.u32(c.h.xpdu.id);
  w.u32(c.h.xpdu.sn);
}

}  // namespace

std::size_t compressed_header_size(const CompressionProfile& profile,
                                   bool continuation) {
  if (continuation) return 1 + 2;  // tag + LEN
  std::size_t n = 1 + 2 + 4 + 4 + 4 + 4;  // tag, LEN, C.ID, C.SN, T.SN, X.SN
  if (!profile.elide_size) n += 2;
  if (!profile.implicit_tid) n += 4;
  if (!profile.implicit_xid) n += 4;
  return n;
}

std::vector<std::uint8_t> compress_packet(std::span<const Chunk> chunks,
                                          const CompressionProfile& profile,
                                          std::size_t capacity) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(kCompressedPacketMagic);
  w.u8(kPacketVersion);
  w.u16(0);  // patched below

  const ChunkHeader* prev = nullptr;
  for (const Chunk& c : chunks) {
    bool cont = false;
    if (profile.intra_packet_continuation && prev != nullptr) {
      // Predict with the SIZE the decoder will infer (negotiated per
      // TYPE, or carried over from the previous chunk) — CONT is legal
      // only if that inference matches reality.
      const std::uint16_t inferred_size =
          profile.elide_size
              ? profile.size_by_type[static_cast<std::uint8_t>(c.h.type) & 7]
              : prev->size;
      const ChunkHeader predicted = predict_continuation(
          *prev, c.h.type, inferred_size, c.h.len, profile);
      cont = headers_equal_ignoring_st(predicted, c.h);
    }
    // SIZE elision requires the chunk to use its TYPE's negotiated
    // SIZE; a chunk that deviates is not representable in this profile.
    if (profile.elide_size &&
        profile.size_by_type[static_cast<std::uint8_t>(c.h.type) & 7] !=
            c.h.size) {
      return {};
    }
    if (cont) {
      w.u8(make_tag(c, /*full=*/false, /*explicit_ids=*/false));
      w.u16(c.h.len);
    } else {
      encode_full(w, c, profile);
    }
    w.bytes(c.payload);
    prev = &c.h;
  }

  if (out.size() > capacity) return {};
  const std::size_t length = out.size() - kPacketHeaderBytes;
  out[2] = static_cast<std::uint8_t>(length >> 8);
  out[3] = static_cast<std::uint8_t>(length);
  return out;
}

DecompressedPacket decompress_packet(std::span<const std::uint8_t> bytes,
                                     const CompressionProfile& profile) {
  DecompressedPacket result;
  ByteReader r(bytes);
  const std::uint8_t magic = r.u8();
  const std::uint8_t version = r.u8();
  const std::uint16_t length = r.u16();
  if (!r.ok() || magic != kCompressedPacketMagic ||
      version != kPacketVersion || length != r.remaining()) {
    return result;
  }

  const ChunkHeader* prev = nullptr;
  ChunkHeader prev_storage;
  while (r.remaining() > 0) {
    const std::uint8_t tag = r.u8();
    const auto type = static_cast<ChunkType>((tag >> 3) & 0x07u);
    if (type == ChunkType::kTerminator) break;
    if (static_cast<std::uint8_t>(type) >
        static_cast<std::uint8_t>(ChunkType::kAck)) {
      return result;
    }

    Chunk c;
    c.h.type = type;
    if ((tag & kTagFull) != 0) {
      const bool explicit_ids = (tag & kTagExplicitIds) != 0;
      c.h.size = profile.elide_size
                     ? profile.size_by_type[static_cast<std::uint8_t>(type) & 7]
                     : r.u16();
      c.h.len = r.u16();
      c.h.conn.id = r.u32();
      c.h.conn.sn = r.u32();
      if (!profile.implicit_tid || explicit_ids) c.h.tpdu.id = r.u32();
      c.h.tpdu.sn = r.u32();
      if (!profile.implicit_xid || explicit_ids) c.h.xpdu.id = r.u32();
      c.h.xpdu.sn = r.u32();
      if (profile.implicit_tid && !explicit_ids) {
        c.h.tpdu.id = c.h.conn.sn - c.h.tpdu.sn;
      }
      if (profile.implicit_xid && !explicit_ids) {
        c.h.xpdu.id = c.h.conn.sn - c.h.xpdu.sn;
      }
    } else {
      if (prev == nullptr) return result;  // CONT with no predecessor
      const std::uint16_t len = r.u16();
      const std::uint16_t size =
          profile.elide_size
              ? profile.size_by_type[static_cast<std::uint8_t>(type) & 7]
              : prev->size;
      c.h = predict_continuation(*prev, type, size, len, profile);
    }
    c.h.conn.st = (tag & kTagCst) != 0;
    c.h.tpdu.st = (tag & kTagTst) != 0;
    c.h.xpdu.st = (tag & kTagXst) != 0;

    if (!r.ok() || c.h.size == 0 || c.h.len == 0) return result;
    // 64-bit extent, checked against the bytes present, so a hostile
    // LEN·SIZE can neither wrap on 32-bit targets nor over-read a
    // truncated tail (mirrors decode_chunk_view).
    const std::uint64_t extent = static_cast<std::uint64_t>(c.h.size) *
                                 static_cast<std::uint64_t>(c.h.len);
    if (extent > r.remaining()) return result;
    const auto view = r.bytes(static_cast<std::size_t>(extent));
    if (!r.ok()) return result;
    c.payload.assign(view.begin(), view.end());

    prev_storage = c.h;
    prev = &prev_storage;
    result.chunks.push_back(std::move(c));
  }
  result.ok = true;
  return result;
}

}  // namespace chunknet
