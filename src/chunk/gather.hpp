// Gather-encode packet assembly: the zero-copy transmit path.
//
// The materializing encoder (encode_packet_into) copies every payload
// byte into a flat packet buffer on every transmission — including
// retransmissions, where the bytes already sit untouched in the
// sender's pending-TPDU store. A GatherPacket instead describes the
// packet iovec-style: a small header ARENA (packet envelope, chunk
// headers, terminator — bytes that genuinely must be produced) plus an
// ordered segment list in which payload segments BORROW the original
// chunk bytes. Assembling a packet, splitting a chunk to fill residual
// MTU space (split_view: header math + subspan), and retransmitting a
// pending TPDU all cost zero payload-byte copies.
//
// `linearize_into` flattens the segment list into one contiguous
// buffer. It models what a NIC's scatter-gather DMA engine does with
// an iovec chain, and is the handoff boundary to the byte-oriented
// network simulator — the sender does NOT count it in
// `sender.tx_bytes_copied` (see docs/PERFORMANCE.md). Its output is
// byte-for-byte identical to encode_packet on the same chunks
// (parity-tested, including fragmented and wraparound-SN chunks).
//
// Lifetime: a GatherPacket borrows the payload spans of the ChunkViews
// it was built from; it must not outlive the chunks those views were
// taken of. The sender builds, linearizes, and drops gather packets
// within one transmit call while the pending TPDU holds the chunks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/chunk/packetizer.hpp"
#include "src/chunk/types.hpp"
#include "src/common/aligned.hpp"

namespace chunknet {

/// One wire-order segment of a gather packet: either `len` bytes of
/// the packet's header arena starting at `arena_off`, or (when
/// `external` is non-null) `len` borrowed payload bytes.
struct GatherSegment {
  const std::uint8_t* external{nullptr};
  std::uint32_t arena_off{0};
  std::uint32_t len{0};
};

/// A packet described as header arena + ordered segments.
struct GatherPacket {
  PacketBytes arena;                    ///< envelope + chunk headers + terminator
  std::vector<GatherSegment> segments;  ///< wire order
  std::size_t wire_size{0};
  std::size_t borrowed_payload_bytes{0};

  /// Flattens the segments into `out` (sized exactly; 64-byte-aligned
  /// storage). The scatter-gather DMA analogue.
  void linearize_into(PacketBytes& out) const;
  PacketBytes linearize() const {
    PacketBytes out;
    linearize_into(out);
    return out;
  }
};

/// Gather analogue of encode_packet: same capacity/terminator rules,
/// but payload bytes are referenced, never copied. Returns a packet
/// with wire_size == 0 if the chunks exceed `capacity`.
GatherPacket gather_encode_packet(std::span<const ChunkView> chunks,
                                  std::size_t capacity);

/// Result of gather_packetize — mirrors PacketizeResult, with
/// GatherPackets in place of flat byte vectors.
struct GatherResult {
  std::vector<GatherPacket> packets;
  std::uint64_t header_bytes{0};
  std::uint64_t payload_bytes{0};
  std::size_t splits{0};
};

/// True for the repack policies the gather path can serve.
/// kReassemble needs cross-chunk coalescing (payload bytes from many
/// chunks merged into one), which is inherently materializing.
bool gather_supported(RepackPolicy policy);

/// Mirror of packetize() for kOnePerPacket/kRepack: identical packing,
/// splitting, and drop decisions (the linearized packets are
/// byte-for-byte equal to packetize's — parity-tested), but chunk
/// splits are split_view header math and payload is borrowed.
/// Precondition: gather_supported(opts.policy).
GatherResult gather_packetize(std::span<const ChunkView> chunks,
                              const PacketizerOptions& opts);

}  // namespace chunknet
