// Packing chunks into packet envelopes (paper §2, Figure 3) and the
// repacking policies of Figure 4.
//
// "If chunks are smaller than a packet, then as many chunks as fit can
// be placed in a single packet… Because chunks allow disordering, how
// the chunks are placed in a packet is irrelevant." When a chunk does
// not fit in the space left, the packetizer may split it (chunk
// fragmentation) so packets are filled efficiently — or move it whole
// to the next packet, under the chosen policy.
//
// When moving chunks from small packets to large ones (Figure 4) an
// intermediate system has three choices, all supported here:
//   1. kOnePerPacket  — one chunk per packet (no combining),
//   2. kRepack        — pack multiple chunks per packet (no merging),
//   3. kReassemble    — merge eligible chunks first, then pack.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/chunk/types.hpp"

namespace chunknet {

enum class RepackPolicy : std::uint8_t {
  kOnePerPacket = 1,  ///< Figure 4 method 1
  kRepack = 2,        ///< Figure 4 method 2
  kReassemble = 3,    ///< Figure 4 method 3
};

struct PacketizerOptions {
  std::size_t mtu{1500};            ///< max bytes per encoded packet
  bool split_to_fill{true};         ///< split chunks to fill residual space
  RepackPolicy policy{RepackPolicy::kRepack};
};

/// Encoded packets plus accounting used by benches E1/E2.
struct PacketizeResult {
  std::vector<std::vector<std::uint8_t>> packets;
  std::uint64_t header_bytes{0};   ///< chunk+packet header overhead
  std::uint64_t payload_bytes{0};  ///< application data carried
  std::uint64_t splits{0};         ///< chunk fragmentation operations
  std::uint64_t merges{0};         ///< chunk reassembly operations

  double efficiency() const {
    const double total = static_cast<double>(header_bytes + payload_bytes);
    return total > 0 ? static_cast<double>(payload_bytes) / total : 0.0;
  }
};

/// Packs `chunks` into packets of at most `opts.mtu` bytes each,
/// splitting oversized chunks as needed (Appendix C), merging first if
/// the policy is kReassemble (Appendix D).
PacketizeResult packetize(std::vector<Chunk> chunks,
                          const PacketizerOptions& opts);

/// Convenience: parse a batch of packets back into a flat chunk list,
/// dropping malformed packets. Sets `*malformed` (if non-null) to the
/// number of packets that failed to parse.
std::vector<Chunk> unpack_all(
    std::span<const std::vector<std::uint8_t>> packets,
    std::size_t* malformed = nullptr);

}  // namespace chunknet
