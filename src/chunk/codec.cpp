#include "src/chunk/codec.hpp"

#include <cstdio>

namespace chunknet {

const char* to_string(ChunkType t) {
  switch (t) {
    case ChunkType::kTerminator: return "TERM";
    case ChunkType::kData: return "D";
    case ChunkType::kErrorDetection: return "ED";
    case ChunkType::kSignal: return "SIG";
    case ChunkType::kAck: return "ACK";
  }
  return "?";
}

std::string to_string(const FrameTuple& t) {
  char buf[64];
  const int w = std::snprintf(buf, sizeof buf, "(id=%u sn=%u st=%d)", t.id,
                              t.sn, t.st ? 1 : 0);
  return std::string(buf, static_cast<std::size_t>(w));
}

std::string to_string(const Chunk& c) {
  std::string out = "chunk{";
  out += to_string(c.h.type);
  char buf[64];
  int w = std::snprintf(buf, sizeof buf, " size=%u len=%u C=", c.h.size, c.h.len);
  out.append(buf, static_cast<std::size_t>(w));
  out += to_string(c.h.conn);
  out += " T=";
  out += to_string(c.h.tpdu);
  out += " X=";
  out += to_string(c.h.xpdu);
  out += "}";
  return out;
}

namespace {

constexpr std::uint8_t kFlagCst = 0x01;
constexpr std::uint8_t kFlagTst = 0x02;
constexpr std::uint8_t kFlagXst = 0x04;

}  // namespace

void encode_chunk(ByteWriter& w, const Chunk& c) {
  w.u8(static_cast<std::uint8_t>(c.h.type));
  std::uint8_t flags = 0;
  if (c.h.conn.st) flags |= kFlagCst;
  if (c.h.tpdu.st) flags |= kFlagTst;
  if (c.h.xpdu.st) flags |= kFlagXst;
  w.u8(flags);
  w.u16(c.h.size);
  w.u16(c.h.len);
  w.u32(c.h.conn.id);
  w.u32(c.h.conn.sn);
  w.u32(c.h.tpdu.id);
  w.u32(c.h.tpdu.sn);
  w.u32(c.h.xpdu.id);
  w.u32(c.h.xpdu.sn);
  w.u32(0);  // spare / future use (kept so kChunkHeaderBytes is stable)
  w.bytes(c.payload);
}

DecodeStatus decode_chunk_view(ByteReader& r, ChunkView& out) {
  if (r.remaining() == 0) return DecodeStatus::kEnd;
  const std::uint8_t type = r.u8();
  if (type == static_cast<std::uint8_t>(ChunkType::kTerminator)) {
    return DecodeStatus::kTerminator;
  }
  if (type > static_cast<std::uint8_t>(ChunkType::kAck)) {
    return DecodeStatus::kError;
  }
  const std::uint8_t flags = r.u8();
  out.h.type = static_cast<ChunkType>(type);
  out.h.size = r.u16();
  out.h.len = r.u16();
  out.h.conn.id = r.u32();
  out.h.conn.sn = r.u32();
  out.h.tpdu.id = r.u32();
  out.h.tpdu.sn = r.u32();
  out.h.xpdu.id = r.u32();
  out.h.xpdu.sn = r.u32();
  r.skip(4);  // spare
  if (!r.ok()) return DecodeStatus::kError;
  out.h.conn.st = (flags & kFlagCst) != 0;
  out.h.tpdu.st = (flags & kFlagTst) != 0;
  out.h.xpdu.st = (flags & kFlagXst) != 0;
  if (out.h.size == 0 || out.h.len == 0) return DecodeStatus::kError;
  // The declared extent is LEN·SIZE. Compute it in 64 bits and compare
  // against the bytes actually present BEFORE forming a std::size_t, so
  // a hostile header can neither wrap the product on 32-bit targets nor
  // drive the reader past a truncated tail (fuzzer regression).
  const std::uint64_t payload = static_cast<std::uint64_t>(out.h.size) *
                                static_cast<std::uint64_t>(out.h.len);
  if (payload > r.remaining()) return DecodeStatus::kError;
  out.payload = r.bytes(static_cast<std::size_t>(payload));
  if (!r.ok()) return DecodeStatus::kError;
  return DecodeStatus::kOk;
}

DecodeStatus decode_chunk(ByteReader& r, Chunk& out) {
  ChunkView v;
  const DecodeStatus s = decode_chunk_view(r, v);
  if (s == DecodeStatus::kOk) {
    out.h = v.h;
    out.payload.assign(v.payload.begin(), v.payload.end());
  }
  return s;
}

std::size_t packed_size(std::span<const Chunk> chunks) {
  std::size_t total = kPacketHeaderBytes;
  for (const Chunk& c : chunks) total += c.wire_size();
  return total;
}

bool encode_packet_into(std::span<const Chunk> chunks, std::size_t capacity,
                        std::vector<std::uint8_t>& out) {
  out.clear();
  const std::size_t body = packed_size(chunks);
  if (body > capacity) return false;
  out.reserve(body + 1);
  ByteWriter w(out);
  w.u8(kPacketMagic);
  w.u8(kPacketVersion);
  w.u16(0);  // patched below
  for (const Chunk& c : chunks) encode_chunk(w, c);
  if (out.size() < capacity) {
    w.u8(static_cast<std::uint8_t>(ChunkType::kTerminator));
  }
  const std::size_t length = out.size() - kPacketHeaderBytes;
  out[2] = static_cast<std::uint8_t>(length >> 8);
  out[3] = static_cast<std::uint8_t>(length);
  return true;
}

std::vector<std::uint8_t> encode_packet(std::span<const Chunk> chunks,
                                        std::size_t capacity) {
  std::vector<std::uint8_t> out;
  encode_packet_into(chunks, capacity, out);
  return out;
}

bool decode_packet_views(std::span<const std::uint8_t> bytes,
                         std::vector<ChunkView>& out) {
  out.clear();
  ByteReader r(bytes);
  const std::uint8_t magic = r.u8();
  const std::uint8_t version = r.u8();
  const std::uint16_t length = r.u16();
  if (!r.ok() || magic != kPacketMagic || version != kPacketVersion ||
      length != r.remaining()) {
    return false;
  }
  for (;;) {
    ChunkView v;
    const DecodeStatus s = decode_chunk_view(r, v);
    if (s == DecodeStatus::kOk) {
      out.push_back(v);
      continue;
    }
    if (s == DecodeStatus::kTerminator || s == DecodeStatus::kEnd) {
      return true;
    }
    out.clear();
    return false;
  }
}

ParsedPacket decode_packet(std::span<const std::uint8_t> bytes) {
  ParsedPacket result;
  std::vector<ChunkView> views;
  result.ok = decode_packet_views(bytes, views);
  result.chunks.reserve(views.size());
  for (const ChunkView& v : views) result.chunks.push_back(v.to_chunk());
  return result;
}

}  // namespace chunknet
