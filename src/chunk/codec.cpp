#include "src/chunk/codec.hpp"

#include <cstdio>
#include <cstring>

namespace chunknet {

const char* to_string(ChunkType t) {
  switch (t) {
    case ChunkType::kTerminator: return "TERM";
    case ChunkType::kData: return "D";
    case ChunkType::kErrorDetection: return "ED";
    case ChunkType::kSignal: return "SIG";
    case ChunkType::kAck: return "ACK";
  }
  return "?";
}

std::string to_string(const FrameTuple& t) {
  char buf[64];
  const int w = std::snprintf(buf, sizeof buf, "(id=%u sn=%u st=%d)", t.id,
                              t.sn, t.st ? 1 : 0);
  return std::string(buf, static_cast<std::size_t>(w));
}

std::string to_string(const Chunk& c) {
  std::string out = "chunk{";
  out += to_string(c.h.type);
  char buf[64];
  int w = std::snprintf(buf, sizeof buf, " size=%u len=%u C=", c.h.size, c.h.len);
  out.append(buf, static_cast<std::size_t>(w));
  out += to_string(c.h.conn);
  out += " T=";
  out += to_string(c.h.tpdu);
  out += " X=";
  out += to_string(c.h.xpdu);
  out += "}";
  return out;
}

namespace {

constexpr std::uint8_t kFlagCst = 0x01;
constexpr std::uint8_t kFlagTst = 0x02;
constexpr std::uint8_t kFlagXst = 0x04;

inline void store_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(p[0]) << 8) |
                                    p[1]);
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

}  // namespace

void store_chunk_header(std::uint8_t* p, const ChunkHeader& h) {
  p[0] = static_cast<std::uint8_t>(h.type);
  std::uint8_t flags = 0;
  if (h.conn.st) flags |= kFlagCst;
  if (h.tpdu.st) flags |= kFlagTst;
  if (h.xpdu.st) flags |= kFlagXst;
  p[1] = flags;
  store_be16(p + 2, h.size);
  store_be16(p + 4, h.len);
  store_be32(p + 6, h.conn.id);
  store_be32(p + 10, h.conn.sn);
  store_be32(p + 14, h.tpdu.id);
  store_be32(p + 18, h.tpdu.sn);
  store_be32(p + 22, h.xpdu.id);
  store_be32(p + 26, h.xpdu.sn);
  store_be32(p + 30, 0);  // spare / future use
}

void load_chunk_header(const std::uint8_t* p, ChunkHeader& h) {
  h.type = static_cast<ChunkType>(p[0]);
  const std::uint8_t flags = p[1];
  h.size = load_be16(p + 2);
  h.len = load_be16(p + 4);
  h.conn.id = load_be32(p + 6);
  h.conn.sn = load_be32(p + 10);
  h.tpdu.id = load_be32(p + 14);
  h.tpdu.sn = load_be32(p + 18);
  h.xpdu.id = load_be32(p + 22);
  h.xpdu.sn = load_be32(p + 26);
  // p+30..p+33 is the spare word; ignored on load.
  h.conn.st = (flags & kFlagCst) != 0;
  h.tpdu.st = (flags & kFlagTst) != 0;
  h.xpdu.st = (flags & kFlagXst) != 0;
}

void encode_chunk(ByteWriter& w, const Chunk& c) {
  w.u8(static_cast<std::uint8_t>(c.h.type));
  std::uint8_t flags = 0;
  if (c.h.conn.st) flags |= kFlagCst;
  if (c.h.tpdu.st) flags |= kFlagTst;
  if (c.h.xpdu.st) flags |= kFlagXst;
  w.u8(flags);
  w.u16(c.h.size);
  w.u16(c.h.len);
  w.u32(c.h.conn.id);
  w.u32(c.h.conn.sn);
  w.u32(c.h.tpdu.id);
  w.u32(c.h.tpdu.sn);
  w.u32(c.h.xpdu.id);
  w.u32(c.h.xpdu.sn);
  w.u32(0);  // spare / future use (kept so kChunkHeaderBytes is stable)
  w.bytes(c.payload);
}

DecodeStatus decode_chunk_view(ByteReader& r, ChunkView& out) {
  if (r.remaining() == 0) return DecodeStatus::kEnd;
  const std::uint8_t type = r.u8();
  if (type == static_cast<std::uint8_t>(ChunkType::kTerminator)) {
    return DecodeStatus::kTerminator;
  }
  if (type > static_cast<std::uint8_t>(ChunkType::kAck)) {
    return DecodeStatus::kError;
  }
  const std::uint8_t flags = r.u8();
  out.h.type = static_cast<ChunkType>(type);
  out.h.size = r.u16();
  out.h.len = r.u16();
  out.h.conn.id = r.u32();
  out.h.conn.sn = r.u32();
  out.h.tpdu.id = r.u32();
  out.h.tpdu.sn = r.u32();
  out.h.xpdu.id = r.u32();
  out.h.xpdu.sn = r.u32();
  r.skip(4);  // spare
  if (!r.ok()) return DecodeStatus::kError;
  out.h.conn.st = (flags & kFlagCst) != 0;
  out.h.tpdu.st = (flags & kFlagTst) != 0;
  out.h.xpdu.st = (flags & kFlagXst) != 0;
  if (out.h.size == 0 || out.h.len == 0) return DecodeStatus::kError;
  // The declared extent is LEN·SIZE. Compute it in 64 bits and compare
  // against the bytes actually present BEFORE forming a std::size_t, so
  // a hostile header can neither wrap the product on 32-bit targets nor
  // drive the reader past a truncated tail (fuzzer regression).
  const std::uint64_t payload = static_cast<std::uint64_t>(out.h.size) *
                                static_cast<std::uint64_t>(out.h.len);
  if (payload > r.remaining()) return DecodeStatus::kError;
  out.payload = r.bytes(static_cast<std::size_t>(payload));
  if (!r.ok()) return DecodeStatus::kError;
  return DecodeStatus::kOk;
}

DecodeStatus decode_chunk(ByteReader& r, Chunk& out) {
  ChunkView v;
  const DecodeStatus s = decode_chunk_view(r, v);
  if (s == DecodeStatus::kOk) {
    out.h = v.h;
    out.payload.assign(v.payload.begin(), v.payload.end());
  }
  return s;
}

std::size_t packed_size(std::span<const Chunk> chunks) {
  std::size_t total = kPacketHeaderBytes;
  for (const Chunk& c : chunks) total += c.wire_size();
  return total;
}

namespace {

// Batched encode: the total wire size is known up front (packed_size),
// so the buffer is sized ONCE and every chunk header lands via raw
// big-endian stores — no per-byte push_back bounds churn. ~2x faster
// than the ByteWriter loop on multi-chunk packets (bench E10.hdr).
template <typename Buffer>
bool encode_packet_into_impl(std::span<const Chunk> chunks,
                             std::size_t capacity, Buffer& out) {
  out.clear();
  const std::size_t body = packed_size(chunks);
  if (body > capacity) return false;
  const bool terminator = body < capacity;
  const std::size_t total = body + (terminator ? 1 : 0);
  if constexpr (requires { out.resize_uninitialized(total); }) {
    out.resize_uninitialized(total);
  } else {
    out.resize(total);
  }
  std::uint8_t* p = out.data();
  p[0] = kPacketMagic;
  p[1] = kPacketVersion;
  store_be16(p + 2, static_cast<std::uint16_t>(total - kPacketHeaderBytes));
  p += kPacketHeaderBytes;
  for (const Chunk& c : chunks) {
    store_chunk_header(p, c.h);
    if (!c.payload.empty()) {
      std::memcpy(p + kChunkHeaderBytes, c.payload.data(), c.payload.size());
    }
    p += kChunkHeaderBytes + c.payload.size();
  }
  if (terminator) *p = static_cast<std::uint8_t>(ChunkType::kTerminator);
  return true;
}

}  // namespace

bool encode_packet_into(std::span<const Chunk> chunks, std::size_t capacity,
                        std::vector<std::uint8_t>& out) {
  return encode_packet_into_impl(chunks, capacity, out);
}

bool encode_packet_into(std::span<const Chunk> chunks, std::size_t capacity,
                        PacketBytes& out) {
  return encode_packet_into_impl(chunks, capacity, out);
}

std::vector<std::uint8_t> encode_packet(std::span<const Chunk> chunks,
                                        std::size_t capacity) {
  std::vector<std::uint8_t> out;
  encode_packet_into(chunks, capacity, out);
  return out;
}

bool decode_packet_views(std::span<const std::uint8_t> bytes,
                         std::vector<ChunkView>& out) {
  // Pointer-walk version of the ByteReader loop: one bounds check per
  // chunk, then a batched raw header load. Accept/reject decisions are
  // byte-for-byte those of decode_chunk_view (property-tested).
  out.clear();
  if (bytes.size() < kPacketHeaderBytes || bytes[0] != kPacketMagic ||
      bytes[1] != kPacketVersion) {
    return false;
  }
  const std::uint16_t length = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(bytes[2]) << 8) | bytes[3]);
  if (length != bytes.size() - kPacketHeaderBytes) return false;
  const std::uint8_t* p = bytes.data() + kPacketHeaderBytes;
  const std::uint8_t* const end = bytes.data() + bytes.size();
  while (p < end) {
    const std::uint8_t type = *p;
    if (type == static_cast<std::uint8_t>(ChunkType::kTerminator)) {
      return true;  // bytes after the terminator are dead space
    }
    if (type > static_cast<std::uint8_t>(ChunkType::kAck) ||
        static_cast<std::size_t>(end - p) < kChunkHeaderBytes) {
      out.clear();
      return false;
    }
    ChunkView v;
    load_chunk_header(p, v.h);
    if (v.h.size == 0 || v.h.len == 0) {
      out.clear();
      return false;
    }
    // LEN·SIZE in 64 bits before any size_t conversion, exactly like
    // decode_chunk_view's overflow guard.
    const std::uint64_t payload = static_cast<std::uint64_t>(v.h.size) *
                                  static_cast<std::uint64_t>(v.h.len);
    if (payload > static_cast<std::uint64_t>(end - p) - kChunkHeaderBytes) {
      out.clear();
      return false;
    }
    v.payload = std::span<const std::uint8_t>(
        p + kChunkHeaderBytes, static_cast<std::size_t>(payload));
    out.push_back(v);
    p += kChunkHeaderBytes + static_cast<std::size_t>(payload);
  }
  return true;  // exhausted exactly at a chunk boundary (kEnd)
}

ParsedPacket decode_packet(std::span<const std::uint8_t> bytes) {
  ParsedPacket result;
  std::vector<ChunkView> views;
  result.ok = decode_packet_views(bytes, views);
  result.chunks.reserve(views.size());
  for (const ChunkView& v : views) result.chunks.push_back(v.to_chunk());
  return result;
}

}  // namespace chunknet
