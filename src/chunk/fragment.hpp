// Chunk fragmentation — the paper's Appendix C algorithm.
//
// Splitting a chunk produces two chunks: the head keeps the original
// SNs and carries NO stop bits; the tail's SNs are advanced by the head
// length in *every* framing tuple (C, T and X move in lock-step because
// SNs count the same data elements), and the tail inherits the original
// ST bits. TYPE, SIZE and all IDs are copied to both halves. The SIZE
// field guarantees the atomic units of protocol processing are never
// split: all cuts happen on element boundaries.
//
// Because splitting a chunk yields chunks, "the receiver always
// receives packets filled with chunks, and the format of the received
// chunks is identical regardless of how much network fragmentation
// occurs" (§3.1) — fragmentation is just re-enveloping.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/chunk/types.hpp"

namespace chunknet {

/// Splits `c` after `head_len` data elements (Appendix C).
/// Preconditions: c is a structurally valid data-bearing chunk and
/// 0 < head_len < c.h.len.
std::pair<Chunk, Chunk> split_chunk(const Chunk& c, std::uint16_t head_len);

/// The same Appendix-C split on a non-owning view: all header
/// manipulation (SN advance, ST bit placement) is identical to
/// `split_chunk`, but the payload halves are SUBSPANS of the original
/// — no payload byte moves. This is what makes splitting free on the
/// gather-encode transmit path: fragmentation is header math.
std::pair<ChunkView, ChunkView> split_view(const ChunkView& v,
                                           std::uint16_t head_len);

/// Largest number of elements of `c` that fit in `budget_bytes` of wire
/// space (including the chunk header). Zero if not even one element fits.
std::uint16_t elements_that_fit(const Chunk& c, std::size_t budget_bytes);
std::uint16_t elements_that_fit(const ChunkView& v, std::size_t budget_bytes);

/// Splits `c` into the minimum number of chunks such that each encodes
/// into at most `max_wire_bytes` (header + payload). Splitting respects
/// element (SIZE) boundaries. Returns {c} unchanged if it already fits.
/// Returns an empty vector if even a single element cannot fit.
std::vector<Chunk> split_to_fit(const Chunk& c, std::size_t max_wire_bytes);

/// View analogue of `split_to_fit`: every piece borrows a subspan of
/// the original payload.
std::vector<ChunkView> split_view_to_fit(const ChunkView& v,
                                         std::size_t max_wire_bytes);

/// Counts how many framing tuples a split manipulates — the paper's
/// §3.2 cost note: chunk fragmentation touches multiple framing levels
/// (vs one for IP), "however, this manipulation is quite simple and can
/// be done in parallel". Exposed so bench E1 can report it.
inline constexpr int kFramingLevels = 3;

}  // namespace chunknet
