#include "src/chunk/packetizer.hpp"

#include <deque>

#include "src/chunk/codec.hpp"
#include "src/chunk/fragment.hpp"
#include "src/chunk/reassemble.hpp"

namespace chunknet {

PacketizeResult packetize(std::vector<Chunk> chunks,
                          const PacketizerOptions& opts) {
  PacketizeResult result;

  if (opts.policy == RepackPolicy::kReassemble) {
    const std::size_t before = chunks.size();
    chunks = coalesce(std::move(chunks));
    result.merges = before - chunks.size();
  }

  for (const Chunk& c : chunks) result.payload_bytes += c.payload.size();

  std::deque<Chunk> queue(std::make_move_iterator(chunks.begin()),
                          std::make_move_iterator(chunks.end()));

  std::vector<Chunk> current;
  std::size_t used = kPacketHeaderBytes;

  auto flush = [&] {
    if (current.empty()) return;
    auto pkt = encode_packet(current, opts.mtu);
    result.packets.push_back(std::move(pkt));
    current.clear();
    used = kPacketHeaderBytes;
  };

  while (!queue.empty()) {
    Chunk c = std::move(queue.front());
    queue.pop_front();

    const std::size_t room = opts.mtu - used;
    if (c.wire_size() <= room) {
      used += c.wire_size();
      current.push_back(std::move(c));
      if (opts.policy == RepackPolicy::kOnePerPacket) flush();
      continue;
    }

    // Chunk does not fit in the space left. Either split it to fill the
    // residual space (chunk fragmentation, Appendix C), or close this
    // packet and start a fresh one.
    if (opts.split_to_fill && opts.policy != RepackPolicy::kOnePerPacket &&
        c.h.len > 1) {
      const std::uint16_t fit = elements_that_fit(c, room);
      if (fit > 0 && fit < c.h.len) {
        auto [head, tail] = split_chunk(c, fit);
        ++result.splits;
        used += head.wire_size();
        current.push_back(std::move(head));
        flush();
        queue.push_front(std::move(tail));
        continue;
      }
    }

    flush();
    // The packet is now empty; a chunk that still exceeds the MTU must
    // be fragmented unconditionally (Figure 3).
    if (c.wire_size() > opts.mtu - kPacketHeaderBytes) {
      auto pieces = split_to_fit(c, opts.mtu - kPacketHeaderBytes);
      if (pieces.empty()) {
        // MTU cannot carry even one element: undeliverable, drop.
        result.payload_bytes -= c.payload.size();
        continue;
      }
      result.splits += pieces.size() - 1;
      for (auto it = pieces.rbegin(); it != pieces.rend(); ++it) {
        queue.push_front(std::move(*it));
      }
      continue;
    }
    used += c.wire_size();
    current.push_back(std::move(c));
    if (opts.policy == RepackPolicy::kOnePerPacket) flush();
  }
  flush();

  // Overhead = everything on the wire that is not application payload
  // (packet envelopes, chunk headers, terminators).
  std::uint64_t wire = 0;
  for (const auto& p : result.packets) wire += p.size();
  result.header_bytes = wire - result.payload_bytes;
  return result;
}

std::vector<Chunk> unpack_all(
    std::span<const std::vector<std::uint8_t>> packets,
    std::size_t* malformed) {
  std::vector<Chunk> out;
  std::size_t bad = 0;
  for (const auto& p : packets) {
    ParsedPacket parsed = decode_packet(p);
    if (!parsed.ok) {
      ++bad;
      continue;
    }
    for (auto& c : parsed.chunks) out.push_back(std::move(c));
  }
  if (malformed != nullptr) *malformed = bad;
  return out;
}

}  // namespace chunknet
