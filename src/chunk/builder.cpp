#include "src/chunk/builder.hpp"

#include <cassert>

#include "src/common/bytes.hpp"

namespace chunknet {

std::vector<Chunk> frame_stream(std::span<const std::uint8_t> stream,
                                const FramerOptions& opts) {
  assert(opts.element_size > 0);
  assert(stream.size() % opts.element_size == 0);
  assert(opts.tpdu_elements > 0);

  const std::uint32_t total =
      static_cast<std::uint32_t>(stream.size() / opts.element_size);
  std::vector<Chunk> out;
  if (total == 0) return out;

  // Element-indexed framing state.
  std::uint32_t conn_sn = opts.first_conn_sn;
  std::uint32_t tpdu_id = opts.first_tpdu_id;
  std::uint32_t tpdu_sn = 0;
  std::uint32_t xpdu_id = opts.first_xpdu_id;
  std::uint32_t xpdu_sn = 0;
  std::size_t xpdu_boundary_idx = 0;

  auto xpdu_len = [&]() -> std::uint32_t {
    if (opts.xpdu_boundaries.empty()) return opts.xpdu_elements;
    return opts.xpdu_boundaries[xpdu_boundary_idx %
                                opts.xpdu_boundaries.size()];
  };

  if (opts.implicit_ids) {
    // Figure 7: choose IDs so that id == C.SN − PDU.SN. The difference
    // is then constant across the PDU and can replace the explicit ID.
    tpdu_id = conn_sn - tpdu_sn;
    xpdu_id = conn_sn - xpdu_sn;
  }

  std::uint32_t element = 0;
  while (element < total) {
    // Length of the current run: up to the nearest framing boundary.
    const std::uint32_t tpdu_left = opts.tpdu_elements - tpdu_sn;
    const std::uint32_t xpdu_left = xpdu_len() - xpdu_sn;
    std::uint32_t run = tpdu_left < xpdu_left ? tpdu_left : xpdu_left;
    if (run > total - element) run = total - element;
    if (opts.max_chunk_elements > 0 && run > opts.max_chunk_elements) {
      run = opts.max_chunk_elements;
    }
    if (run > 0xFFFFu) run = 0xFFFFu;  // LEN is a 16-bit field

    Chunk c;
    c.h.type = ChunkType::kData;
    c.h.size = opts.element_size;
    c.h.len = static_cast<std::uint16_t>(run);
    c.h.conn = {opts.connection_id, conn_sn, false};
    c.h.tpdu = {tpdu_id, tpdu_sn, false};
    c.h.xpdu = {xpdu_id, xpdu_sn, false};
    const std::size_t off = static_cast<std::size_t>(element) * opts.element_size;
    const std::size_t bytes = static_cast<std::size_t>(run) * opts.element_size;
    c.payload.assign(stream.begin() + static_cast<std::ptrdiff_t>(off),
                     stream.begin() + static_cast<std::ptrdiff_t>(off + bytes));

    element += run;
    conn_sn += run;
    tpdu_sn += run;
    xpdu_sn += run;

    // Stop bits land on the chunk containing the final element of the
    // respective PDU (and only that chunk).
    if (xpdu_sn == xpdu_len()) {
      c.h.xpdu.st = true;
      xpdu_sn = 0;
      ++xpdu_boundary_idx;
      xpdu_id = opts.implicit_ids ? conn_sn : xpdu_id + 1;
    }
    if (tpdu_sn == opts.tpdu_elements) {
      c.h.tpdu.st = true;
      tpdu_sn = 0;
      tpdu_id = opts.implicit_ids ? conn_sn : tpdu_id + 1;
    }
    if (element == total) {
      if (opts.final_element_ends_connection) c.h.conn.st = true;
      // A stream that ends mid-PDU still terminates those PDUs: the
      // sender closes open framing at end of stream.
      c.h.tpdu.st = true;
      c.h.xpdu.st = true;
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<std::vector<Chunk>> group_by_tpdu(std::vector<Chunk> chunks) {
  std::vector<std::vector<Chunk>> groups;
  for (Chunk& c : chunks) {
    if (!groups.empty() && !groups.back().empty() &&
        groups.back().back().h.tpdu.id == c.h.tpdu.id &&
        groups.back().back().h.conn.id == c.h.conn.id) {
      groups.back().push_back(std::move(c));
      continue;
    }
    bool placed = false;
    for (auto& g : groups) {
      if (!g.empty() && g.back().h.tpdu.id == c.h.tpdu.id &&
          g.back().h.conn.id == c.h.conn.id) {
        g.push_back(std::move(c));
        placed = true;
        break;
      }
    }
    if (!placed) {
      groups.emplace_back();
      groups.back().push_back(std::move(c));
    }
  }
  return groups;
}

Chunk make_ed_chunk(std::uint32_t connection_id, std::uint32_t tpdu_id,
                    std::uint32_t conn_sn_of_tpdu, const Wsc2Code& code) {
  Chunk c;
  c.h.type = ChunkType::kErrorDetection;
  c.h.size = 8;
  c.h.len = 1;
  c.h.conn = {connection_id, conn_sn_of_tpdu, false};
  c.h.tpdu = {tpdu_id, 0, false};
  c.h.xpdu = {0, 0, false};
  c.payload.reserve(8);
  ByteWriter w(c.payload);
  w.u32(code.p0);
  w.u32(code.p1);
  return c;
}

Wsc2Code parse_ed_chunk(std::span<const std::uint8_t> payload) {
  Wsc2Code code;
  if (payload.size() != 8) return code;
  ByteReader r(payload);
  code.p0 = r.u32();
  code.p1 = r.u32();
  return code;
}

Chunk make_ack_chunk(std::uint32_t connection_id, std::uint32_t tpdu_id,
                     bool positive) {
  Chunk c;
  c.h.type = ChunkType::kAck;
  c.h.size = 5;
  c.h.len = 1;
  c.h.conn = {connection_id, 0, false};
  c.h.tpdu = {tpdu_id, 0, false};
  c.payload.reserve(5);
  ByteWriter w(c.payload);
  w.u32(tpdu_id);
  w.u8(positive ? 1 : 0);
  return c;
}

AckInfo parse_ack_chunk(const Chunk& ack) {
  AckInfo info;
  if (ack.payload.size() != 5) return info;
  ByteReader r(ack.payload);
  info.tpdu_id = r.u32();
  info.positive = r.u8() != 0;
  return info;
}

}  // namespace chunknet
