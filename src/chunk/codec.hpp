// Canonical wire codec for chunks and the packet envelope (paper §2).
//
// "Packets can be considered envelopes that carry integral numbers of
// chunks." A packet body is a sequence of encoded chunks; if space
// remains after the last valid chunk, a terminator (TYPE = 0, the
// paper's LEN = 0 chunk) marks the end. The decoder accepts untrusted
// bytes: every structural violation yields an explicit error, never
// undefined behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bytes.hpp"
#include "src/chunk/types.hpp"

namespace chunknet {

/// Bytes of packet-level envelope header: magic(1) version(1) length(2).
inline constexpr std::size_t kPacketHeaderBytes = 4;
inline constexpr std::uint8_t kPacketMagic = 0xC4;
inline constexpr std::uint8_t kPacketVersion = 1;

/// Serializes one chunk in canonical fixed-field form.
void encode_chunk(ByteWriter& w, const Chunk& c);

/// Outcome of decoding one chunk from a reader.
enum class DecodeStatus {
  kOk,          ///< a valid chunk was produced
  kTerminator,  ///< the TYPE=0 end-of-packet marker was read
  kEnd,         ///< reader exhausted exactly at a chunk boundary
  kError,       ///< malformed input (truncated or inconsistent)
};

DecodeStatus decode_chunk(ByteReader& r, Chunk& out);

/// Encodes a full packet: envelope header + chunks + terminator (when
/// at least one byte of the declared capacity remains). `capacity` is
/// the network MTU; the encoded packet is *not* padded to it, but the
/// function checks the chunks fit and appends the terminator only if
/// the real packet would have trailing space. Returns an empty vector
/// if the chunks exceed capacity (caller should have fragmented).
std::vector<std::uint8_t> encode_packet(std::span<const Chunk> chunks,
                                        std::size_t capacity);

/// Result of parsing a packet body.
struct ParsedPacket {
  std::vector<Chunk> chunks;
  bool ok{false};
};

ParsedPacket decode_packet(std::span<const std::uint8_t> bytes);

/// Wire bytes needed to carry the given chunks in one packet,
/// including envelope header (terminator excluded — it only occupies
/// otherwise-unused space).
std::size_t packed_size(std::span<const Chunk> chunks);

}  // namespace chunknet
