// Canonical wire codec for chunks and the packet envelope (paper §2).
//
// "Packets can be considered envelopes that carry integral numbers of
// chunks." A packet body is a sequence of encoded chunks; if space
// remains after the last valid chunk, a terminator (TYPE = 0, the
// paper's LEN = 0 chunk) marks the end. The decoder accepts untrusted
// bytes: every structural violation yields an explicit error, never
// undefined behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/aligned.hpp"
#include "src/common/bytes.hpp"
#include "src/chunk/types.hpp"

namespace chunknet {

/// Bytes of packet-level envelope header: magic(1) version(1) length(2).
inline constexpr std::size_t kPacketHeaderBytes = 4;
inline constexpr std::uint8_t kPacketMagic = 0xC4;
inline constexpr std::uint8_t kPacketVersion = 1;

/// Serializes one chunk in canonical fixed-field form.
void encode_chunk(ByteWriter& w, const Chunk& c);

/// Outcome of decoding one chunk from a reader.
enum class DecodeStatus {
  kOk,          ///< a valid chunk was produced
  kTerminator,  ///< the TYPE=0 end-of-packet marker was read
  kEnd,         ///< reader exhausted exactly at a chunk boundary
  kError,       ///< malformed input (truncated or inconsistent)
};

DecodeStatus decode_chunk(ByteReader& r, Chunk& out);

/// Zero-copy variant: decodes the header and leaves `out.payload`
/// pointing into the reader's underlying buffer. The view is valid only
/// while that buffer lives; `decode_chunk` is this plus one copy.
DecodeStatus decode_chunk_view(ByteReader& r, ChunkView& out);

/// Encodes a full packet: envelope header + chunks + terminator (when
/// at least one byte of the declared capacity remains). `capacity` is
/// the network MTU; the encoded packet is *not* padded to it, but the
/// function checks the chunks fit and appends the terminator only if
/// the real packet would have trailing space. Returns an empty vector
/// if the chunks exceed capacity (caller should have fragmented).
std::vector<std::uint8_t> encode_packet(std::span<const Chunk> chunks,
                                        std::size_t capacity);

/// Result of parsing a packet body.
struct ParsedPacket {
  std::vector<Chunk> chunks;
  bool ok{false};
};

ParsedPacket decode_packet(std::span<const std::uint8_t> bytes);

/// Zero-copy packet parse: appends one ChunkView per chunk into `out`
/// (cleared first, capacity retained so a reused scratch vector makes
/// steady-state receive allocation-free). Payload spans point into
/// `bytes` — they are valid only while `bytes` is alive and unmodified.
/// Returns false (and clears `out`) on any structural violation, with
/// byte-for-byte the same accept/reject decisions as decode_packet
/// (property-tested).
bool decode_packet_views(std::span<const std::uint8_t> bytes,
                         std::vector<ChunkView>& out);

/// encode_packet variant that reuses `out` (cleared, capacity kept) so
/// a pooled send/receive loop allocates nothing in steady state.
/// Returns false and leaves `out` empty if the chunks exceed capacity.
bool encode_packet_into(std::span<const Chunk> chunks, std::size_t capacity,
                        std::vector<std::uint8_t>& out);

/// Same, into aligned packet storage (the TX-path flavour).
bool encode_packet_into(std::span<const Chunk> chunks, std::size_t capacity,
                        PacketBytes& out);

/// Raw batched header stores/loads: the 34-byte canonical chunk header
/// written/read directly at `p` (caller guarantees the bounds). These
/// are the per-chunk primitives the batched packet encode/decode and
/// the gather-encode TX path share; `p` need not be aligned.
void store_chunk_header(std::uint8_t* p, const ChunkHeader& h);
void load_chunk_header(const std::uint8_t* p, ChunkHeader& h);

/// Wire bytes needed to carry the given chunks in one packet,
/// including envelope header (terminator excluded — it only occupies
/// otherwise-unused space).
std::size_t packed_size(std::span<const Chunk> chunks);

}  // namespace chunknet
