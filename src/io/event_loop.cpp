#include "src/io/event_loop.hpp"

#include <errno.h>

#include <algorithm>

namespace chunknet {

EventLoop::EventLoop(EventLoopConfig cfg)
    : sys_(cfg.sys != nullptr ? cfg.sys : &real_syscalls()),
      cfg_(cfg),
      timers_(sim_, TimerWheel::Config{cfg.timer_tick}) {
  epoch_ns_ = sys_->sys_monotonic_ns();
  // EPOLL_CLOEXEC: the udp_transfer example forks helpers; leaked epoll
  // fds across exec would pin the loop alive in the child.
  epfd_ = sys_->sys_epoll_create1(EPOLL_CLOEXEC);
  event_buf_.resize(64);
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    c_eintr_ = &cfg_.obs->metrics->counter("io.loop.eintr_retries");
  }
}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) sys_->sys_close(epfd_);
}

SimTime EventLoop::now() const {
  return sys_->sys_monotonic_ns() - epoch_ns_;
}

bool EventLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  const bool known = fds_.contains(fd);
  const int op = known ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (sys_->sys_epoll_ctl(epfd_, op, fd, &ev) != 0) return false;
  fds_.insert_or_assign(fd, std::move(cb));
  return true;
}

bool EventLoop::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  return sys_->sys_epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EventLoop::del_fd(int fd) {
  if (!fds_.erase(fd)) return;
  epoll_event ev{};  // non-null for pre-2.6.9 kernels, per epoll_ctl(2)
  sys_->sys_epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
}

void EventLoop::pump_timers() {
  const SimTime t = now();
  while (sim_.pending() && sim_.next_event_at() <= t) {
    stats_.timer_fires += sim_.run(t);
  }
  // Even with nothing due, the transport reads sim().now() for stamps
  // and arm_in() offsets — keep it tracking the wall clock.
  sim_.advance_to(t);
}

int EventLoop::poll_once(SimTime max_wait) {
  ++stats_.polls;
  pump_timers();

  // Sleep until the earliest pending deadline, the caller's cap, or
  // the loop default — whichever is soonest. Milliseconds, rounded UP
  // so a deadline 0.4 ms out does not busy-spin at timeout 0.
  SimTime wait = std::min(max_wait, cfg_.max_poll);
  if (sim_.pending()) {
    const SimTime t = now();
    const SimTime next = sim_.next_event_at();
    wait = std::min(wait, next > t ? next - t : 0);
  }
  const int timeout_ms =
      static_cast<int>((wait + kMillisecond - 1) / kMillisecond);

  int n = sys_->sys_epoll_wait(epfd_, event_buf_.data(),
                               static_cast<int>(event_buf_.size()),
                               timeout_ms);
  if (n < 0) {
    if (errno == EINTR) {
      // A signal is not an error: count it and let the caller's loop
      // re-enter with deadlines intact.
      ++stats_.eintr_retries;
      if (c_eintr_ != nullptr) c_eintr_->add();
      n = 0;
    } else {
      n = 0;  // hard epoll failure: surfaces via stats_.polls stalling
    }
  }
  for (int i = 0; i < n; ++i) {
    const int fd = event_buf_[static_cast<std::size_t>(i)].data.fd;
    const std::uint32_t ev = event_buf_[static_cast<std::size_t>(i)].events;
    // Re-find per event: a callback may del_fd a sibling.
    if (FdCallback* cb = fds_.find(fd); cb != nullptr && *cb) {
      ++stats_.fd_events;
      (*cb)(ev);
    }
  }
  pump_timers();
  return n;
}

bool EventLoop::run_until(const std::function<bool()>& done,
                          SimTime deadline) {
  stopped_ = false;
  while (!stopped_) {
    if (done()) return true;
    const SimTime t = now();
    if (t >= deadline) break;
    poll_once(deadline - t);
  }
  return done();
}

}  // namespace chunknet
