#include "src/io/syscall.hpp"

#include <errno.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>

namespace chunknet {

const char* to_string(IoCall c) {
  switch (c) {
    case IoCall::kSocket: return "socket";
    case IoCall::kBind: return "bind";
    case IoCall::kConnect: return "connect";
    case IoCall::kClose: return "close";
    case IoCall::kEpollCreate: return "epoll_create1";
    case IoCall::kEpollCtl: return "epoll_ctl";
    case IoCall::kEpollWait: return "epoll_wait";
    case IoCall::kRecvmmsg: return "recvmmsg";
    case IoCall::kSendmmsg: return "sendmmsg";
    case IoCall::kCallCount: break;
  }
  return "?";
}

int SyscallShim::sys_socket(int domain, int type, int protocol) {
  return ::socket(domain, type, protocol);
}

int SyscallShim::sys_bind(int fd, const sockaddr* addr, socklen_t len) {
  return ::bind(fd, addr, len);
}

int SyscallShim::sys_connect(int fd, const sockaddr* addr, socklen_t len) {
  return ::connect(fd, addr, len);
}

int SyscallShim::sys_getsockname(int fd, sockaddr* addr, socklen_t* len) {
  return ::getsockname(fd, addr, len);
}

int SyscallShim::sys_setsockopt(int fd, int level, int optname,
                                const void* optval, socklen_t optlen) {
  return ::setsockopt(fd, level, optname, optval, optlen);
}

int SyscallShim::sys_close(int fd) { return ::close(fd); }

int SyscallShim::sys_epoll_create1(int flags) {
  return ::epoll_create1(flags);
}

int SyscallShim::sys_epoll_ctl(int epfd, int op, int fd, epoll_event* ev) {
  return ::epoll_ctl(epfd, op, fd, ev);
}

int SyscallShim::sys_epoll_wait(int epfd, epoll_event* evs, int maxevents,
                                int timeout_ms) {
  return ::epoll_wait(epfd, evs, maxevents, timeout_ms);
}

int SyscallShim::sys_recvmmsg(int fd, mmsghdr* msgs, unsigned n, int flags) {
  return ::recvmmsg(fd, msgs, n, flags, nullptr);
}

int SyscallShim::sys_sendmmsg(int fd, mmsghdr* msgs, unsigned n, int flags) {
  return ::sendmmsg(fd, msgs, n, flags);
}

std::uint64_t SyscallShim::sys_monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

SyscallShim& real_syscalls() {
  static SyscallShim shim;
  return shim;
}

void FaultInjectingSyscalls::inject(InjectedFault f) {
  faults_[static_cast<int>(f.call)].push_back(f);
}

void FaultInjectingSyscalls::fail_next(IoCall call, int err,
                                       std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    inject(InjectedFault{call, 0, err, -1, 0});
  }
}

std::size_t FaultInjectingSyscalls::pending() const {
  std::size_t n = 0;
  for (const auto& q : faults_) n += q.size();
  return n;
}

bool FaultInjectingSyscalls::take(IoCall call, InjectedFault& out) {
  auto& q = faults_[static_cast<int>(call)];
  if (q.empty()) return false;
  if (q.front().after > 0) {
    --q.front().after;
    return false;
  }
  out = q.front();
  q.pop_front();
  ++stats_.injected[static_cast<int>(call)];
  return true;
}

namespace {
int fail(int err) {
  errno = err;
  return -1;
}
}  // namespace

int FaultInjectingSyscalls::sys_socket(int domain, int type, int protocol) {
  InjectedFault f;
  if (take(IoCall::kSocket, f) && f.err != 0) return fail(f.err);
  return inner_.sys_socket(domain, type, protocol);
}

int FaultInjectingSyscalls::sys_bind(int fd, const sockaddr* addr,
                                     socklen_t len) {
  InjectedFault f;
  if (take(IoCall::kBind, f) && f.err != 0) return fail(f.err);
  return inner_.sys_bind(fd, addr, len);
}

int FaultInjectingSyscalls::sys_connect(int fd, const sockaddr* addr,
                                        socklen_t len) {
  InjectedFault f;
  if (take(IoCall::kConnect, f) && f.err != 0) return fail(f.err);
  return inner_.sys_connect(fd, addr, len);
}

int FaultInjectingSyscalls::sys_close(int fd) {
  InjectedFault f;
  if (take(IoCall::kClose, f) && f.err != 0) {
    // Even a failing close(2) releases the descriptor on Linux; do the
    // real close so the fd does not leak, then report the error.
    (void)inner_.sys_close(fd);
    return fail(f.err);
  }
  return inner_.sys_close(fd);
}

int FaultInjectingSyscalls::sys_epoll_create1(int flags) {
  InjectedFault f;
  if (take(IoCall::kEpollCreate, f) && f.err != 0) return fail(f.err);
  return inner_.sys_epoll_create1(flags);
}

int FaultInjectingSyscalls::sys_epoll_ctl(int epfd, int op, int fd,
                                          epoll_event* ev) {
  InjectedFault f;
  if (take(IoCall::kEpollCtl, f) && f.err != 0) return fail(f.err);
  return inner_.sys_epoll_ctl(epfd, op, fd, ev);
}

int FaultInjectingSyscalls::sys_epoll_wait(int epfd, epoll_event* evs,
                                           int maxevents, int timeout_ms) {
  InjectedFault f;
  if (take(IoCall::kEpollWait, f) && f.err != 0) return fail(f.err);
  return inner_.sys_epoll_wait(epfd, evs, maxevents, timeout_ms);
}

int FaultInjectingSyscalls::sys_recvmmsg(int fd, mmsghdr* msgs, unsigned n,
                                         int flags) {
  InjectedFault f;
  if (take(IoCall::kRecvmmsg, f)) {
    if (f.err != 0) return fail(f.err);
    const int got = inner_.sys_recvmmsg(fd, msgs, n, flags);
    if (got > 0 && f.truncate_by > 0) {
      // Short read: the reported length lies low. The strict decoder
      // downstream must reject the truncated envelope.
      auto& len = msgs[0].msg_len;
      len -= std::min(len, f.truncate_by);
    }
    return got;
  }
  return inner_.sys_recvmmsg(fd, msgs, n, flags);
}

int FaultInjectingSyscalls::sys_sendmmsg(int fd, mmsghdr* msgs, unsigned n,
                                         int flags) {
  InjectedFault f;
  if (take(IoCall::kSendmmsg, f)) {
    if (f.err != 0) return fail(f.err);
    if (f.partial >= 0) {
      const unsigned k =
          std::min(n, static_cast<unsigned>(f.partial));
      if (k == 0) return 0;  // kernel made no progress at all
      return inner_.sys_sendmmsg(fd, msgs, k, flags);
    }
  }
  return inner_.sys_sendmmsg(fd, msgs, n, flags);
}

}  // namespace chunknet
