// A UDP socket on the event loop, with batched I/O and explicit
// handling for every way the kernel says no.
//
// TX is a bounded queue flushed with sendmmsg(2); RX drains with
// recvmmsg(2) into pool-backed buffers that flow zero-copy into
// decode_packet_views. The design rule, inherited from the rest of
// chunknet: NO SILENT DROPS. Every datagram that does not reach the
// wire (or the application) is counted under a reason —
//
//   errno / event        behavior                         metric
//   ------------------   ------------------------------   -------------------------
//   EINTR                retry the call                   io.eintr_retries
//   EAGAIN (tx)          re-arm EPOLLOUT, keep queue      io.tx_eagain
//   ENOBUFS              backpressure: keep queue, back   io.tx_enobufs,
//                        off, surface via governor +      io.tx_backpressure (gauge)
//                        on_backpressure
//   EMSGSIZE             drop THAT datagram, continue     io.tx_oversize_dropped
//   ECONNREFUSED         peer gone: bounded exponential   io.peer_unreachable,
//                        backoff + reconnect, notify      io.reconnects
//   partial sendmmsg     resume from the unsent tail      io.tx_partial_batches
//   queue overflow       drop newest, count               io.tx_queue_dropped
//   MSG_TRUNC (rx)       drop truncated datagram          io.rx_truncated_dropped
//
// Backpressure is governor-visible: queued TX bytes are charged to the
// ResourceGovernor (class kStaging), so a receiver granting credit out
// of governor headroom automatically shrinks its grants while the
// socket is refusing buffers — ENOBUFS becomes credit shaping instead
// of loss.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "src/common/buffer_pool.hpp"
#include "src/common/resource_governor.hpp"
#include "src/io/event_loop.hpp"
#include "src/obs/obs.hpp"

namespace chunknet {

/// An IPv4/UDP peer address (the runtime is loopback/v4 for now; the
/// sockaddr plumbing is confined to udp_endpoint.cpp).
struct UdpAddress {
  std::uint32_t ip_host_order{0x7f000001};  ///< 127.0.0.1
  std::uint16_t port{0};

  /// Key for per-source tables (rate limiting, peer identity).
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(ip_host_order) << 16) | port;
  }
  friend bool operator==(const UdpAddress&, const UdpAddress&) = default;
};

struct UdpEndpointConfig {
  /// Local bind address. port 0 = ephemeral (read back via local_addr()).
  UdpAddress bind{};
  /// When set, the socket is connect(2)ed: sends default to this peer
  /// and the kernel reports ICMP unreachable as ECONNREFUSED — the
  /// peer-restart signal.
  std::optional<UdpAddress> peer;
  /// Largest datagram accepted in either direction. TX larger is an
  /// oversize drop; RX larger arrives MSG_TRUNC and is dropped.
  std::size_t max_datagram{1500};
  unsigned rx_batch{16};
  unsigned tx_batch{16};
  /// Datagrams recvmmsg'd in one poll before yielding (fairness with
  /// timers under flood).
  unsigned max_rx_per_poll{256};
  /// TX queue cap in datagrams; an enqueue past it drops the NEWEST
  /// datagram (counted — the transport's RTO recovers it).
  std::size_t max_tx_queue{4096};
  /// ENOBUFS backoff before retrying the flush.
  SimTime enobufs_backoff{1 * kMillisecond};
  /// ECONNREFUSED reconnect backoff: doubles from min to max, resets
  /// on any successful receive or full flush.
  SimTime reconnect_backoff_min{10 * kMillisecond};
  SimTime reconnect_backoff_max{2 * kSecond};
  /// SO_RCVBUF / SO_SNDBUF requests (0 = kernel default).
  int so_rcvbuf{1 << 20};
  int so_sndbuf{1 << 20};
  /// Pool for RX buffers; null = endpoint-owned private pool.
  PacketBufferPool* pool{nullptr};
  /// Queued TX bytes are charged here (class kStaging) when set.
  ResourceGovernor* governor{nullptr};
  std::uint32_t governor_client{0};
  ObsContext* obs{nullptr};
};

class UdpEndpoint {
 public:
  /// One received datagram: `bytes` sized to the payload, pool-backed
  /// (take() it to keep zero-copy ownership; pool recycling closes the
  /// loop), `from` the source address.
  using DatagramCallback =
      std::function<void(PooledBuffer&& bytes, const UdpAddress& from)>;

  UdpEndpoint(EventLoop& loop, UdpEndpointConfig cfg);
  ~UdpEndpoint();

  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;

  /// False when socket/bind/connect failed; last_error() says why.
  bool ok() const { return fd_ >= 0; }
  int last_error() const { return last_errno_; }
  UdpAddress local_addr() const { return local_; }

  void on_datagram(DatagramCallback cb) { on_datagram_ = std::move(cb); }
  /// Fired on ECONNREFUSED (peer closed its socket / process died).
  void on_peer_unreachable(std::function<void()> cb) {
    on_peer_unreachable_ = std::move(cb);
  }
  /// Fired when backpressure starts (true) and fully drains (false).
  void on_backpressure(std::function<void(bool)> cb) {
    on_backpressure_ = std::move(cb);
  }

  /// Queues one datagram to the connected peer (cfg.peer must be set).
  void send(PacketBytes bytes);
  /// Queues one datagram to an explicit destination.
  void send_to(PacketBytes bytes, const UdpAddress& dest);
  /// Attempts to flush the TX queue now (also runs on EPOLLOUT and
  /// backoff timers).
  void flush();

  std::size_t tx_queued() const { return txq_.size(); }
  std::uint64_t tx_queued_bytes() const { return txq_bytes_; }
  bool backpressured() const { return backpressure_; }

  /// Graceful teardown: stops RX immediately, tries to flush the TX
  /// queue until `deadline` (loop time), then closes. Datagrams still
  /// queued at the deadline are dropped TRUTHFULLY (counted in
  /// stats().tx_queue_dropped and returned). Safe to call twice.
  std::uint64_t shutdown(SimTime deadline);

  struct Stats {
    std::uint64_t datagrams_sent{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t datagrams_received{0};
    std::uint64_t bytes_received{0};
    std::uint64_t sendmmsg_calls{0};
    std::uint64_t recvmmsg_calls{0};
    std::uint64_t eintr_retries{0};
    std::uint64_t tx_eagain{0};
    std::uint64_t tx_enobufs{0};
    std::uint64_t tx_partial_batches{0};
    std::uint64_t tx_oversize_dropped{0};
    std::uint64_t tx_queue_dropped{0};
    std::uint64_t rx_truncated_dropped{0};
    std::uint64_t peer_unreachable{0};
    std::uint64_t reconnects{0};
    std::uint64_t backpressure_episodes{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  struct TxDatagram {
    PacketBytes bytes;
    UdpAddress dest;     ///< ignored when connected
    bool explicit_dest{false};
  };

  void enqueue(TxDatagram d);
  void handle_readable();
  /// One recvmmsg batch. Returns datagrams delivered, -1 on EAGAIN.
  int rx_batch_once();
  void drop_tx_head(std::uint64_t* counter, Counter* metric);
  void enter_backpressure();
  void leave_backpressure();
  void handle_conn_refused();
  void arm_flush_in(SimTime delay);
  void charge_tx(std::uint64_t bytes);
  void release_tx(std::uint64_t bytes);
  void update_epollout();

  EventLoop& loop_;
  UdpEndpointConfig cfg_;
  SyscallShim& sys_;
  int fd_{-1};
  int last_errno_{0};
  UdpAddress local_{};
  PacketBufferPool own_pool_;
  PacketBufferPool* pool_{nullptr};
  DatagramCallback on_datagram_;
  std::function<void()> on_peer_unreachable_;
  std::function<void(bool)> on_backpressure_;

  std::deque<TxDatagram> txq_;
  std::uint64_t txq_bytes_{0};
  bool epollout_armed_{false};
  bool backpressure_{false};
  bool flush_timer_armed_{false};
  SimTime reconnect_backoff_{0};
  bool closed_{false};

  Stats stats_;
  struct ObsHandles {
    Counter* datagrams_sent{nullptr};
    Counter* datagrams_received{nullptr};
    Counter* eintr_retries{nullptr};
    Counter* tx_eagain{nullptr};
    Counter* tx_enobufs{nullptr};
    Counter* tx_partial_batches{nullptr};
    Counter* tx_oversize_dropped{nullptr};
    Counter* tx_queue_dropped{nullptr};
    Counter* rx_truncated_dropped{nullptr};
    Counter* peer_unreachable{nullptr};
    Counter* reconnects{nullptr};
    Gauge* tx_backpressure{nullptr};
    Gauge* tx_queued_bytes{nullptr};
  } m_;
};

}  // namespace chunknet
