// Chunk transport over a real UDP socket: the glue that runs
// ChunkTransportSender / ChunkTransportReceiver — written against the
// discrete-event Simulator — on an EventLoop and a UdpEndpoint.
//
// A session owns the endpoint, wires the transport's send_packet /
// send_control callbacks into the endpoint's TX queue, and feeds
// received datagrams back in: the receiver side screens them through
// an IngressGuard first (rate limit, strict decode, refusal memory)
// and then hands each ChunkView straight to on_chunk_view — the
// zero-copy ingest path, with the pooled buffer held alive across the
// views that point into it.
//
// Shutdown is truthful: drain() flushes what it can until a deadline
// and then reports exactly what was abandoned — TPDUs the sender gave
// up on (by RTO exhaustion or by the drain itself) and datagrams that
// never reached the wire. Nothing is silently discarded.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "src/io/event_loop.hpp"
#include "src/io/ingress_guard.hpp"
#include "src/io/udp_endpoint.hpp"
#include "src/transport/receiver.hpp"
#include "src/transport/sender.hpp"

namespace chunknet {

/// What a graceful drain actually delivered — the session's exit
/// receipt. `clean` iff every TPDU was positively acked and no queued
/// datagram was thrown away.
struct DrainReport {
  std::uint64_t tpdus_acked{0};
  std::uint64_t tpdus_gave_up{0};      ///< RTO exhaustion before drain
  std::uint64_t tpdus_abandoned{0};    ///< still outstanding at deadline
  std::uint64_t datagrams_unsent{0};   ///< TX queue dropped at close
  bool clean{false};
};

struct UdpSenderSessionConfig {
  /// Where the receiver listens. Required.
  UdpAddress peer{};
  /// Local bind (default: ephemeral loopback).
  UdpAddress bind{};
  /// Transport configuration. send_packet, timers and the simulator
  /// are provided by the session; everything else is the caller's.
  SenderConfig sender{};
  /// Endpoint tuning (peer/bind/obs are overwritten by the session).
  UdpEndpointConfig endpoint{};
  ObsContext* obs{nullptr};
};

class UdpSenderSession {
 public:
  UdpSenderSession(EventLoop& loop, UdpSenderSessionConfig cfg);

  bool ok() const { return endpoint_->ok(); }
  UdpEndpoint& endpoint() { return *endpoint_; }
  ChunkTransportSender& sender() { return *sender_; }

  void send_stream(std::span<const std::uint8_t> stream) {
    sender_->send_stream(stream);
  }

  /// Pumps the loop until every TPDU is resolved (acked or given up)
  /// AND the TX queue is empty, or `deadline` (loop time) passes.
  bool run_until_finished(SimTime deadline);

  /// Graceful shutdown with truthful accounting: pump until finished
  /// or `deadline`, abandon whatever is still outstanding, flush/close
  /// the socket, and report exactly what happened.
  DrainReport drain(SimTime deadline);

 private:
  EventLoop& loop_;
  std::unique_ptr<UdpEndpoint> endpoint_;
  std::unique_ptr<ChunkTransportSender> sender_;
  PacketBufferPool feedback_pool_;
};

struct UdpReceiverSessionConfig {
  /// Where to listen. Required (a receiver with an ephemeral port is
  /// fine for tests; read it back via endpoint().local_addr()).
  UdpAddress bind{};
  /// Transport configuration. send_control, timers and the simulator
  /// are provided by the session.
  ReceiverConfig receiver{};
  UdpEndpointConfig endpoint{};
  IngressGuardConfig guard{};
  ObsContext* obs{nullptr};
};

class UdpReceiverSession {
 public:
  UdpReceiverSession(EventLoop& loop, UdpReceiverSessionConfig cfg);

  bool ok() const { return endpoint_->ok(); }
  UdpEndpoint& endpoint() { return *endpoint_; }
  ChunkTransportReceiver& receiver() { return *receiver_; }
  IngressGuard& guard() { return *guard_; }

  /// Pumps the loop until the stream covers `total_elements` or
  /// `deadline` passes.
  bool run_until_complete(std::uint64_t total_elements, SimTime deadline);

  /// Flushes pending control traffic (ACKs in the TX queue) until
  /// `deadline`, then closes. Returns datagrams abandoned unsent.
  std::uint64_t drain(SimTime deadline);

 private:
  void handle_datagram(PooledBuffer&& buf, const UdpAddress& from);

  EventLoop& loop_;
  UdpReceiverSessionConfig cfg_;
  std::unique_ptr<UdpEndpoint> endpoint_;
  std::unique_ptr<IngressGuard> guard_;
  std::unique_ptr<ChunkTransportReceiver> receiver_;
  PacketBufferPool rx_pool_;
  std::vector<ChunkView> view_scratch_;
  /// Control replies go to the source of the last admitted datagram —
  /// which survives a SENDER restart from a new ephemeral port.
  std::optional<UdpAddress> reply_to_;
};

}  // namespace chunknet
