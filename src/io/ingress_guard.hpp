// The untrusted-peer front door.
//
// Everything arriving off a real socket is attacker-controlled bytes
// until proven otherwise. The guard sits between UdpEndpoint and the
// transport demux and applies three screens, in order of cost:
//
//  1. Per-source token bucket — a flooding source is throttled BEFORE
//     we spend cycles parsing its datagrams. Buckets live in a bounded
//     FlatMap; when full, the guard falls back to a shared overflow
//     bucket rather than growing without bound (an attacker rotating
//     source ports must not allocate memory per port).
//  2. Strict envelope decode — decode_packet_views() already rejects
//     bad magic, truncated headers, and length fields that overrun the
//     datagram. A datagram that fails here is counted and dropped;
//     nothing downstream ever sees a partially-valid view.
//  3. Refusal memory for unknown connection IDs — a C.ID the transport
//     has refused keeps getting refused here, cheaply, with a TTL so a
//     legitimately restarted peer can come back. Mirrors the demux's
//     RefusedEntry idiom at the socket boundary.
//
// Verdicts are counted per reason; the no-silent-drops rule applies to
// hostile traffic too — an operator watching metrics can tell a quiet
// network from a guard eating a flood.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/chunk/codec.hpp"
#include "src/common/flat_map.hpp"
#include "src/io/udp_endpoint.hpp"
#include "src/obs/obs.hpp"

namespace chunknet {

struct IngressGuardConfig {
  /// Token bucket: sustained datagrams/sec per source, with burst.
  double rate_per_sec{50'000.0};
  double burst{2'048.0};
  /// Max distinct sources tracked; beyond this, new sources share one
  /// overflow bucket (and are counted as untracked).
  std::size_t max_sources{1'024};
  /// Refused-C.ID memory: capacity and entry TTL.
  std::size_t max_refused{1'024};
  SimTime refused_ttl{5 * kSecond};
  ObsContext* obs{nullptr};
};

class IngressGuard {
 public:
  enum class Verdict : std::uint8_t {
    kAccept = 0,
    kRateLimited,    ///< source over its token budget
    kMalformed,      ///< strict decode failed
    kEmpty,          ///< valid envelope, zero chunks (nothing to do)
    kRefusedConn,    ///< all chunks target remembered-refused C.IDs
  };

  explicit IngressGuard(IngressGuardConfig cfg);

  /// Screens one datagram. On kAccept, `views` holds the decoded chunk
  /// views (pointing INTO `bytes` — same zero-copy contract as
  /// decode_packet_views). On anything else, `views` is empty and the
  /// datagram should be dropped by the caller.
  Verdict screen(const PacketBytes& bytes, const UdpAddress& from,
                 SimTime now, std::vector<ChunkView>& views);

  /// Remembers that the transport refused connection `conn` (unknown /
  /// evicted C.ID): future datagrams carrying only that C.ID are
  /// dropped at the door until the TTL lapses. Bounded: when full, the
  /// stalest entry is evicted.
  void remember_refusal(std::uint32_t conn, SimTime now);
  /// Forgets a refusal (e.g. the connection was re-admitted).
  void forget_refusal(std::uint32_t conn);
  bool is_refused(std::uint32_t conn, SimTime now) const;

  struct Stats {
    std::uint64_t accepted{0};
    std::uint64_t rate_limited{0};
    std::uint64_t malformed{0};
    std::uint64_t empty{0};
    std::uint64_t refused_conn{0};
    std::uint64_t untracked_sources{0};  ///< fell to the overflow bucket
    std::uint64_t refusals_remembered{0};
    std::uint64_t refusals_evicted{0};
  };
  const Stats& stats() const { return stats_; }
  std::size_t tracked_sources() const { return buckets_.size(); }
  std::size_t refused_size() const { return refused_.size(); }

 private:
  struct Bucket {
    double tokens;
    SimTime refilled_at;
  };
  struct RefusedEntry {
    SimTime expires_at;
  };

  bool take_token(Bucket& b, SimTime now);

  IngressGuardConfig cfg_;
  FlatMap<std::uint64_t, Bucket> buckets_;
  Bucket overflow_{};
  FlatMap<std::uint32_t, RefusedEntry> refused_;
  Stats stats_;
  struct {
    Counter* accepted{nullptr};
    Counter* rate_limited{nullptr};
    Counter* malformed{nullptr};
    Counter* refused_conn{nullptr};
  } m_;
};

}  // namespace chunknet
