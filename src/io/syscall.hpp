// The syscall seam between the real-I/O runtime and the kernel.
//
// Everything in src/io/ that touches the operating system goes through
// a SyscallShim, for two reasons:
//
//  1. determinism under test — FaultInjectingSyscalls wraps the real
//     shim and injects the failures a hostile world actually produces
//     (EINTR, EAGAIN, ENOBUFS, EMSGSIZE, ECONNREFUSED, partial
//     sendmmsg batches, short reads) on a seeded schedule, so the
//     chaos oracles can run against the REAL event loop and sockets
//     and still replay bit-for-bit;
//  2. honesty — every error path in the runtime exists because the
//     shim can produce it. There is no errno the endpoint handles that
//     a test cannot trigger on demand.
//
// The shim is deliberately thin: same signatures as the kernel calls
// (errno-returning, -1 on failure), so RealSyscalls is a transparent
// passthrough and reading the endpoint against `man 2 sendmmsg` works.
#pragma once

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <cstdint>
#include <deque>
#include <vector>

namespace chunknet {

/// Call sites the fault injector can target.
enum class IoCall : std::uint8_t {
  kSocket = 0,
  kBind,
  kConnect,
  kClose,
  kEpollCreate,
  kEpollCtl,
  kEpollWait,
  kRecvmmsg,
  kSendmmsg,
  kCallCount,  // sentinel
};

const char* to_string(IoCall c);

class SyscallShim {
 public:
  virtual ~SyscallShim() = default;

  virtual int sys_socket(int domain, int type, int protocol);
  virtual int sys_bind(int fd, const sockaddr* addr, socklen_t len);
  virtual int sys_connect(int fd, const sockaddr* addr, socklen_t len);
  virtual int sys_getsockname(int fd, sockaddr* addr, socklen_t* len);
  virtual int sys_setsockopt(int fd, int level, int optname,
                             const void* optval, socklen_t optlen);
  virtual int sys_close(int fd);
  virtual int sys_epoll_create1(int flags);
  virtual int sys_epoll_ctl(int epfd, int op, int fd, epoll_event* ev);
  virtual int sys_epoll_wait(int epfd, epoll_event* evs, int maxevents,
                             int timeout_ms);
  virtual int sys_recvmmsg(int fd, mmsghdr* msgs, unsigned n, int flags);
  virtual int sys_sendmmsg(int fd, mmsghdr* msgs, unsigned n, int flags);
  /// CLOCK_MONOTONIC in nanoseconds — the time base every io deadline
  /// (RTO, idle, backoff, drain) runs on. Never wall-clock: a clock
  /// step must not fire every timer in the process.
  virtual std::uint64_t sys_monotonic_ns();
};

/// The passthrough shim production code runs on.
using RealSyscalls = SyscallShim;

/// Returns the process-wide RealSyscalls instance.
SyscallShim& real_syscalls();

/// One scripted fault: the `after`-th upcoming call to `call` (0 = the
/// very next one) behaves per `err`/`partial` instead of reaching the
/// kernel.
struct InjectedFault {
  IoCall call{IoCall::kSendmmsg};
  std::uint32_t after{0};     ///< matching calls to let through first
  int err{0};                 ///< errno to fail with (0 = no errno fault)
  /// kSendmmsg: when >= 0 and err == 0, let the kernel send only the
  /// first `partial` datagrams of the batch and report a short count —
  /// the partial-batch path of sendmmsg(2).
  int partial{-1};
  /// kRecvmmsg: when > 0 and err == 0, chop `truncate_to` bytes off the
  /// FIRST received datagram's reported length after the real call — a
  /// short read. The wire bytes are intact; the length lies, which is
  /// exactly what the strict decoder must survive.
  std::uint32_t truncate_by{0};
};

/// Deterministic fault-injection decorator. Faults are consumed in the
/// order scripted per call site; unmatched calls pass through to the
/// inner shim. Counts every injection so tests can assert the fault
/// actually fired.
class FaultInjectingSyscalls final : public SyscallShim {
 public:
  explicit FaultInjectingSyscalls(SyscallShim& inner) : inner_(inner) {}

  /// Scripts one fault (FIFO per call site).
  void inject(InjectedFault f);
  /// Convenience: fail the next `count` calls to `call` with `err`.
  void fail_next(IoCall call, int err, std::uint32_t count = 1);

  struct Stats {
    std::uint64_t injected[static_cast<int>(IoCall::kCallCount)]{};
    std::uint64_t total() const {
      std::uint64_t t = 0;
      for (const std::uint64_t v : injected) t += v;
      return t;
    }
  };
  const Stats& stats() const { return stats_; }
  /// Faults scripted but not yet consumed.
  std::size_t pending() const;

  int sys_socket(int domain, int type, int protocol) override;
  int sys_bind(int fd, const sockaddr* addr, socklen_t len) override;
  int sys_connect(int fd, const sockaddr* addr, socklen_t len) override;
  int sys_close(int fd) override;
  int sys_epoll_create1(int flags) override;
  int sys_epoll_ctl(int epfd, int op, int fd, epoll_event* ev) override;
  int sys_epoll_wait(int epfd, epoll_event* evs, int maxevents,
                     int timeout_ms) override;
  int sys_recvmmsg(int fd, mmsghdr* msgs, unsigned n, int flags) override;
  int sys_sendmmsg(int fd, mmsghdr* msgs, unsigned n, int flags) override;
  std::uint64_t sys_monotonic_ns() override { return inner_.sys_monotonic_ns(); }

 private:
  /// Pops the front fault for `call` if its `after` gate has been
  /// reached; otherwise decrements the gate and returns false.
  bool take(IoCall call, InjectedFault& out);

  SyscallShim& inner_;
  std::deque<InjectedFault> faults_[static_cast<int>(IoCall::kCallCount)];
  Stats stats_;
};

}  // namespace chunknet
