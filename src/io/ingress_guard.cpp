#include "src/io/ingress_guard.hpp"

#include <algorithm>

namespace chunknet {

IngressGuard::IngressGuard(IngressGuardConfig cfg) : cfg_(cfg) {
  overflow_ = Bucket{cfg_.burst, 0};
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    MetricsRegistry& m = *cfg_.obs->metrics;
    m_.accepted = &m.counter("ingress.accepted");
    m_.rate_limited = &m.counter("ingress.rate_limited");
    m_.malformed = &m.counter("ingress.malformed");
    m_.refused_conn = &m.counter("ingress.refused_conn");
  }
}

bool IngressGuard::take_token(Bucket& b, SimTime now) {
  if (now > b.refilled_at) {
    const double dt =
        static_cast<double>(now - b.refilled_at) / static_cast<double>(kSecond);
    b.tokens = std::min(cfg_.burst, b.tokens + dt * cfg_.rate_per_sec);
    b.refilled_at = now;
  }
  if (b.tokens < 1.0) return false;
  b.tokens -= 1.0;
  return true;
}

IngressGuard::Verdict IngressGuard::screen(const PacketBytes& bytes,
                                           const UdpAddress& from,
                                           SimTime now,
                                           std::vector<ChunkView>& views) {
  views.clear();

  // Screen 1: rate limit, cheapest check first.
  Bucket* bucket = buckets_.find(from.key());
  if (bucket == nullptr) {
    if (buckets_.size() < cfg_.max_sources) {
      buckets_.insert_or_assign(from.key(), Bucket{cfg_.burst, now});
      bucket = buckets_.find(from.key());
    } else {
      ++stats_.untracked_sources;
      bucket = &overflow_;
    }
  }
  if (!take_token(*bucket, now)) {
    ++stats_.rate_limited;
    obs_add(m_.rate_limited);
    return Verdict::kRateLimited;
  }

  // Screen 2: strict envelope decode. Garbage, truncation, oversized
  // length fields, bad magic — all die here.
  if (!decode_packet_views(bytes, views)) {
    views.clear();
    ++stats_.malformed;
    obs_add(m_.malformed);
    return Verdict::kMalformed;
  }
  if (views.empty()) {
    ++stats_.empty;
    return Verdict::kEmpty;
  }

  // Screen 3: refusal memory. Only reject when EVERY chunk targets a
  // refused C.ID — a mixed packet still carries useful work.
  bool any_admissible = false;
  for (const ChunkView& v : views) {
    if (!is_refused(v.h.conn.id, now)) {
      any_admissible = true;
      break;
    }
  }
  if (!any_admissible) {
    views.clear();
    ++stats_.refused_conn;
    obs_add(m_.refused_conn);
    return Verdict::kRefusedConn;
  }

  ++stats_.accepted;
  obs_add(m_.accepted);
  return Verdict::kAccept;
}

void IngressGuard::remember_refusal(std::uint32_t conn, SimTime now) {
  if (refused_.size() >= cfg_.max_refused && refused_.find(conn) == nullptr) {
    // Bounded memory: evict the entry closest to expiry.
    std::uint32_t victim = 0;
    SimTime best = ~SimTime{0};
    for (const auto& e : refused_) {
      if (e.value.expires_at < best) {
        best = e.value.expires_at;
        victim = e.key;
      }
    }
    refused_.erase(victim);
    ++stats_.refusals_evicted;
  }
  refused_.insert_or_assign(conn, RefusedEntry{now + cfg_.refused_ttl});
  ++stats_.refusals_remembered;
}

void IngressGuard::forget_refusal(std::uint32_t conn) {
  refused_.erase(conn);
}

bool IngressGuard::is_refused(std::uint32_t conn, SimTime now) const {
  const RefusedEntry* e = refused_.find(conn);
  return e != nullptr && now < e->expires_at;
}

}  // namespace chunknet
