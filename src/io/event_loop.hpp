// The real-I/O event loop: epoll + the hierarchical timer wheel on
// CLOCK_MONOTONIC.
//
// This is the runtime that moves chunknet off the discrete-event
// simulator and onto real sockets. The trick that keeps the whole
// transport stack (sender, receiver, demux, governor — all written
// against `Simulator&`) reusable unchanged is that the loop OWNS a
// Simulator and pumps it with real time: SimTime is nanoseconds since
// the loop started, read from CLOCK_MONOTONIC through the syscall
// shim, and each poll iteration runs every simulator event whose
// deadline has passed. A deadline armed on the loop's SimTimerWheel
// (RTO, gap-NAK, idle, reconnect backoff) therefore fires on real
// time, and the epoll timeout is computed from the earliest pending
// deadline so the loop sleeps exactly as long as it may.
//
// Single-threaded by design: every callback (fd readiness, timer,
// datagram delivery) runs on the thread inside run()/poll_once(). The
// transport stack's single-writer assumptions carry over intact.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/flat_map.hpp"
#include "src/common/timer_wheel.hpp"
#include "src/io/syscall.hpp"
#include "src/netsim/simulator.hpp"
#include "src/obs/obs.hpp"

namespace chunknet {

struct EventLoopConfig {
  /// Syscall seam; null = the process-wide real shim.
  SyscallShim* sys{nullptr};
  /// Timer wheel tick. 1 ms matches the transport's deadline scale.
  SimTime timer_tick{1 * kMillisecond};
  /// Upper bound on one epoll sleep, so a loop with no armed deadline
  /// still re-checks stop flags and drains stray work.
  SimTime max_poll{50 * kMillisecond};
  /// Observability (optional). Metric names are prefixed "io.loop.".
  ObsContext* obs{nullptr};
};

class EventLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t epoll_events)>;

  explicit EventLoop(EventLoopConfig cfg = {});
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Nanoseconds since the loop was constructed (CLOCK_MONOTONIC).
  SimTime now() const;

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT/...). One callback
  /// per fd; re-adding an existing fd replaces events and callback.
  bool add_fd(int fd, std::uint32_t events, FdCallback cb);
  bool mod_fd(int fd, std::uint32_t events);
  void del_fd(int fd);

  /// The clock-and-deadline plumbing shared with the transport stack.
  Simulator& sim() { return sim_; }
  SimTimerWheel& timers() { return timers_; }
  SyscallShim& sys() { return *sys_; }

  /// One poll iteration: fire due timers, sleep at most until the next
  /// deadline (capped by `max_wait` and cfg.max_poll), dispatch fd
  /// events, fire timers that came due meanwhile. Returns the number
  /// of fd events dispatched.
  int poll_once(SimTime max_wait);

  /// Pumps until `done()` returns true or `deadline` (loop time)
  /// passes. Returns done()'s final value — false means timeout.
  bool run_until(const std::function<bool()>& done, SimTime deadline);

  /// Makes run_until return at the next iteration (callable from
  /// within a callback).
  void stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  struct Stats {
    std::uint64_t polls{0};
    std::uint64_t fd_events{0};
    std::uint64_t timer_fires{0};   ///< simulator events executed
    std::uint64_t eintr_retries{0}; ///< epoll_wait interrupted, retried
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Runs every due simulator event (which advances the wheel).
  void pump_timers();

  SyscallShim* sys_;
  EventLoopConfig cfg_;
  Simulator sim_;
  SimTimerWheel timers_;
  std::uint64_t epoch_ns_{0};
  int epfd_{-1};
  bool stopped_{false};
  FlatMap<int, FdCallback> fds_;
  std::vector<epoll_event> event_buf_;
  Stats stats_;
  Counter* c_eintr_{nullptr};
};

}  // namespace chunknet
