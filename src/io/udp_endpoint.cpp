#include "src/io/udp_endpoint.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <string.h>
#include <sys/socket.h>

#include <algorithm>

namespace chunknet {

namespace {

sockaddr_in to_sockaddr(const UdpAddress& a) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(a.ip_host_order);
  sa.sin_port = htons(a.port);
  return sa;
}

UdpAddress from_sockaddr(const sockaddr_in& sa) {
  UdpAddress a;
  a.ip_host_order = ntohl(sa.sin_addr.s_addr);
  a.port = ntohs(sa.sin_port);
  return a;
}

}  // namespace

UdpEndpoint::UdpEndpoint(EventLoop& loop, UdpEndpointConfig cfg)
    : loop_(loop),
      cfg_(cfg),
      sys_(loop.sys()),
      own_pool_(cfg.max_datagram),
      pool_(cfg.pool != nullptr ? cfg.pool : &own_pool_) {
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    MetricsRegistry& m = *cfg_.obs->metrics;
    m_.datagrams_sent = &m.counter("io.datagrams_sent");
    m_.datagrams_received = &m.counter("io.datagrams_received");
    m_.eintr_retries = &m.counter("io.eintr_retries");
    m_.tx_eagain = &m.counter("io.tx_eagain");
    m_.tx_enobufs = &m.counter("io.tx_enobufs");
    m_.tx_partial_batches = &m.counter("io.tx_partial_batches");
    m_.tx_oversize_dropped = &m.counter("io.tx_oversize_dropped");
    m_.tx_queue_dropped = &m.counter("io.tx_queue_dropped");
    m_.rx_truncated_dropped = &m.counter("io.rx_truncated_dropped");
    m_.peer_unreachable = &m.counter("io.peer_unreachable");
    m_.reconnects = &m.counter("io.reconnects");
    m_.tx_backpressure = &m.gauge("io.tx_backpressure");
    m_.tx_queued_bytes = &m.gauge("io.tx_queued_bytes");
  }

  fd_ = sys_.sys_socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (fd_ < 0) {
    last_errno_ = errno;
    return;
  }
  if (cfg_.so_rcvbuf > 0) {
    sys_.sys_setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &cfg_.so_rcvbuf,
                        sizeof(cfg_.so_rcvbuf));
  }
  if (cfg_.so_sndbuf > 0) {
    sys_.sys_setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &cfg_.so_sndbuf,
                        sizeof(cfg_.so_sndbuf));
  }
  sockaddr_in sa = to_sockaddr(cfg_.bind);
  if (sys_.sys_bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    last_errno_ = errno;
    sys_.sys_close(fd_);
    fd_ = -1;
    return;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (sys_.sys_getsockname(fd_, reinterpret_cast<sockaddr*>(&bound),
                           &blen) == 0) {
    local_ = from_sockaddr(bound);
  }
  if (cfg_.peer.has_value()) {
    sockaddr_in peer = to_sockaddr(*cfg_.peer);
    if (sys_.sys_connect(fd_, reinterpret_cast<sockaddr*>(&peer),
                         sizeof(peer)) != 0) {
      last_errno_ = errno;
      sys_.sys_close(fd_);
      fd_ = -1;
      return;
    }
  }
  loop_.add_fd(fd_, EPOLLIN, [this](std::uint32_t ev) {
    if ((ev & EPOLLIN) != 0) handle_readable();
    if ((ev & EPOLLOUT) != 0) flush();
    if ((ev & EPOLLERR) != 0) {
      // A connected UDP socket raises EPOLLERR when an ICMP error is
      // queued; the error pops out of the NEXT send or recv. Read
      // first — that consumes the pending error (recvmmsg returns
      // ECONNREFUSED) even when the TX queue is empty, so a
      // level-triggered EPOLLERR cannot spin — then retry TX.
      handle_readable();
      flush();
    }
  });
}

UdpEndpoint::~UdpEndpoint() {
  if (fd_ >= 0) {
    loop_.del_fd(fd_);
    sys_.sys_close(fd_);
    fd_ = -1;
  }
  release_tx(txq_bytes_);
  txq_bytes_ = 0;
}

void UdpEndpoint::charge_tx(std::uint64_t bytes) {
  if (cfg_.governor != nullptr && bytes > 0) {
    cfg_.governor->charge(cfg_.governor_client, ResourceClass::kStaging,
                          bytes);
  }
  obs_add(m_.tx_queued_bytes, static_cast<std::int64_t>(bytes));
}

void UdpEndpoint::release_tx(std::uint64_t bytes) {
  if (cfg_.governor != nullptr && bytes > 0) {
    cfg_.governor->release(cfg_.governor_client, ResourceClass::kStaging,
                           bytes);
  }
  obs_add(m_.tx_queued_bytes, -static_cast<std::int64_t>(bytes));
}

void UdpEndpoint::send(PacketBytes bytes) {
  enqueue(TxDatagram{std::move(bytes), UdpAddress{}, false});
}

void UdpEndpoint::send_to(PacketBytes bytes, const UdpAddress& dest) {
  enqueue(TxDatagram{std::move(bytes), dest, true});
}

void UdpEndpoint::enqueue(TxDatagram d) {
  if (closed_ || fd_ < 0) {
    // The socket is gone; be honest about the loss.
    ++stats_.tx_queue_dropped;
    obs_add(m_.tx_queue_dropped);
    return;
  }
  if (d.bytes.size() > cfg_.max_datagram) {
    // Would be EMSGSIZE at the kernel anyway — reject up front so one
    // oversized envelope cannot wedge the head of the queue.
    ++stats_.tx_oversize_dropped;
    obs_add(m_.tx_oversize_dropped);
    return;
  }
  if (txq_.size() >= cfg_.max_tx_queue) {
    // Drop the NEWEST datagram: the queued head is oldest and most
    // likely to be an in-flight retransmit the peer is waiting on.
    ++stats_.tx_queue_dropped;
    obs_add(m_.tx_queue_dropped);
    return;
  }
  charge_tx(d.bytes.size());
  txq_bytes_ += d.bytes.size();
  txq_.push_back(std::move(d));
  flush();
}

void UdpEndpoint::drop_tx_head(std::uint64_t* counter, Counter* metric) {
  if (txq_.empty()) return;
  const std::uint64_t n = txq_.front().bytes.size();
  txq_.pop_front();
  txq_bytes_ -= n;
  release_tx(n);
  ++*counter;
  obs_add(metric);
}

void UdpEndpoint::flush() {
  if (fd_ < 0) return;
  while (!txq_.empty()) {
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(txq_.size(), cfg_.tx_batch));
    // Build the sendmmsg batch over the queue head. iovecs point into
    // the queued PacketBytes — valid until pop_front.
    std::vector<mmsghdr> msgs(n);
    std::vector<iovec> iovs(n);
    std::vector<sockaddr_in> dests(n);
    for (unsigned i = 0; i < n; ++i) {
      TxDatagram& d = txq_[i];
      iovs[i].iov_base = d.bytes.data();
      iovs[i].iov_len = d.bytes.size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      if (d.explicit_dest && !cfg_.peer.has_value()) {
        dests[i] = to_sockaddr(d.dest);
        msgs[i].msg_hdr.msg_name = &dests[i];
        msgs[i].msg_hdr.msg_namelen = sizeof(dests[i]);
      }
    }
    int sent = sys_.sys_sendmmsg(fd_, msgs.data(), n, 0);
    if (sent < 0) {
      const int err = errno;
      last_errno_ = err;
      switch (err) {
        case EINTR:
          ++stats_.eintr_retries;
          obs_add(m_.eintr_retries);
          continue;  // retry the same batch
        case EAGAIN:
#if EAGAIN != EWOULDBLOCK
        case EWOULDBLOCK:
#endif
          // Socket buffer full: keep the queue, let EPOLLOUT call back.
          ++stats_.tx_eagain;
          obs_add(m_.tx_eagain);
          update_epollout();
          return;
        case ENOBUFS:
          // Kernel is out of buffer memory. Dropping here would be the
          // silent-loss path; instead hold the queue (its bytes stay
          // charged to the governor, shrinking credit grants upstream)
          // and retry after a backoff.
          ++stats_.tx_enobufs;
          obs_add(m_.tx_enobufs);
          enter_backpressure();
          arm_flush_in(cfg_.enobufs_backoff);
          return;
        case EMSGSIZE:
          // Only the head datagram is at fault; drop it VISIBLY and
          // keep the rest of the queue moving.
          drop_tx_head(&stats_.tx_oversize_dropped, m_.tx_oversize_dropped);
          continue;
        case ECONNREFUSED:
          handle_conn_refused();
          return;
        default:
          // Unknown kernel refusal: treat like EAGAIN but bounded —
          // drop the head so a permanently poisoned datagram cannot
          // wedge the queue forever, then retry the rest later.
          drop_tx_head(&stats_.tx_queue_dropped, m_.tx_queue_dropped);
          arm_flush_in(cfg_.enobufs_backoff);
          return;
      }
    }
    ++stats_.sendmmsg_calls;
    if (static_cast<unsigned>(sent) < n) {
      ++stats_.tx_partial_batches;
      obs_add(m_.tx_partial_batches);
    }
    for (int i = 0; i < sent; ++i) {
      const std::uint64_t sz = txq_.front().bytes.size();
      txq_.pop_front();
      txq_bytes_ -= sz;
      release_tx(sz);
      ++stats_.datagrams_sent;
      stats_.bytes_sent += sz;
    }
    obs_add(m_.datagrams_sent, static_cast<std::uint64_t>(sent));
    // Progress resets the peer-gone backoff.
    reconnect_backoff_ = 0;
  }
  // Queue fully drained.
  leave_backpressure();
  update_epollout();
}

void UdpEndpoint::update_epollout() {
  const bool want = !txq_.empty();
  if (want == epollout_armed_ || fd_ < 0) return;
  // After shutdown() begins, RX interest stays off — a level-triggered
  // EPOLLIN on a socket we refuse to read would spin the drain loop.
  const std::uint32_t base = closed_ ? 0u : static_cast<std::uint32_t>(EPOLLIN);
  const std::uint32_t ev =
      base | (want ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  if (loop_.mod_fd(fd_, ev)) epollout_armed_ = want;
}

void UdpEndpoint::enter_backpressure() {
  if (backpressure_) return;
  backpressure_ = true;
  ++stats_.backpressure_episodes;
  obs_set(m_.tx_backpressure, 1);
  if (on_backpressure_) on_backpressure_(true);
}

void UdpEndpoint::leave_backpressure() {
  if (!backpressure_) return;
  backpressure_ = false;
  obs_set(m_.tx_backpressure, 0);
  if (on_backpressure_) on_backpressure_(false);
}

void UdpEndpoint::handle_conn_refused() {
  // ICMP port-unreachable from the peer: its socket is gone (process
  // died or restarted). Keep the queue — the transport's RTO state is
  // the source of truth for what must be retransmitted — and retry on
  // a bounded exponential backoff so a dead peer costs little CPU.
  ++stats_.peer_unreachable;
  obs_add(m_.peer_unreachable);
  if (reconnect_backoff_ == 0) {
    reconnect_backoff_ = cfg_.reconnect_backoff_min;
  } else {
    reconnect_backoff_ =
        std::min(reconnect_backoff_ * 2, cfg_.reconnect_backoff_max);
  }
  ++stats_.reconnects;
  obs_add(m_.reconnects);
  arm_flush_in(reconnect_backoff_);
  if (on_peer_unreachable_) on_peer_unreachable_();
}

void UdpEndpoint::arm_flush_in(SimTime delay) {
  if (flush_timer_armed_) return;
  flush_timer_armed_ = true;
  loop_.timers().arm_in(delay, [this] {
    flush_timer_armed_ = false;
    flush();
  });
}

void UdpEndpoint::handle_readable() {
  unsigned delivered = 0;
  while (delivered < cfg_.max_rx_per_poll) {
    const int got = rx_batch_once();
    if (got < 0) break;  // EAGAIN: drained
    delivered += static_cast<unsigned>(got);
    if (static_cast<unsigned>(got) < cfg_.rx_batch) break;  // short batch
  }
}

int UdpEndpoint::rx_batch_once() {
  if (fd_ < 0 || closed_) return -1;
  const unsigned n = cfg_.rx_batch;
  std::vector<PooledBuffer> bufs;
  bufs.reserve(n);
  std::vector<mmsghdr> msgs(n);
  std::vector<iovec> iovs(n);
  std::vector<sockaddr_in> srcs(n);
  for (unsigned i = 0; i < n; ++i) {
    bufs.push_back(pool_->acquire());
    PacketBytes& b = bufs.back().bytes();
    b.resize_uninitialized(cfg_.max_datagram);
    iovs[i].iov_base = b.data();
    iovs[i].iov_len = b.size();
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
    msgs[i].msg_hdr.msg_name = &srcs[i];
    msgs[i].msg_hdr.msg_namelen = sizeof(srcs[i]);
  }
  int got;
  for (;;) {
    got = sys_.sys_recvmmsg(fd_, msgs.data(), n, MSG_TRUNC);
    if (got >= 0) break;
    const int err = errno;
    if (err == EINTR) {
      ++stats_.eintr_retries;
      obs_add(m_.eintr_retries);
      continue;
    }
    if (err == ECONNREFUSED) {
      // Connected socket: the queued ICMP error pops out of the
      // receive path too. Same peer-gone handling, keep reading after.
      last_errno_ = err;
      handle_conn_refused();
      continue;
    }
    last_errno_ = err;
    return -1;  // EAGAIN or a hard error: nothing readable now
  }
  // A successful batch proves the peer's socket exists again.
  if (got > 0) reconnect_backoff_ = 0;
  ++stats_.recvmmsg_calls;
  int usable = 0;
  for (int i = 0; i < got; ++i) {
    const std::size_t len = msgs[i].msg_len;
    if ((msgs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0 ||
        len > cfg_.max_datagram) {
      // Datagram larger than our buffer: the tail is gone, and a
      // truncated envelope must never reach the decoder as if whole.
      ++stats_.rx_truncated_dropped;
      obs_add(m_.rx_truncated_dropped);
      continue;
    }
    PacketBytes& b = bufs[static_cast<std::size_t>(i)].bytes();
    b.resize_uninitialized(len);  // shrink: keeps the bytes, fixes size
    ++stats_.datagrams_received;
    stats_.bytes_received += len;
    obs_add(m_.datagrams_received);
    if (on_datagram_) {
      on_datagram_(std::move(bufs[static_cast<std::size_t>(i)]),
                   from_sockaddr(srcs[static_cast<std::size_t>(i)]));
    }
    ++usable;
  }
  // Unused buffers return to the pool via ~PooledBuffer.
  (void)usable;
  return got;
}

std::uint64_t UdpEndpoint::shutdown(SimTime deadline) {
  if (closed_) return 0;
  closed_ = true;  // no new enqueues, no more RX delivery
  if (fd_ >= 0) {
    loop_.mod_fd(fd_, txq_.empty() ? 0u : static_cast<std::uint32_t>(EPOLLOUT));
    epollout_armed_ = !txq_.empty();
  }
  // Best-effort final flush loop: poll EPOLLOUT readiness by retrying
  // directly; shutdown runs outside poll_once so timers cannot help.
  while (!txq_.empty() && loop_.now() < deadline) {
    const std::size_t before = txq_.size();
    flush();
    if (txq_.size() == before) {
      // No progress (EAGAIN/ENOBUFS/refused): give the kernel a poll
      // tick to drain its buffers, bounded by the deadline.
      const SimTime t = loop_.now();
      if (t >= deadline) break;
      loop_.poll_once(std::min<SimTime>(deadline - t, kMillisecond));
    }
  }
  // Whatever is still queued did NOT reach the wire. Count it.
  std::uint64_t abandoned = 0;
  while (!txq_.empty()) {
    drop_tx_head(&stats_.tx_queue_dropped, m_.tx_queue_dropped);
    ++abandoned;
  }
  if (fd_ >= 0) {
    loop_.del_fd(fd_);
    sys_.sys_close(fd_);
    fd_ = -1;
  }
  leave_backpressure();
  return abandoned;
}

}  // namespace chunknet
