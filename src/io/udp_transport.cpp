#include "src/io/udp_transport.hpp"

#include <utility>

#include "src/chunk/codec.hpp"

namespace chunknet {

UdpSenderSession::UdpSenderSession(EventLoop& loop,
                                   UdpSenderSessionConfig cfg)
    : loop_(loop) {
  UdpEndpointConfig ec = cfg.endpoint;
  ec.bind = cfg.bind;
  ec.peer = cfg.peer;
  if (ec.obs == nullptr) ec.obs = cfg.obs;
  if (ec.pool == nullptr) ec.pool = &feedback_pool_;
  endpoint_ = std::make_unique<UdpEndpoint>(loop, std::move(ec));

  SenderConfig sc = std::move(cfg.sender);
  if (sc.obs == nullptr) sc.obs = cfg.obs;
  if (sc.timers == nullptr) sc.timers = &loop.timers();
  sc.send_packet = [this](PacketBytes bytes) {
    endpoint_->send(std::move(bytes));
  };
  sender_ =
      std::make_unique<ChunkTransportSender>(loop.sim(), std::move(sc));

  // Feedback path: ACK/NAK/grant packets from the receiver. The sender
  // decodes the envelope itself; malformed feedback dies in its strict
  // decoder exactly like malformed data dies in the receiver's.
  endpoint_->on_datagram(
      [this](PooledBuffer&& buf, const UdpAddress& /*from*/) {
        SimPacket pkt;
        pkt.bytes = buf.take();
        pkt.id = loop_.sim().next_packet_id();
        pkt.created_at = loop_.sim().now();
        sender_->on_packet(std::move(pkt));
      });
}

bool UdpSenderSession::run_until_finished(SimTime deadline) {
  return loop_.run_until(
      [this] {
        return sender_->finished() && endpoint_->tx_queued() == 0;
      },
      deadline);
}

DrainReport UdpSenderSession::drain(SimTime deadline) {
  run_until_finished(deadline);
  DrainReport r;
  r.tpdus_gave_up = sender_->stats().gave_up;
  r.tpdus_abandoned = sender_->abandon_outstanding();
  r.tpdus_acked = sender_->stats().tpdus_acked;
  r.datagrams_unsent = endpoint_->shutdown(deadline);
  r.clean = r.tpdus_gave_up == 0 && r.tpdus_abandoned == 0 &&
            r.datagrams_unsent == 0;
  return r;
}

UdpReceiverSession::UdpReceiverSession(EventLoop& loop,
                                       UdpReceiverSessionConfig cfg)
    : loop_(loop), cfg_(std::move(cfg)) {
  UdpEndpointConfig ec = cfg_.endpoint;
  ec.bind = cfg_.bind;
  ec.peer.reset();  // receivers answer whoever shows up
  if (ec.obs == nullptr) ec.obs = cfg_.obs;
  if (ec.pool == nullptr) ec.pool = &rx_pool_;
  endpoint_ = std::make_unique<UdpEndpoint>(loop, std::move(ec));

  IngressGuardConfig gc = cfg_.guard;
  if (gc.obs == nullptr) gc.obs = cfg_.obs;
  guard_ = std::make_unique<IngressGuard>(gc);

  ReceiverConfig rc = std::move(cfg_.receiver);
  if (rc.obs == nullptr) rc.obs = cfg_.obs;
  if (rc.timers == nullptr) rc.timers = &loop.timers();
  rc.send_control = [this](Chunk ctrl) {
    if (!reply_to_.has_value()) return;  // no admitted sender yet
    PacketBytes body =
        encode_packet(std::span<const Chunk>(&ctrl, 1), 1500);
    endpoint_->send_to(std::move(body), *reply_to_);
  };
  receiver_ =
      std::make_unique<ChunkTransportReceiver>(loop.sim(), std::move(rc));

  endpoint_->on_datagram([this](PooledBuffer&& buf, const UdpAddress& from) {
    handle_datagram(std::move(buf), from);
  });
}

void UdpReceiverSession::handle_datagram(PooledBuffer&& buf,
                                         const UdpAddress& from) {
  const SimTime now = loop_.sim().now();
  const IngressGuard::Verdict v =
      guard_->screen(buf.bytes(), from, now, view_scratch_);
  if (v != IngressGuard::Verdict::kAccept) return;  // counted by the guard

  // An accepted datagram that carries only foreign C.IDs teaches the
  // refusal memory; one that carries ours updates the reply path.
  bool any_ours = false;
  for (const ChunkView& cv : view_scratch_) {
    if (cv.h.conn.id == cfg_.receiver.connection_id) {
      any_ours = true;
      break;
    }
  }
  if (!any_ours) {
    for (const ChunkView& cv : view_scratch_) {
      guard_->remember_refusal(cv.h.conn.id, now);
    }
    return;
  }
  reply_to_ = from;

  const std::uint64_t pkt_id = loop_.sim().next_packet_id();
  // The pooled buffer stays alive (and unmoved) in `buf` for the whole
  // loop — the views alias it. ~PooledBuffer recycles it afterwards.
  for (const ChunkView& cv : view_scratch_) {
    receiver_->on_chunk_view(cv, now, pkt_id);
  }
  view_scratch_.clear();
}

bool UdpReceiverSession::run_until_complete(std::uint64_t total_elements,
                                            SimTime deadline) {
  return loop_.run_until(
      [this, total_elements] {
        return receiver_->stream_complete(total_elements);
      },
      deadline);
}

std::uint64_t UdpReceiverSession::drain(SimTime deadline) {
  // Let queued ACKs out before closing; the sender's RTO depends on
  // the last ACK making it more often than not.
  loop_.run_until([this] { return endpoint_->tx_queued() == 0; }, deadline);
  return endpoint_->shutdown(deadline);
}

}  // namespace chunknet
