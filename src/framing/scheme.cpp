#include "src/framing/scheme.hpp"

namespace chunknet {

const char* to_string(FieldSupport f) {
  switch (f) {
    case FieldSupport::kExplicit: return "explicit";
    case FieldSupport::kImplicit: return "implicit";
    case FieldSupport::kAbsent: return "-";
  }
  return "?";
}

const char* to_string(DisorderTolerance d) {
  switch (d) {
    case DisorderTolerance::kNone: return "none";
    case DisorderTolerance::kPartial: return "partial";
    case DisorderTolerance::kFull: return "full";
  }
  return "?";
}

std::vector<std::unique_ptr<FramingScheme>> all_schemes() {
  std::vector<std::unique_ptr<FramingScheme>> v;
  v.push_back(make_chunk_scheme());
  v.push_back(make_aal5_scheme());
  v.push_back(make_aal34_scheme());
  v.push_back(make_hdlc_scheme());
  v.push_back(make_urp_scheme());
  v.push_back(make_delta_t_scheme());
  v.push_back(make_ip_scheme());
  v.push_back(make_vmtp_scheme());
  v.push_back(make_xtp_scheme());
  v.push_back(make_axon_scheme());
  return v;
}

}  // namespace chunknet
