// The chunk syntax as a FramingScheme — the first row of the Appendix B
// comparison, implemented by delegation to the real chunk library so
// the comparison measures the genuine article.
#include "src/chunk/builder.hpp"
#include "src/chunk/codec.hpp"
#include "src/chunk/packetizer.hpp"
#include "src/framing/scheme.hpp"

namespace chunknet {

namespace {

class ChunkScheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "chunks";
    c.reference = "(this paper)";
    c.disorder = DisorderTolerance::kFull;
    c.framing_levels = 3;
    c.type = FieldSupport::kExplicit;
    c.len = FieldSupport::kExplicit;
    c.size = FieldSupport::kExplicit;
    c.c_id = FieldSupport::kExplicit;
    c.c_sn = FieldSupport::kExplicit;
    c.c_st = FieldSupport::kExplicit;
    c.t_id = FieldSupport::kExplicit;
    c.t_sn = FieldSupport::kExplicit;
    c.t_st = FieldSupport::kExplicit;
    c.x_id = FieldSupport::kExplicit;
    c.x_sn = FieldSupport::kExplicit;
    c.x_st = FieldSupport::kExplicit;
    c.notes = "all framing explicit at all levels; independent frames";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes, std::size_t mtu) const override {
    FramerOptions fo;
    fo.element_size = 4;
    fo.tpdu_elements = static_cast<std::uint32_t>(tpdu_bytes / 4);
    if (fo.tpdu_elements == 0) fo.tpdu_elements = 1;
    fo.xpdu_elements = fo.tpdu_elements;  // aligned X framing for parity
    // Streams not word-multiple are padded for this comparison.
    std::vector<std::uint8_t> padded(stream.begin(), stream.end());
    while (padded.size() % 4 != 0) padded.push_back(0);
    auto chunks = frame_stream(padded, fo);

    PacketizerOptions po;
    po.mtu = mtu;
    auto packed = packetize(std::move(chunks), po);

    CarriedPayload out;
    out.packets = std::move(packed.packets);
    out.header_bytes = packed.header_bytes;
    out.payload_bytes = packed.payload_bytes;
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    const ParsedPacket parsed = decode_packet(unit);
    if (!parsed.ok || parsed.chunks.empty()) return ins;
    ins.parsed = true;
    ins.knows_connection = true;     // C.ID in every chunk
    ins.knows_stream_offset = true;  // C.SN places every element
    ins.knows_pdu_boundary = false;
    for (const Chunk& c : parsed.chunks) {
      ins.payload_bytes += c.payload.size();
      if (c.h.tpdu.st || c.h.xpdu.st) ins.knows_pdu_boundary = true;
    }
    return ins;
  }
};

}  // namespace

std::unique_ptr<FramingScheme> make_chunk_scheme() {
  return std::make_unique<ChunkScheme>();
}

}  // namespace chunknet
