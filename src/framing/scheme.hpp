// Protocol-framing comparison substrate (paper Appendix B).
//
// Appendix B compares the chunk syntax with nine existing protocols by
// asking, for each framing field of the chunk model (TYPE, SIZE, LEN,
// C/T/X × ID/SN/ST), whether the protocol carries it explicitly,
// derives it implicitly (and from what), or lacks it — and consequently
// whether a receiver can process a *disordered* arrival immediately.
//
// Each adapter here implements a real header codec for its protocol
// (realistic field widths and layouts), plus the capability matrix the
// appendix states in prose. Bench E9 regenerates the appendix as a
// table from these adapters; bench E8 uses them to measure the
// demultiplexing cost of mixed fragment/whole-PDU arrivals.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/chunk/types.hpp"

namespace chunknet {

/// How a protocol conveys one of the chunk model's framing fields.
enum class FieldSupport : std::uint8_t {
  kExplicit,  ///< carried in every unit's header/trailer
  kImplicit,  ///< derivable (from position, another field, or channel state)
  kAbsent,    ///< not available at all
};

const char* to_string(FieldSupport f);

/// How much disorder a receiver of this protocol can accept while still
/// processing arrivals immediately.
enum class DisorderTolerance : std::uint8_t {
  kNone,     ///< strictly in-order channel assumed (e.g. AAL5, HDLC)
  kPartial,  ///< some framing levels survive disorder, others don't
  kFull,     ///< every arrival is self-describing (chunks, Axon-style)
};

const char* to_string(DisorderTolerance d);

/// Appendix-B row: per-field support matrix plus summary properties.
struct FramingCapabilities {
  std::string name;
  std::string reference;  ///< citation tag from the paper
  DisorderTolerance disorder{DisorderTolerance::kNone};
  int framing_levels{1};

  FieldSupport type{FieldSupport::kAbsent};
  FieldSupport len{FieldSupport::kAbsent};
  FieldSupport size{FieldSupport::kAbsent};  ///< implicit for everything but chunks
  FieldSupport c_id{FieldSupport::kAbsent}, c_sn{FieldSupport::kAbsent},
      c_st{FieldSupport::kAbsent};
  FieldSupport t_id{FieldSupport::kAbsent}, t_sn{FieldSupport::kAbsent},
      t_st{FieldSupport::kAbsent};
  FieldSupport x_id{FieldSupport::kAbsent}, x_sn{FieldSupport::kAbsent},
      x_st{FieldSupport::kAbsent};
  std::string notes;
};

/// Result of carrying a payload under a scheme.
struct CarriedPayload {
  std::vector<std::vector<std::uint8_t>> packets;  ///< wire units (cells/frames/datagrams)
  std::uint64_t header_bytes{0};
  std::uint64_t payload_bytes{0};
  double efficiency() const {
    const double total = static_cast<double>(header_bytes + payload_bytes);
    return total > 0 ? static_cast<double>(payload_bytes) / total : 0.0;
  }
};

/// What a receiver can conclude from ONE wire unit arriving with no
/// other context (the crux of the disorder argument).
struct UnitInsight {
  bool parsed{false};
  bool knows_connection{false};     ///< can demultiplex
  bool knows_stream_offset{false};  ///< can place payload in app memory
  bool knows_pdu_boundary{false};   ///< can detect end-of-PDU
  std::size_t payload_bytes{0};
};

/// A protocol adapter. `carry` expresses a TPDU-framed byte stream in
/// the protocol's own wire syntax, fragmenting to the given MTU;
/// `inspect` decodes a single wire unit *without inter-unit state* and
/// reports what an immediate processor could do with it.
class FramingScheme {
 public:
  virtual ~FramingScheme() = default;

  virtual FramingCapabilities capabilities() const = 0;

  /// Carries `stream` as a sequence of `tpdu_bytes`-sized PDUs over
  /// wire units of at most `mtu` bytes.
  virtual CarriedPayload carry(std::span<const std::uint8_t> stream,
                               std::size_t tpdu_bytes,
                               std::size_t mtu) const = 0;

  virtual UnitInsight inspect(std::span<const std::uint8_t> unit) const = 0;
};

/// All Appendix-B schemes, chunks first.
std::vector<std::unique_ptr<FramingScheme>> all_schemes();

// Individual factories (each defined in its scheme's translation unit).
std::unique_ptr<FramingScheme> make_chunk_scheme();
std::unique_ptr<FramingScheme> make_aal5_scheme();
std::unique_ptr<FramingScheme> make_aal34_scheme();
std::unique_ptr<FramingScheme> make_hdlc_scheme();
std::unique_ptr<FramingScheme> make_urp_scheme();
std::unique_ptr<FramingScheme> make_delta_t_scheme();
std::unique_ptr<FramingScheme> make_ip_scheme();
std::unique_ptr<FramingScheme> make_vmtp_scheme();
std::unique_ptr<FramingScheme> make_xtp_scheme();
std::unique_ptr<FramingScheme> make_axon_scheme();

}  // namespace chunknet
