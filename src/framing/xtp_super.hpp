// XTP SUPER packets (paper §3.2, [XTP 90]).
//
// "XTP also has a scheme similar to that of combining multiple chunks
// in a single packet. An XTP SUPER packet is a packet that contains
// multiple XTP TPDUs. However, the SUPER packet format is not the same
// as the regular XTP packet format. Chunks have the same format
// regardless of what fragmentation, reassembly, or chunk combining may
// have occurred."
//
// This header implements the SUPER packet so the comparison is live: a
// receiver of XTP traffic needs BOTH parsers and a dispatch between
// them, while the chunk receiver's one parser covers single-chunk
// packets, combined packets and fragmented packets alike (tested in
// tests/test_xtp_super.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace chunknet {

/// Wire: magic 'S'(1) | count(2) | count × [len(2) unit-bytes].
inline constexpr std::uint8_t kXtpSuperMagic = 'S';

/// Builds one SUPER packet from regular XTP packets. Returns an empty
/// vector if the result would exceed `capacity`.
std::vector<std::uint8_t> xtp_super_packet(
    std::span<const std::vector<std::uint8_t>> units, std::size_t capacity);

struct XtpSuperParse {
  bool ok{false};
  /// Views into the SUPER packet's buffer, one per contained TPDU.
  std::vector<std::span<const std::uint8_t>> units;
};

XtpSuperParse parse_xtp_super_packet(std::span<const std::uint8_t> bytes);

}  // namespace chunknet
