#include "src/framing/xtp_super.hpp"

#include "src/common/bytes.hpp"

namespace chunknet {

std::vector<std::uint8_t> xtp_super_packet(
    std::span<const std::vector<std::uint8_t>> units, std::size_t capacity) {
  std::size_t total = 3;
  for (const auto& u : units) total += 2 + u.size();
  if (total > capacity || units.size() > 0xFFFF) return {};

  std::vector<std::uint8_t> out;
  out.reserve(total);
  ByteWriter w(out);
  w.u8(kXtpSuperMagic);
  w.u16(static_cast<std::uint16_t>(units.size()));
  for (const auto& u : units) {
    w.u16(static_cast<std::uint16_t>(u.size()));
    w.bytes(u);
  }
  return out;
}

XtpSuperParse parse_xtp_super_packet(std::span<const std::uint8_t> bytes) {
  XtpSuperParse result;
  ByteReader r(bytes);
  if (r.u8() != kXtpSuperMagic) return result;
  const std::uint16_t count = r.u16();
  if (!r.ok()) return result;
  result.units.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint16_t len = r.u16();
    const auto view = r.bytes(len);
    if (!r.ok()) return result;
    result.units.push_back(view);
  }
  if (r.remaining() != 0) return result;
  result.ok = true;
  return result;
}

}  // namespace chunknet
