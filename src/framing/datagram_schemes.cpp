// Datagram/transaction schemes of Appendix B: IP fragmentation
// [POST 81], VMTP [CHER 86], XTP [XTP 90] and Axon [STER 90]. These are
// the protocols designed for misordering channels, each solving part of
// the problem chunks solve in full.
#include <algorithm>

#include "src/common/bytes.hpp"
#include "src/framing/scheme.hpp"

namespace chunknet {

namespace {

// ------------------------------------------------------------------- IP

class IpScheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "IP-frag";
    c.reference = "[POST 81]";
    c.disorder = DisorderTolerance::kPartial;
    c.framing_levels = 1;
    c.type = FieldSupport::kImplicit;
    c.len = FieldSupport::kExplicit;
    c.size = FieldSupport::kImplicit;
    c.t_id = FieldSupport::kExplicit;  // identification field
    c.t_sn = FieldSupport::kExplicit;  // fragment offset
    c.t_st = FieldSupport::kExplicit;  // ¬MF bit
    c.c_id = FieldSupport::kExplicit;  // address pair + protocol
    c.c_sn = FieldSupport::kAbsent;    // no stream sequencing at IP
    c.c_st = FieldSupport::kAbsent;
    c.notes = "fragments placeable within a datagram, not within stream";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes, std::size_t mtu) const override {
    CarriedPayload out;
    out.payload_bytes = stream.size();
    constexpr std::size_t kIpHeader = 20;
    // fragment payloads must be multiples of 8 bytes except the last
    const std::size_t frag_body = ((mtu - kIpHeader) / 8) * 8;
    std::uint16_t ident = 1;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t dgram = std::min(tpdu_bytes, stream.size() - pos);
      std::size_t off = 0;
      while (off < dgram) {
        const std::size_t n = std::min(frag_body, dgram - off);
        const bool more = off + n < dgram;
        std::vector<std::uint8_t> pkt;
        pkt.reserve(kIpHeader + n);
        ByteWriter w(pkt);
        w.u8(0x45);  // version + IHL
        w.u8(0);     // TOS
        w.u16(static_cast<std::uint16_t>(kIpHeader + n));  // total length
        w.u16(ident);
        const std::uint16_t frag_field = static_cast<std::uint16_t>(
            ((more ? 0x2000 : 0x0000)) | ((off / 8) & 0x1FFF));
        w.u16(frag_field);
        w.u8(64);    // TTL
        w.u8(253);   // protocol
        w.u16(0);    // checksum placeholder
        w.u32(0x0A000001);  // src
        w.u32(0x0A000002);  // dst
        w.bytes(stream.subspan(pos + off, n));
        out.packets.push_back(std::move(pkt));
        out.header_bytes += kIpHeader;
        off += n;
      }
      ++ident;
      pos += dgram;
    }
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    if (unit.size() < 20 || unit[0] != 0x45) return ins;
    ByteReader r(unit);
    r.skip(2);
    const std::uint16_t total = r.u16();
    r.u16();  // ident
    const std::uint16_t frag = r.u16();
    if (!r.ok() || total != unit.size()) return ins;
    ins.parsed = true;
    ins.knows_connection = true;  // addresses + protocol + ident
    // A fragment knows its offset *within its datagram* — it can be
    // placed in the datagram's reassembly buffer, but the datagram's
    // place in the application stream is known only to the transport
    // header inside fragment 0. This is the paper's §3.2 point: the
    // receiver must branch on "complete PDU vs fragment" and buffer.
    ins.knows_stream_offset = (frag & 0x1FFF) == 0;
    ins.knows_pdu_boundary = (frag & 0x2000) == 0;  // ¬MF: last fragment
    ins.payload_bytes = unit.size() - 20;
    return ins;
  }
};

// ----------------------------------------------------------------- VMTP

class VmtpScheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "VMTP";
    c.reference = "[CHER 86]";
    c.disorder = DisorderTolerance::kPartial;
    c.framing_levels = 2;
    c.type = FieldSupport::kImplicit;  // per-packet ED, by position
    c.len = FieldSupport::kImplicit;
    c.size = FieldSupport::kImplicit;
    c.c_id = FieldSupport::kExplicit;  // client/transaction addressing
    c.t_id = FieldSupport::kImplicit;  // error detection per packet
    c.t_sn = FieldSupport::kImplicit;
    c.t_st = FieldSupport::kImplicit;
    c.x_id = FieldSupport::kExplicit;  // transaction identifier
    c.x_sn = FieldSupport::kExplicit;  // segOffset
    c.x_st = FieldSupport::kExplicit;  // End-of-Message
    c.notes = "message segments placeable by segOffset within transaction";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes, std::size_t mtu) const override {
    CarriedPayload out;
    out.payload_bytes = stream.size();
    constexpr std::size_t kHeader = 28;  // abridged VMTP header
    const std::size_t body = std::min(tpdu_bytes, mtu - kHeader);
    std::uint32_t transaction = 1;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t msg = std::min(tpdu_bytes, stream.size() - pos);
      std::size_t off = 0;
      while (off < msg) {
        const std::size_t n = std::min(body, msg - off);
        std::vector<std::uint8_t> pkt;
        pkt.reserve(kHeader + n);
        ByteWriter w(pkt);
        w.u64(0xC11E'27A5'0000'0001ull);  // client id
        w.u32(transaction);               // X.ID
        w.u32(static_cast<std::uint32_t>(off));  // segOffset (X.SN)
        w.u32(static_cast<std::uint32_t>(n));
        const bool eom = off + n >= msg;
        w.u32(eom ? 1u : 0u);             // flags incl. End-of-Message
        w.u32(0);                         // per-packet checksum slot
        w.bytes(stream.subspan(pos + off, n));
        out.packets.push_back(std::move(pkt));
        out.header_bytes += kHeader;
        off += n;
      }
      ++transaction;
      pos += msg;
    }
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    if (unit.size() < 28) return ins;
    ByteReader r(unit);
    r.u64();
    r.u32();
    r.u32();  // segOffset
    const std::uint32_t n = r.u32();
    const std::uint32_t flags = r.u32();
    if (!r.ok() || unit.size() != 28u + n) return ins;
    ins.parsed = true;
    ins.knows_connection = true;
    ins.knows_stream_offset = true;  // segOffset within the transaction
    ins.knows_pdu_boundary = (flags & 1u) != 0;
    ins.payload_bytes = n;
    return ins;
  }
};

// ------------------------------------------------------------------ XTP

class XtpScheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "XTP";
    c.reference = "[XTP 90]";
    c.disorder = DisorderTolerance::kPartial;
    c.framing_levels = 2;
    c.type = FieldSupport::kImplicit;
    c.len = FieldSupport::kExplicit;
    c.size = FieldSupport::kImplicit;
    c.c_id = FieldSupport::kExplicit;  // key field
    c.c_sn = FieldSupport::kExplicit;  // seq (byte sequence)
    c.c_st = FieldSupport::kImplicit;
    c.t_id = FieldSupport::kImplicit;  // PDU ≤ packet: per-packet TPDUs
    c.t_sn = FieldSupport::kImplicit;
    c.t_st = FieldSupport::kImplicit;
    c.x_st = FieldSupport::kExplicit;  // BTAG/ETAG delimiters
    c.x_id = FieldSupport::kImplicit;  // from C.SN and ETAG
    c.x_sn = FieldSupport::kImplicit;
    c.notes = "converts big PDUs to per-packet TPDUs; SUPER packets combine";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes, std::size_t mtu) const override {
    CarriedPayload out;
    out.payload_bytes = stream.size();
    // XTP: every packet is a self-contained TPDU — header (24) +
    // trailer (4) in EVERY packet; "the overhead of all PDUs must be
    // carried in each packet" (§3.2).
    constexpr std::size_t kHeader = 24;
    constexpr std::size_t kTrailer = 4;
    const std::size_t body = std::min(tpdu_bytes, mtu - kHeader - kTrailer);
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t n = std::min(body, stream.size() - pos);
      std::vector<std::uint8_t> pkt;
      pkt.reserve(kHeader + n + kTrailer);
      ByteWriter w(pkt);
      w.u32(kKey);                              // key (C.ID)
      w.u32(0x00010000);                        // cmd/options
      w.u32(static_cast<std::uint32_t>(pos));   // seq (C.SN in bytes)
      w.u32(static_cast<std::uint32_t>(n));     // dlen
      const bool etag = (pos + n) % tpdu_bytes == 0 || pos + n >= stream.size();
      w.u32(etag ? 0x8000'0000u : 0u);          // BTAG/ETAG bits
      w.u32(0);                                 // sort/sync
      w.bytes(stream.subspan(pos, n));
      w.u32(0);                                 // trailing check slot
      out.packets.push_back(std::move(pkt));
      out.header_bytes += kHeader + kTrailer;
      pos += n;
    }
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    if (unit.size() < 28) return ins;
    ByteReader r(unit);
    const std::uint32_t key = r.u32();
    r.u32();
    r.u32();  // seq
    const std::uint32_t n = r.u32();
    const std::uint32_t tags = r.u32();
    if (!r.ok() || key != kKey || unit.size() != 28u + n) return ins;
    ins.parsed = true;
    ins.knows_connection = true;
    ins.knows_stream_offset = true;  // byte seq places the payload
    ins.knows_pdu_boundary = (tags & 0x8000'0000u) != 0;
    ins.payload_bytes = n;
    return ins;
  }

 private:
  static constexpr std::uint32_t kKey = 0x5E17;
};

// ----------------------------------------------------------------- Axon

class AxonScheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "Axon";
    c.reference = "[STER 90]";
    c.disorder = DisorderTolerance::kFull;
    c.framing_levels = 3;
    c.type = FieldSupport::kImplicit;  // checksum by position, some typing
    c.len = FieldSupport::kImplicit;
    c.size = FieldSupport::kImplicit;
    // every level has SN (index) and ST (limit), but not all have IDs:
    // frames are assumed hierarchically nested.
    c.c_id = FieldSupport::kExplicit;
    c.c_sn = FieldSupport::kExplicit;
    c.c_st = FieldSupport::kExplicit;
    c.t_id = FieldSupport::kAbsent;  // nested: no independent T identity
    c.t_sn = FieldSupport::kExplicit;
    c.t_st = FieldSupport::kExplicit;
    c.x_id = FieldSupport::kAbsent;
    c.x_sn = FieldSupport::kExplicit;
    c.x_st = FieldSupport::kExplicit;
    c.notes = "placement-only framing: data placement yes, processing framing no";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes, std::size_t mtu) const override {
    CarriedPayload out;
    out.payload_bytes = stream.size();
    constexpr std::size_t kHeader = 22;  // conn(4) + 3×(index 4 + limit 1) + len(2) + csum(1)
    const std::size_t body = std::min(tpdu_bytes, mtu - kHeader);
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t n = std::min(body, stream.size() - pos);
      std::vector<std::uint8_t> pkt;
      pkt.reserve(kHeader + n);
      ByteWriter w(pkt);
      w.u32(kConnId);
      const bool tpdu_end =
          (pos + n) % tpdu_bytes == 0 || pos + n >= stream.size();
      w.u32(static_cast<std::uint32_t>(pos));            // connection index
      w.u8(pos + n >= stream.size() ? 1 : 0);            // connection limit
      w.u32(static_cast<std::uint32_t>(pos % tpdu_bytes));  // tpdu index
      w.u8(tpdu_end ? 1 : 0);                            // tpdu limit
      w.u32(static_cast<std::uint32_t>(pos % (tpdu_bytes / 2 ? tpdu_bytes / 2
                                                             : 1)));
      w.u8(0);                                           // frame limit
      w.u16(static_cast<std::uint16_t>(n));
      w.u8(0x11);  // per-packet checksum placeholder (by position)
      w.bytes(stream.subspan(pos, n));
      out.packets.push_back(std::move(pkt));
      out.header_bytes += kHeader;
      pos += n;
    }
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    if (unit.size() < 22) return ins;
    ByteReader r(unit);
    const std::uint32_t conn = r.u32();
    r.u32();
    r.u8();
    r.u32();
    const std::uint8_t tpdu_limit = r.u8();
    r.u32();
    r.u8();
    const std::uint16_t n = r.u16();
    if (!r.ok() || conn != kConnId || unit.size() != 22u + n) return ins;
    ins.parsed = true;
    ins.knows_connection = true;
    ins.knows_stream_offset = true;  // index fields place every level
    ins.knows_pdu_boundary = tpdu_limit != 0;
    ins.payload_bytes = n;
    return ins;
  }

 private:
  static constexpr std::uint32_t kConnId = 0xA404;
};

}  // namespace

std::unique_ptr<FramingScheme> make_ip_scheme() {
  return std::make_unique<IpScheme>();
}
std::unique_ptr<FramingScheme> make_vmtp_scheme() {
  return std::make_unique<VmtpScheme>();
}
std::unique_ptr<FramingScheme> make_xtp_scheme() {
  return std::make_unique<XtpScheme>();
}
std::unique_ptr<FramingScheme> make_axon_scheme() {
  return std::make_unique<AxonScheme>();
}

}  // namespace chunknet
