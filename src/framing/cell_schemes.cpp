// ATM adaptation-layer schemes of Appendix B: AAL5 (SEAL, [LYON 91])
// and AAL3/4 ([DEPR 91]). Both ride 53-byte ATM cells (5-byte cell
// header + 48-byte payload); ATM links do not misorder, which is
// exactly why these protocols can leave so much framing implicit — and
// why they fail the moment disordering (multipath skew) appears.
#include <algorithm>

#include "src/common/bytes.hpp"
#include "src/framing/scheme.hpp"

namespace chunknet {

namespace {

constexpr std::size_t kCellBytes = 53;
constexpr std::size_t kCellHeaderBytes = 5;  // GFC/VPI/VCI/PT/CLP/HEC
constexpr std::size_t kCellPayloadBytes = 48;

/// Writes a minimal ATM cell header. `user_bit` is the AAL5
/// end-of-frame indication (PT field bit); `vci` demultiplexes.
void write_cell_header(ByteWriter& w, std::uint32_t vci, bool user_bit) {
  w.u8(0);                                        // GFC + VPI high
  w.u16(static_cast<std::uint16_t>(vci & 0xFFFF)); // VPI low + VCI
  w.u8(user_bit ? 0x02 : 0x00);                   // PT/CLP
  w.u8(0x5A);                                     // HEC (not computed here)
}

// ---------------------------------------------------------------- AAL5

class Aal5Scheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "AAL5";
    c.reference = "[LYON 91]";
    c.disorder = DisorderTolerance::kNone;
    c.framing_levels = 1;
    c.type = FieldSupport::kImplicit;  // ED code found by position in frame
    c.len = FieldSupport::kExplicit;   // length in trailer
    c.size = FieldSupport::kImplicit;
    c.c_id = FieldSupport::kExplicit;  // VCI
    c.c_sn = FieldSupport::kAbsent;    // "no explicit SN … ATM links do not misorder"
    c.c_st = FieldSupport::kImplicit;  // connection teardown signalling
    c.t_st = FieldSupport::kExplicit;  // the single end-of-frame bit
    c.t_id = FieldSupport::kAbsent;
    c.t_sn = FieldSupport::kAbsent;
    c.notes = "cell begins a frame iff previous cell ended one";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes, std::size_t /*mtu: cells are
                       fixed*/) const override {
    CarriedPayload out;
    out.payload_bytes = stream.size();
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t frame_len = std::min(tpdu_bytes, stream.size() - pos);
      // AAL5: frame + 8-byte trailer, padded to a whole number of cells.
      const std::size_t with_trailer = frame_len + 8;
      const std::size_t cells =
          (with_trailer + kCellPayloadBytes - 1) / kCellPayloadBytes;
      for (std::size_t i = 0; i < cells; ++i) {
        std::vector<std::uint8_t> cell;
        cell.reserve(kCellBytes);
        ByteWriter w(cell);
        const bool last = i + 1 == cells;
        write_cell_header(w, kVci, last);
        const std::size_t body_off = i * kCellPayloadBytes;
        for (std::size_t b = 0; b < kCellPayloadBytes; ++b) {
          const std::size_t idx = body_off + b;
          if (idx < frame_len) {
            w.u8(stream[pos + idx]);
          } else if (last && b >= kCellPayloadBytes - 8) {
            // trailer: UU/CPI (2), length (2), CRC-32 (4)
            // (content below; written byte-at-a-time for simplicity)
            const std::size_t t = b - (kCellPayloadBytes - 8);
            std::uint8_t trailer[8] = {
                0, 0,
                static_cast<std::uint8_t>(frame_len >> 8),
                static_cast<std::uint8_t>(frame_len), 0xDE, 0xAD, 0xBE, 0xEF};
            w.u8(trailer[t]);
          } else {
            w.u8(0);  // pad
          }
        }
        out.packets.push_back(std::move(cell));
      }
      out.header_bytes += cells * kCellHeaderBytes + 8 +
                          cells * kCellPayloadBytes - with_trailer;
      pos += frame_len;
    }
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    if (unit.size() != kCellBytes) return ins;
    ins.parsed = true;
    ins.knows_connection = true;  // VCI is in every cell
    // Position within the frame is implicit in channel order: a lone
    // disordered cell cannot be placed, and frame start is only known
    // relative to the previous cell's end bit.
    ins.knows_stream_offset = false;
    ins.knows_pdu_boundary = (unit[3] & 0x02) != 0;  // end-of-frame bit
    ins.payload_bytes = kCellPayloadBytes;
    return ins;
  }

 private:
  static constexpr std::uint32_t kVci = 42;
};

// -------------------------------------------------------------- AAL3/4

class Aal34Scheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "AAL3/4";
    c.reference = "[DEPR 91]";
    c.disorder = DisorderTolerance::kPartial;
    c.framing_levels = 2;
    c.type = FieldSupport::kExplicit;  // BOM/COM/EOM segment type
    c.len = FieldSupport::kExplicit;   // LI field
    c.size = FieldSupport::kImplicit;
    c.c_id = FieldSupport::kExplicit;  // MID
    c.c_sn = FieldSupport::kExplicit;  // 4-bit SN
    c.c_st = FieldSupport::kAbsent;    // "No C.ST is used"
    c.x_st = FieldSupport::kExplicit;  // EOM ≡ X.ST
    c.x_id = FieldSupport::kImplicit;  // derivable from C.SN at BOM
    c.x_sn = FieldSupport::kImplicit;
    c.notes = "4-bit SN wraps fast; disorder tolerance is narrow";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes,
                       std::size_t /*mtu*/) const override {
    CarriedPayload out;
    out.payload_bytes = stream.size();
    // AAL3/4: 2-byte SAR header (ST|SN|MID) + 44-byte payload +
    // 2-byte trailer (LI|CRC-10) per cell.
    constexpr std::size_t kSarPayload = 44;
    std::uint8_t sn = 0;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t frame_len = std::min(tpdu_bytes, stream.size() - pos);
      const std::size_t cells = (frame_len + kSarPayload - 1) / kSarPayload;
      for (std::size_t i = 0; i < cells; ++i) {
        std::vector<std::uint8_t> cell;
        cell.reserve(kCellBytes);
        ByteWriter w(cell);
        write_cell_header(w, kVci, false);
        const bool first = i == 0;
        const bool last = i + 1 == cells;
        // ST: 10=BOM, 00=COM, 01=EOM, 11=SSM (single-segment)
        std::uint8_t st = first && last ? 0xC0 : first ? 0x80 : last ? 0x40 : 0x00;
        w.u8(static_cast<std::uint8_t>(st | (sn & 0x0F)));
        w.u8(kMid);
        sn = static_cast<std::uint8_t>((sn + 1) & 0x0F);
        const std::size_t off = i * kSarPayload;
        const std::size_t n = std::min(kSarPayload, frame_len - off);
        for (std::size_t b = 0; b < kSarPayload; ++b) {
          w.u8(b < n ? stream[pos + off + b] : 0);
        }
        w.u8(static_cast<std::uint8_t>(n));  // LI
        w.u8(0x3F);                          // CRC-10 placeholder
        out.packets.push_back(std::move(cell));
      }
      out.header_bytes += cells * (kCellHeaderBytes + 4);
      // padding in final cell counts as overhead too:
      out.header_bytes += cells * kSarPayload - frame_len;
      pos += frame_len;
    }
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    if (unit.size() != kCellBytes) return ins;
    ins.parsed = true;
    ins.knows_connection = true;  // MID
    const std::uint8_t st = unit[kCellHeaderBytes] & 0xC0;
    // BOM carries the frame start, EOM the end; a COM cell alone knows
    // its 4-bit SN — enough to *order* within a short window but not to
    // place absolutely (X.SN only derivable once the BOM's C.SN is known).
    ins.knows_stream_offset = false;
    ins.knows_pdu_boundary = st == 0x40 || st == 0xC0;  // EOM/SSM
    ins.payload_bytes = 44;
    return ins;
  }

 private:
  static constexpr std::uint32_t kVci = 42;
  static constexpr std::uint8_t kMid = 7;
};

}  // namespace

std::unique_ptr<FramingScheme> make_aal5_scheme() {
  return std::make_unique<Aal5Scheme>();
}
std::unique_ptr<FramingScheme> make_aal34_scheme() {
  return std::make_unique<Aal34Scheme>();
}

}  // namespace chunknet
