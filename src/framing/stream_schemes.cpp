// Ordered-channel framing schemes of Appendix B: HDLC (and its family:
// SDLC, LAPB, LAPD…), Fraser & Marshall's URP [FRAS 89], and the
// Delta-t protocol [WATS 83]. These protocols mark frame boundaries
// with flags or symbols *in the data stream*, so most framing is
// implicit in channel order.
#include <algorithm>

#include "src/common/bytes.hpp"
#include "src/framing/scheme.hpp"

namespace chunknet {

namespace {

// ----------------------------------------------------------------- HDLC

class HdlcScheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "HDLC";
    c.reference = "(link family)";
    c.disorder = DisorderTolerance::kNone;
    c.framing_levels = 3;
    c.type = FieldSupport::kImplicit;  // ED code by position in frame
    c.len = FieldSupport::kImplicit;   // delimited by flags
    c.size = FieldSupport::kImplicit;
    c.c_id = FieldSupport::kExplicit;  // address field
    c.c_sn = FieldSupport::kExplicit;  // 3-bit N(S)
    c.c_st = FieldSupport::kImplicit;  // DISC frame
    c.t_id = FieldSupport::kImplicit;
    c.t_sn = FieldSupport::kImplicit;
    c.t_st = FieldSupport::kImplicit;  // frame boundary = flag
    c.x_st = FieldSupport::kExplicit;  // P/F bit
    c.x_id = FieldSupport::kImplicit;
    c.x_sn = FieldSupport::kImplicit;
    c.notes = "frame delimited by 0x7E flags; FCS by position";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes, std::size_t mtu) const override {
    CarriedPayload out;
    out.payload_bytes = stream.size();
    const std::size_t body = std::min(tpdu_bytes, mtu - 6);
    std::uint8_t ns = 0;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t n = std::min(body, stream.size() - pos);
      std::vector<std::uint8_t> frame;
      frame.reserve(n + 6);
      ByteWriter w(frame);
      w.u8(0x7E);                 // opening flag
      w.u8(kAddress);             // C.ID
      // control: I-frame, N(S) in bits 1..3, P/F in bit 4
      const bool pf = pos + n >= stream.size();
      w.u8(static_cast<std::uint8_t>(((ns & 7) << 1) | (pf ? 0x10 : 0)));
      ns = static_cast<std::uint8_t>((ns + 1) & 7);
      w.bytes(stream.subspan(pos, n));
      w.u16(0xF0BA);              // FCS placeholder (by position)
      w.u8(0x7E);                 // closing flag
      out.packets.push_back(std::move(frame));
      out.header_bytes += 6;
      pos += n;
    }
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    if (unit.size() < 6 || unit.front() != 0x7E || unit.back() != 0x7E) {
      return ins;
    }
    ins.parsed = true;
    ins.knows_connection = true;      // address field
    ins.knows_stream_offset = false;  // 3-bit SN orders, cannot place
    ins.knows_pdu_boundary = true;    // every frame is delimited
    ins.payload_bytes = unit.size() - 6;
    return ins;
  }

 private:
  static constexpr std::uint8_t kAddress = 0x03;
};

// ------------------------------------------------------------------ URP

class UrpScheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "URP";
    c.reference = "[FRAS 89]";
    c.disorder = DisorderTolerance::kNone;
    c.framing_levels = 3;
    c.type = FieldSupport::kImplicit;
    c.len = FieldSupport::kImplicit;
    c.size = FieldSupport::kImplicit;
    c.c_id = FieldSupport::kImplicit;  // one URP connection per network connection
    c.c_sn = FieldSupport::kExplicit;
    c.c_st = FieldSupport::kImplicit;  // connection tear-down
    c.t_st = FieldSupport::kExplicit;  // BOT / BOTM markers
    c.t_id = FieldSupport::kImplicit;
    c.t_sn = FieldSupport::kImplicit;
    c.x_st = FieldSupport::kExplicit;  // BOT marker
    c.x_id = FieldSupport::kImplicit;  // derived from C.SN and X.ST
    c.x_sn = FieldSupport::kImplicit;
    c.notes = "blocks delimited by BOT/BOTM control bytes in stream";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes, std::size_t mtu) const override {
    CarriedPayload out;
    out.payload_bytes = stream.size();
    // URP sends the stream in "envelopes": window of data + trailing
    // control byte + sequence number; block ends marked with BOT/BOTM.
    const std::size_t body = std::min(tpdu_bytes, mtu - 3);
    std::uint8_t seq = 0;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t n = std::min(body, stream.size() - pos);
      std::vector<std::uint8_t> env;
      env.reserve(n + 3);
      ByteWriter w(env);
      w.bytes(stream.subspan(pos, n));
      const bool block_end = (pos + n) % tpdu_bytes == 0 || pos + n >= stream.size();
      w.u8(block_end ? kBotm : kSeq);  // control byte
      w.u8(seq);                       // C.SN (mod 256 window)
      w.u8(0x55);                      // check byte
      seq = static_cast<std::uint8_t>(seq + 1);
      out.packets.push_back(std::move(env));
      out.header_bytes += 3;
      pos += n;
    }
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    if (unit.size() <= 3) return ins;  // trailer + at least one data byte
    const std::uint8_t control = unit[unit.size() - 3];
    if (control != kBotm && control != kSeq) return ins;
    ins.parsed = true;
    ins.knows_connection = true;  // 1:1 with the network connection
    ins.knows_stream_offset = false;  // 8-bit window SN orders only
    ins.knows_pdu_boundary = unit[unit.size() - 3] == kBotm;
    ins.payload_bytes = unit.size() - 3;
    return ins;
  }

 private:
  static constexpr std::uint8_t kBotm = 0xB1;
  static constexpr std::uint8_t kSeq = 0xA0;
};

// -------------------------------------------------------------- Delta-t

class DeltaTScheme final : public FramingScheme {
 public:
  FramingCapabilities capabilities() const override {
    FramingCapabilities c;
    c.name = "Delta-t";
    c.reference = "[WATS 83]";
    c.disorder = DisorderTolerance::kPartial;
    c.framing_levels = 2;
    c.type = FieldSupport::kImplicit;
    c.len = FieldSupport::kExplicit;
    c.size = FieldSupport::kImplicit;
    c.c_id = FieldSupport::kExplicit;
    c.c_sn = FieldSupport::kExplicit;  // large enough to reorder
    c.c_st = FieldSupport::kImplicit;
    c.t_id = FieldSupport::kImplicit;
    c.t_sn = FieldSupport::kImplicit;
    c.t_st = FieldSupport::kImplicit;
    c.x_st = FieldSupport::kExplicit;  // E symbol in stream
    c.x_id = FieldSupport::kImplicit;  // from B/E symbols and C.SN
    c.x_sn = FieldSupport::kImplicit;
    c.notes = "C-level placement OK disordered; X framing needs stream scan";
    return c;
  }

  CarriedPayload carry(std::span<const std::uint8_t> stream,
                       std::size_t tpdu_bytes, std::size_t mtu) const override {
    CarriedPayload out;
    out.payload_bytes = stream.size();
    // Header: conn id (4), 32-bit C.SN in bytes (4), len (2). Frame
    // boundaries ride as B/E marker symbols escaped into the stream;
    // we account one marker byte per PDU boundary crossed (reserved in
    // the MTU budget so a marker never overflows the unit).
    const std::size_t body = std::min(tpdu_bytes, mtu - 11);
    std::size_t pos = 0;
    while (pos < stream.size()) {
      const std::size_t n = std::min(body, stream.size() - pos);
      std::vector<std::uint8_t> pkt;
      pkt.reserve(n + 11);
      ByteWriter w(pkt);
      w.u32(kConnId);
      w.u32(static_cast<std::uint32_t>(pos));  // byte-granular C.SN
      w.u16(static_cast<std::uint16_t>(n));
      w.bytes(stream.subspan(pos, n));
      std::size_t markers = 0;
      if ((pos + n) / tpdu_bytes != pos / tpdu_bytes || pos + n >= stream.size()) {
        pkt.push_back(kEndSymbol);
        ++markers;
      }
      out.packets.push_back(std::move(pkt));
      out.header_bytes += 10 + markers;
      pos += n;
    }
    return out;
  }

  UnitInsight inspect(std::span<const std::uint8_t> unit) const override {
    UnitInsight ins;
    if (unit.size() < 10) return ins;
    ByteReader r(unit);
    r.u32();  // conn id
    r.u32();  // C.SN
    const std::uint16_t len = r.u16();
    if (!r.ok() || unit.size() < 10u + len) return ins;
    ins.parsed = true;
    ins.knows_connection = true;
    // The large C.SN allows placement of disordered data at the
    // connection level — the paper's point about Delta-t.
    ins.knows_stream_offset = true;
    // Higher-level frame boundaries are symbols inside the stream:
    // finding them requires parsing the payload (and a boundary that
    // fell in another packet is invisible here).
    ins.knows_pdu_boundary = unit.size() > 10u + len &&
                             unit[10 + len] == kEndSymbol;
    ins.payload_bytes = len;
    return ins;
  }

 private:
  static constexpr std::uint32_t kConnId = 77;
  static constexpr std::uint8_t kEndSymbol = 0xE5;
};

}  // namespace

std::unique_ptr<FramingScheme> make_hdlc_scheme() {
  return std::make_unique<HdlcScheme>();
}
std::unique_ptr<FramingScheme> make_urp_scheme() {
  return std::make_unique<UrpScheme>();
}
std::unique_ptr<FramingScheme> make_delta_t_scheme() {
  return std::make_unique<DeltaTScheme>();
}

}  // namespace chunknet
