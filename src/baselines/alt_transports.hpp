// Alternative transport baselines from the paper's design space:
//
//  - XtpLikeTransport (§3.2, [XTP 90]): "convert large PDUs into
//    smaller PDUs" — every packet is a complete, self-contained TPDU
//    with full header and its own check value. Disorder-tolerant (byte
//    seq places payload) but "the overhead of all PDUs must be carried
//    in each packet", and error control runs per tiny PDU.
//
//  - MtuDiscoveryTransport ([KENT 87]'s recommendation / option 4 of
//    §3): never fragment — size every TPDU to the known path MTU. No
//    in-network fragmentation ever happens, so reassembly of fragments
//    disappears, "but at the expense of complicating reassembly of
//    TPDUs because more TPDUs are used", and efficiency collapses when
//    the path minimum is small.
//
// Both reuse the chunk machinery's simulator plumbing (PacketSink,
// Link) but speak their own wire formats. Bench A2 compares them with
// the chunk transport under identical network conditions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "src/common/interval_set.hpp"
#include "src/netsim/simulator.hpp"
#include "src/transport/rto.hpp"

namespace chunknet {

// ------------------------------------------------------------ XTP-like

struct XtpConfig {
  std::size_t mtu{1500};
  SimTime retransmit_timeout{50 * kMillisecond};
  int max_retransmits{8};
  /// Adaptive RTO (Jacobson/Karn); `retransmit_timeout` seeds it.
  RtoConfig rto{};
  std::function<void(std::vector<std::uint8_t>)> send_packet;
};

/// Wire: key(4) seq(4) dlen(4) flags(4: bit0 ETAG) payload crc32(4).
inline constexpr std::size_t kXtpHeaderBytes = 16;
inline constexpr std::size_t kXtpTrailerBytes = 4;

class XtpLikeSender final : public PacketSink {
 public:
  XtpLikeSender(Simulator& sim, XtpConfig cfg);

  void send_stream(std::span<const std::uint8_t> stream);
  void on_packet(SimPacket pkt) override;  ///< 5-byte ACKs: 'A' + seq
  /// Every PDU was acknowledged (giving up is failure, not success).
  bool all_acked() const { return finished() && !failed(); }
  bool finished() const { return outstanding_.empty() && started_; }
  bool failed() const { return stats_.gave_up > 0; }

  const RtoEstimator& rto() const { return rto_; }

  struct Stats {
    std::uint64_t pdus_sent{0};
    std::uint64_t retransmissions{0};
    std::uint64_t packets_sent{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t gave_up{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    std::vector<std::uint8_t> packet;
    int attempts{0};
    SimTime last_sent{0};
    bool retransmitted{false};  ///< Karn: ACK RTT sample is ambiguous
  };
  void transmit(std::uint32_t seq, Pending& p);
  void arm_timer(std::uint32_t seq);

  Simulator& sim_;
  XtpConfig cfg_;
  RtoEstimator rto_;
  std::map<std::uint32_t, Pending> outstanding_;  // keyed by seq
  bool started_{false};
  Stats stats_;
};

class XtpLikeReceiver final : public PacketSink {
 public:
  XtpLikeReceiver(Simulator& sim, std::size_t app_buffer_bytes,
                  std::function<void(std::vector<std::uint8_t>)> send_control);

  void on_packet(SimPacket pkt) override;

  std::span<const std::uint8_t> app_data() const { return app_buffer_; }
  std::uint64_t bytes_delivered() const { return coverage_.covered(); }

  struct Stats {
    std::uint64_t pdus_ok{0};
    std::uint64_t pdus_bad_check{0};
    std::uint64_t duplicates{0};
    std::uint64_t bus_bytes{0};
    std::vector<double> delivery_latency_ns;
  };
  const Stats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  std::function<void(std::vector<std::uint8_t>)> send_control_;
  std::vector<std::uint8_t> app_buffer_;
  IntervalSet coverage_;  // byte-granular
  Stats stats_;
};

// ------------------------------------------------- MTU-discovery (opt 4)

struct MtuDiscoveryConfig {
  std::size_t path_mtu{296};  ///< the discovered minimum along the route
  SimTime retransmit_timeout{50 * kMillisecond};
  int max_retransmits{8};
  /// Adaptive RTO (Jacobson/Karn); `retransmit_timeout` seeds it.
  RtoConfig rto{};
  std::function<void(std::vector<std::uint8_t>)> send_packet;
};

/// Wire: seq(4) dlen(2) flags(1) payload crc32(4). TPDU == packet.
inline constexpr std::size_t kMtuDiscHeaderBytes = 7;
inline constexpr std::size_t kMtuDiscTrailerBytes = 4;

class MtuDiscoverySender final : public PacketSink {
 public:
  MtuDiscoverySender(Simulator& sim, MtuDiscoveryConfig cfg);

  void send_stream(std::span<const std::uint8_t> stream);
  void on_packet(SimPacket pkt) override;  ///< 5-byte ACKs: 'A' + seq
  /// Every PDU was acknowledged (giving up is failure, not success).
  bool all_acked() const { return finished() && !failed(); }
  bool finished() const { return outstanding_.empty() && started_; }
  bool failed() const { return stats_.gave_up > 0; }

  const RtoEstimator& rto() const { return rto_; }

  struct Stats {
    std::uint64_t pdus_sent{0};
    std::uint64_t retransmissions{0};
    std::uint64_t packets_sent{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t gave_up{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    std::vector<std::uint8_t> packet;
    int attempts{0};
    SimTime last_sent{0};
    bool retransmitted{false};  ///< Karn: ACK RTT sample is ambiguous
  };
  void transmit(std::uint32_t seq, Pending& p);
  void arm_timer(std::uint32_t seq);

  Simulator& sim_;
  MtuDiscoveryConfig cfg_;
  RtoEstimator rto_;
  std::map<std::uint32_t, Pending> outstanding_;
  bool started_{false};
  Stats stats_;
};

class MtuDiscoveryReceiver final : public PacketSink {
 public:
  MtuDiscoveryReceiver(
      Simulator& sim, std::size_t app_buffer_bytes,
      std::function<void(std::vector<std::uint8_t>)> send_control);

  void on_packet(SimPacket pkt) override;

  std::span<const std::uint8_t> app_data() const { return app_buffer_; }
  std::uint64_t bytes_delivered() const { return coverage_.covered(); }

  struct Stats {
    std::uint64_t pdus_ok{0};
    std::uint64_t pdus_bad_check{0};
    std::uint64_t duplicates{0};
    std::uint64_t bus_bytes{0};
    std::vector<double> delivery_latency_ns;
  };
  const Stats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  std::function<void(std::vector<std::uint8_t>)> send_control_;
  std::vector<std::uint8_t> app_buffer_;
  IntervalSet coverage_;
  Stats stats_;
};

}  // namespace chunknet
