// The reorder-sensitive in-order baseline: a TCP-like sequenced byte
// stream against which the chunk transport's reorder immunity is
// measured (ROADMAP multipath item; docs/PERFORMANCE.md E14).
//
// Where the chunk receiver places any labelled chunk the moment it
// arrives (§1: chunks shrug off multipath reordering), this transport
// delivers strictly in sequence: a gap parks every later segment in a
// resequencing buffer and stalls delivery at the head of line until
// the missing segment shows up. The sender is a classic fixed window
// over cumulative ACKs with duplicate-ACK fast retransmit and an RTO
// fallback — so lane-skew reordering shows up as spurious dup-ACK
// retransmissions, head-of-line stalls, and a cum-ACK clock that
// cannot advance past the slowest path. The receiver accounts both:
// resequencing-buffer occupancy (peak and byte·ns integral) and total
// head-of-line stall time, the two costs the paper says labelling
// makes vanish.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "src/netsim/simulator.hpp"
#include "src/transport/rto.hpp"

namespace chunknet {

struct InOrderStreamConfig {
  std::size_t mtu{1500};
  /// Sliding window in segments (cum-ACK clocked).
  std::size_t window_segments{64};
  SimTime retransmit_timeout{50 * kMillisecond};
  int max_retransmits{8};
  /// Duplicate cumulative ACKs that trigger a fast retransmit.
  int dupack_threshold{3};
  /// Adaptive RTO (Jacobson/Karn); `retransmit_timeout` seeds it.
  RtoConfig rto{};
  std::function<void(std::vector<std::uint8_t>)> send_packet;
};

/// Wire: 'D' seq(4: segment index) dlen(2) payload crc32(4).
/// ACKs: 'A' + cumulative next-expected segment index (4).
inline constexpr std::size_t kInOrderHeaderBytes = 7;
inline constexpr std::size_t kInOrderTrailerBytes = 4;

class InOrderStreamSender final : public PacketSink {
 public:
  InOrderStreamSender(Simulator& sim, InOrderStreamConfig cfg);

  void send_stream(std::span<const std::uint8_t> stream);
  void on_packet(SimPacket pkt) override;  ///< cumulative ACKs
  bool all_acked() const { return finished() && !failed(); }
  bool finished() const {
    return started_ && (base_ >= segments_.size() || stats_.gave_up > 0);
  }
  bool failed() const { return stats_.gave_up > 0; }

  const RtoEstimator& rto() const { return rto_; }

  struct Stats {
    std::uint64_t segments_sent{0};
    std::uint64_t packets_sent{0};
    std::uint64_t bytes_sent{0};
    std::uint64_t retransmissions{0};
    std::uint64_t fast_retransmits{0};  ///< subset of retransmissions
    std::uint64_t timeouts{0};
    std::uint64_t dupacks{0};
    std::uint64_t gave_up{0};  ///< 1 = whole stream abandoned
    /// Total time the window was full (cum-ACK clock stalled).
    std::uint64_t window_stall_ns{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Segment {
    std::vector<std::uint8_t> packet;
    int attempts{0};
    SimTime last_sent{0};
    bool retransmitted{false};  ///< Karn: ACK RTT sample is ambiguous
  };
  void transmit(std::size_t idx);
  void fill_window();
  void arm_timer();
  void note_window(bool was_full);

  Simulator& sim_;
  InOrderStreamConfig cfg_;
  RtoEstimator rto_;
  std::vector<Segment> segments_;
  std::size_t base_{0};  ///< lowest unacked segment
  std::size_t next_{0};  ///< next never-sent segment
  std::uint64_t timer_gen_{0};  ///< newest armed timer wins
  int dupack_count_{0};
  bool fast_retx_done_{false};  ///< one fast retransmit per loss event
  bool window_full_{false};
  SimTime window_full_since_{0};
  bool started_{false};
  Stats stats_;
};

class InOrderStreamReceiver final : public PacketSink {
 public:
  InOrderStreamReceiver(
      Simulator& sim, std::size_t app_buffer_bytes,
      std::function<void(std::vector<std::uint8_t>)> send_control);

  void on_packet(SimPacket pkt) override;

  /// The in-order-delivered prefix of the application buffer.
  std::span<const std::uint8_t> app_data() const {
    return std::span<const std::uint8_t>(app_buffer_.data(),
                                         delivered_bytes_);
  }
  std::uint64_t bytes_delivered() const { return delivered_bytes_; }

  struct Stats {
    std::uint64_t segments_ok{0};
    std::uint64_t segments_bad_check{0};
    std::uint64_t duplicates{0};
    std::uint64_t bus_bytes{0};
    /// Resequencing buffer: out-of-order segments parked behind a gap.
    std::uint64_t reseq_buffered_segments{0};
    std::uint64_t reseq_bytes_now{0};
    std::uint64_t reseq_bytes_peak{0};
    /// Occupancy integral (bytes · ns): mean occupancy over a run is
    /// this divided by the run's duration.
    std::uint64_t reseq_byte_ns{0};
    /// Head-of-line stalls: episodes where delivery waited on a gap,
    /// and the total time spent waiting.
    std::uint64_t hol_stalls{0};
    std::uint64_t hol_stall_ns{0};
    /// Per-segment latency, first transmission to in-order release.
    std::vector<double> delivery_latency_ns;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Parked {
    std::vector<std::uint8_t> payload;
    SimTime created_at{0};
  };
  void account_occupancy();

  Simulator& sim_;
  std::function<void(std::vector<std::uint8_t>)> send_control_;
  std::vector<std::uint8_t> app_buffer_;
  std::map<std::uint32_t, Parked> parked_;  // keyed by segment index
  std::uint32_t next_expected_{0};
  std::uint64_t delivered_bytes_{0};
  SimTime stall_start_{0};
  bool stalled_{false};
  SimTime occupancy_mark_{0};
  Stats stats_;
};

}  // namespace chunknet
