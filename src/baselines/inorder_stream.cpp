#include "src/baselines/inorder_stream.hpp"

#include <algorithm>

#include "src/common/bytes.hpp"
#include "src/edc/crc32.hpp"

namespace chunknet {

namespace {

void send_ack(const std::function<void(std::vector<std::uint8_t>)>& out,
              std::uint32_t next_expected) {
  if (!out) return;
  std::vector<std::uint8_t> ack;
  ByteWriter w(ack);
  w.u8('A');
  w.u32(next_expected);
  out(ack);
}

std::uint32_t parse_ack(const SimPacket& pkt) {
  if (pkt.bytes.size() != 5 || pkt.bytes[0] != 'A') return 0xFFFFFFFFu;
  ByteReader r(pkt.bytes);
  r.u8();
  return r.u32();
}

}  // namespace

// --------------------------------------------------------------- sender

InOrderStreamSender::InOrderStreamSender(Simulator& sim,
                                         InOrderStreamConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rto_(cfg_.rto, cfg_.retransmit_timeout) {}

void InOrderStreamSender::send_stream(
    std::span<const std::uint8_t> stream) {
  started_ = true;
  const std::size_t body =
      cfg_.mtu - kInOrderHeaderBytes - kInOrderTrailerBytes;
  std::size_t pos = 0;
  std::uint32_t seq = 0;
  while (pos < stream.size()) {
    const std::size_t n = std::min(body, stream.size() - pos);
    Segment s;
    ByteWriter w(s.packet);
    w.u8('D');
    w.u32(seq);
    w.u16(static_cast<std::uint16_t>(n));
    w.bytes(stream.subspan(pos, n));
    w.u32(crc32(std::span<const std::uint8_t>(s.packet)));
    segments_.push_back(std::move(s));
    pos += n;
    ++seq;
  }
  fill_window();
  if (base_ < next_) arm_timer();
}

void InOrderStreamSender::transmit(std::size_t idx) {
  Segment& s = segments_[idx];
  ++s.attempts;
  s.last_sent = sim_.now();
  if (s.attempts > 1) s.retransmitted = true;
  stats_.bytes_sent += s.packet.size();
  ++stats_.packets_sent;
  if (cfg_.send_packet) cfg_.send_packet(s.packet);
}

void InOrderStreamSender::fill_window() {
  if (stats_.gave_up > 0) return;
  while (next_ < segments_.size() &&
         next_ < base_ + cfg_.window_segments) {
    transmit(next_);
    ++next_;
    ++stats_.segments_sent;
  }
  const bool full = base_ < segments_.size() &&
                    next_ >= base_ + cfg_.window_segments;
  note_window(full);
}

void InOrderStreamSender::note_window(bool full_now) {
  if (full_now && !window_full_) {
    window_full_ = true;
    window_full_since_ = sim_.now();
  } else if (!full_now && window_full_) {
    window_full_ = false;
    stats_.window_stall_ns += sim_.now() - window_full_since_;
  }
}

void InOrderStreamSender::arm_timer() {
  // One retransmission timer covering the head of the window; re-arming
  // invalidates every older pending timer (TCP's single-timer model).
  const SimTime timeout =
      cfg_.rto.adaptive ? rto_.rto() : cfg_.retransmit_timeout;
  const std::uint64_t gen = ++timer_gen_;
  sim_.schedule_in(timeout, [this, gen] {
    if (gen != timer_gen_) return;  // superseded by a newer arm
    if (stats_.gave_up > 0 || base_ >= segments_.size()) return;
    Segment& s = segments_[base_];
    if (s.attempts > cfg_.max_retransmits) {
      // Abandon the whole stream: a byte-stream transport cannot skip
      // over the head of line.
      stats_.gave_up = 1;
      note_window(false);
      return;
    }
    rto_.on_timeout();
    ++stats_.timeouts;
    ++stats_.retransmissions;
    dupack_count_ = 0;
    fast_retx_done_ = false;
    transmit(base_);
    arm_timer();
  });
}

void InOrderStreamSender::on_packet(SimPacket pkt) {
  const std::uint32_t ack = parse_ack(pkt);
  if (ack == 0xFFFFFFFFu || ack > segments_.size() || stats_.gave_up > 0) {
    return;
  }
  if (ack > base_) {
    // Karn: sample RTT only from a never-retransmitted segment.
    const Segment& s = segments_[ack - 1];
    if (!s.retransmitted) rto_.on_sample(sim_.now() - s.last_sent, false);
    base_ = ack;
    dupack_count_ = 0;
    fast_retx_done_ = false;
    fill_window();
    if (base_ < next_) {
      arm_timer();
    } else {
      ++timer_gen_;  // nothing outstanding: cancel the pending timer
      note_window(false);
    }
  } else if (ack == base_ && base_ < next_) {
    ++stats_.dupacks;
    if (++dupack_count_ >= cfg_.dupack_threshold && !fast_retx_done_) {
      fast_retx_done_ = true;
      ++stats_.retransmissions;
      ++stats_.fast_retransmits;
      transmit(base_);
      arm_timer();
    }
  }
}

// ------------------------------------------------------------- receiver

InOrderStreamReceiver::InOrderStreamReceiver(
    Simulator& sim, std::size_t app_buffer_bytes,
    std::function<void(std::vector<std::uint8_t>)> send_control)
    : sim_(sim),
      send_control_(std::move(send_control)),
      app_buffer_(app_buffer_bytes, 0) {}

void InOrderStreamReceiver::account_occupancy() {
  const SimTime now = sim_.now();
  stats_.reseq_byte_ns += stats_.reseq_bytes_now * (now - occupancy_mark_);
  occupancy_mark_ = now;
}

void InOrderStreamReceiver::on_packet(SimPacket pkt) {
  if (pkt.bytes.size() < kInOrderHeaderBytes + kInOrderTrailerBytes) {
    return;
  }
  const std::span<const std::uint8_t> view(pkt.bytes);
  ByteReader r(view);
  if (r.u8() != 'D') return;
  const std::uint32_t seq = r.u32();
  const std::uint16_t dlen = r.u16();
  if (pkt.bytes.size() != kInOrderHeaderBytes + dlen + kInOrderTrailerBytes) {
    return;
  }
  const auto body = r.bytes(dlen);
  const std::uint32_t check = r.u32();
  if (check != crc32(view.subspan(0, kInOrderHeaderBytes + dlen))) {
    ++stats_.segments_bad_check;
    return;  // corrupt segments earn no ACK
  }

  if (seq == next_expected_) {
    // In-order: deliver, then drain every consecutive parked segment.
    if (delivered_bytes_ + dlen <= app_buffer_.size()) {
      std::copy(body.begin(), body.end(),
                app_buffer_.begin() +
                    static_cast<std::ptrdiff_t>(delivered_bytes_));
      delivered_bytes_ += dlen;
      stats_.bus_bytes += dlen;
      stats_.delivery_latency_ns.push_back(
          static_cast<double>(sim_.now() - pkt.created_at));
    }
    ++stats_.segments_ok;
    ++next_expected_;
    while (!parked_.empty() && parked_.begin()->first == next_expected_) {
      account_occupancy();
      Parked& p = parked_.begin()->second;
      if (delivered_bytes_ + p.payload.size() <= app_buffer_.size()) {
        std::copy(p.payload.begin(), p.payload.end(),
                  app_buffer_.begin() +
                      static_cast<std::ptrdiff_t>(delivered_bytes_));
        delivered_bytes_ += p.payload.size();
        stats_.bus_bytes += p.payload.size();
        stats_.delivery_latency_ns.push_back(
            static_cast<double>(sim_.now() - p.created_at));
      }
      stats_.reseq_bytes_now -= p.payload.size();
      parked_.erase(parked_.begin());
      ++next_expected_;
    }
    if (parked_.empty() && stalled_) {
      stats_.hol_stall_ns += sim_.now() - stall_start_;
      stalled_ = false;
    }
  } else if (seq > next_expected_) {
    // A gap: park the segment and stall the head of line.
    if (parked_.count(seq) != 0) {
      ++stats_.duplicates;
    } else {
      account_occupancy();
      if (parked_.empty()) {
        stall_start_ = sim_.now();
        stalled_ = true;
        ++stats_.hol_stalls;
      }
      Parked p;
      p.payload.assign(body.begin(), body.end());
      p.created_at = pkt.created_at;
      stats_.reseq_bytes_now += p.payload.size();
      stats_.reseq_bytes_peak =
          std::max(stats_.reseq_bytes_peak, stats_.reseq_bytes_now);
      ++stats_.reseq_buffered_segments;
      ++stats_.segments_ok;
      parked_.emplace(seq, std::move(p));
    }
  } else {
    ++stats_.duplicates;  // already delivered
  }
  send_ack(send_control_, next_expected_);
}

}  // namespace chunknet
