#include "src/baselines/alt_transports.hpp"

#include <algorithm>

#include "src/common/bytes.hpp"
#include "src/edc/crc32.hpp"

namespace chunknet {

namespace {

void send_ack(const std::function<void(std::vector<std::uint8_t>)>& out,
              std::uint32_t seq) {
  if (!out) return;
  std::vector<std::uint8_t> ack;
  ByteWriter w(ack);
  w.u8('A');
  w.u32(seq);
  out(ack);
}

std::uint32_t parse_ack(const SimPacket& pkt) {
  if (pkt.bytes.size() != 5 || pkt.bytes[0] != 'A') return 0xFFFFFFFFu;
  ByteReader r(pkt.bytes);
  r.u8();
  return r.u32();
}

}  // namespace

// ------------------------------------------------------------ XTP-like

XtpLikeSender::XtpLikeSender(Simulator& sim, XtpConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rto_(cfg_.rto, cfg_.retransmit_timeout) {}

void XtpLikeSender::send_stream(std::span<const std::uint8_t> stream) {
  started_ = true;
  const std::size_t body =
      cfg_.mtu - kXtpHeaderBytes - kXtpTrailerBytes;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t n = std::min(body, stream.size() - pos);
    Pending p;
    ByteWriter w(p.packet);
    w.u32(0x5E17);                            // key
    w.u32(static_cast<std::uint32_t>(pos));   // byte seq
    w.u32(static_cast<std::uint32_t>(n));     // dlen
    w.u32(pos + n >= stream.size() ? 1u : 0u);  // ETAG
    w.bytes(stream.subspan(pos, n));
    w.u32(crc32(std::span<const std::uint8_t>(p.packet)));  // per-PDU check

    const auto seq = static_cast<std::uint32_t>(pos);
    auto [it, _] = outstanding_.emplace(seq, std::move(p));
    ++stats_.pdus_sent;
    transmit(seq, it->second);
    pos += n;
  }
}

void XtpLikeSender::transmit(std::uint32_t seq, Pending& p) {
  ++p.attempts;
  p.last_sent = sim_.now();
  if (p.attempts > 1) p.retransmitted = true;
  stats_.bytes_sent += p.packet.size();
  ++stats_.packets_sent;
  if (cfg_.send_packet) cfg_.send_packet(p.packet);
  arm_timer(seq);
}

void XtpLikeSender::arm_timer(std::uint32_t seq) {
  const SimTime armed_at = sim_.now();
  const SimTime timeout =
      cfg_.rto.adaptive ? rto_.rto() : cfg_.retransmit_timeout;
  sim_.schedule_in(timeout, [this, seq, armed_at] {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    if (it->second.last_sent > armed_at) return;
    if (it->second.attempts > cfg_.max_retransmits) {
      ++stats_.gave_up;
      outstanding_.erase(it);
      return;
    }
    rto_.on_timeout();
    ++stats_.retransmissions;
    transmit(seq, it->second);
  });
}

void XtpLikeSender::on_packet(SimPacket pkt) {
  const std::uint32_t seq = parse_ack(pkt);
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;
  rto_.on_sample(sim_.now() - it->second.last_sent,
                 it->second.retransmitted);
  outstanding_.erase(it);
}

XtpLikeReceiver::XtpLikeReceiver(
    Simulator& sim, std::size_t app_buffer_bytes,
    std::function<void(std::vector<std::uint8_t>)> send_control)
    : sim_(sim),
      send_control_(std::move(send_control)),
      app_buffer_(app_buffer_bytes, 0) {}

void XtpLikeReceiver::on_packet(SimPacket pkt) {
  if (pkt.bytes.size() < kXtpHeaderBytes + kXtpTrailerBytes) return;
  const std::span<const std::uint8_t> view(pkt.bytes);
  ByteReader r(view);
  const std::uint32_t key = r.u32();
  const std::uint32_t seq = r.u32();
  const std::uint32_t dlen = r.u32();
  r.u32();  // flags
  if (key != 0x5E17 ||
      pkt.bytes.size() != kXtpHeaderBytes + dlen + kXtpTrailerBytes) {
    return;
  }
  const auto body = r.bytes(dlen);
  const std::uint32_t check = r.u32();
  if (check != crc32(view.subspan(0, kXtpHeaderBytes + dlen))) {
    ++stats_.pdus_bad_check;
    return;
  }
  // Byte seq places the payload — XTP can process disordered arrivals.
  if (coverage_.covers(seq, seq + dlen)) {
    ++stats_.duplicates;
    send_ack(send_control_, seq);  // re-ack so the sender stops
    return;
  }
  if (static_cast<std::size_t>(seq) + dlen <= app_buffer_.size()) {
    std::copy(body.begin(), body.end(), app_buffer_.begin() + seq);
    coverage_.add(seq, seq + dlen);
    stats_.bus_bytes += dlen;
    const double latency = static_cast<double>(sim_.now() - pkt.created_at);
    for (std::uint32_t i = 0; i < dlen / 4; ++i) {
      stats_.delivery_latency_ns.push_back(latency);
    }
  }
  ++stats_.pdus_ok;
  send_ack(send_control_, seq);
}

// ------------------------------------------------- MTU-discovery (opt 4)

MtuDiscoverySender::MtuDiscoverySender(Simulator& sim, MtuDiscoveryConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rto_(cfg_.rto, cfg_.retransmit_timeout) {}

void MtuDiscoverySender::send_stream(std::span<const std::uint8_t> stream) {
  started_ = true;
  const std::size_t body =
      cfg_.path_mtu - kMtuDiscHeaderBytes - kMtuDiscTrailerBytes;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t n = std::min(body, stream.size() - pos);
    Pending p;
    ByteWriter w(p.packet);
    w.u32(static_cast<std::uint32_t>(pos));
    w.u16(static_cast<std::uint16_t>(n));
    w.u8(pos + n >= stream.size() ? 1 : 0);
    w.bytes(stream.subspan(pos, n));
    w.u32(crc32(std::span<const std::uint8_t>(p.packet)));

    const auto seq = static_cast<std::uint32_t>(pos);
    auto [it, _] = outstanding_.emplace(seq, std::move(p));
    ++stats_.pdus_sent;
    transmit(seq, it->second);
    pos += n;
  }
}

void MtuDiscoverySender::transmit(std::uint32_t seq, Pending& p) {
  ++p.attempts;
  p.last_sent = sim_.now();
  if (p.attempts > 1) p.retransmitted = true;
  stats_.bytes_sent += p.packet.size();
  ++stats_.packets_sent;
  if (cfg_.send_packet) cfg_.send_packet(p.packet);
  arm_timer(seq);
}

void MtuDiscoverySender::arm_timer(std::uint32_t seq) {
  const SimTime armed_at = sim_.now();
  const SimTime timeout =
      cfg_.rto.adaptive ? rto_.rto() : cfg_.retransmit_timeout;
  sim_.schedule_in(timeout, [this, seq, armed_at] {
    auto it = outstanding_.find(seq);
    if (it == outstanding_.end()) return;
    if (it->second.last_sent > armed_at) return;
    if (it->second.attempts > cfg_.max_retransmits) {
      ++stats_.gave_up;
      outstanding_.erase(it);
      return;
    }
    rto_.on_timeout();
    ++stats_.retransmissions;
    transmit(seq, it->second);
  });
}

void MtuDiscoverySender::on_packet(SimPacket pkt) {
  const std::uint32_t seq = parse_ack(pkt);
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;
  rto_.on_sample(sim_.now() - it->second.last_sent,
                 it->second.retransmitted);
  outstanding_.erase(it);
}

MtuDiscoveryReceiver::MtuDiscoveryReceiver(
    Simulator& sim, std::size_t app_buffer_bytes,
    std::function<void(std::vector<std::uint8_t>)> send_control)
    : sim_(sim),
      send_control_(std::move(send_control)),
      app_buffer_(app_buffer_bytes, 0) {}

void MtuDiscoveryReceiver::on_packet(SimPacket pkt) {
  if (pkt.bytes.size() < kMtuDiscHeaderBytes + kMtuDiscTrailerBytes) return;
  const std::span<const std::uint8_t> view(pkt.bytes);
  ByteReader r(view);
  const std::uint32_t seq = r.u32();
  const std::uint16_t dlen = r.u16();
  r.u8();  // flags
  if (pkt.bytes.size() !=
      kMtuDiscHeaderBytes + dlen + kMtuDiscTrailerBytes) {
    return;
  }
  const auto body = r.bytes(dlen);
  const std::uint32_t check = r.u32();
  if (check != crc32(view.subspan(0, kMtuDiscHeaderBytes + dlen))) {
    ++stats_.pdus_bad_check;
    return;
  }
  if (coverage_.covers(seq, static_cast<std::uint64_t>(seq) + dlen)) {
    ++stats_.duplicates;
    send_ack(send_control_, seq);
    return;
  }
  if (static_cast<std::size_t>(seq) + dlen <= app_buffer_.size()) {
    std::copy(body.begin(), body.end(), app_buffer_.begin() + seq);
    coverage_.add(seq, static_cast<std::uint64_t>(seq) + dlen);
    stats_.bus_bytes += dlen;
    const double latency = static_cast<double>(sim_.now() - pkt.created_at);
    for (std::uint32_t i = 0; i < dlen / 4u; ++i) {
      stats_.delivery_latency_ns.push_back(latency);
    }
  }
  ++stats_.pdus_ok;
  send_ack(send_control_, seq);
}

}  // namespace chunknet
