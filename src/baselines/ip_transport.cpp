#include "src/baselines/ip_transport.hpp"

#include <algorithm>

#include "src/common/bytes.hpp"
#include "src/edc/crc32.hpp"

namespace chunknet {

std::vector<std::uint8_t> encode_ip_fragment(
    std::uint32_t dgram_id, std::uint32_t offset, std::uint32_t stream_base,
    bool more_fragments, std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(kIpFragHeaderBytes + body.size());
  ByteWriter w(out);
  w.u8(kIpFragMagic);
  w.u8(more_fragments ? 0x01 : 0x00);
  w.u32(dgram_id);
  w.u32(offset);
  w.u32(stream_base);
  w.u16(static_cast<std::uint16_t>(body.size()));
  w.bytes(body);
  return out;
}

DecodedIpFragment decode_ip_fragment(std::span<const std::uint8_t> bytes) {
  DecodedIpFragment f;
  ByteReader r(bytes);
  const std::uint8_t magic = r.u8();
  const std::uint8_t flags = r.u8();
  f.dgram_id = r.u32();
  f.offset = r.u32();
  f.stream_base = r.u32();
  const std::uint16_t len = r.u16();
  if (!r.ok() || magic != kIpFragMagic || r.remaining() != len) return f;
  f.more_fragments = (flags & 0x01) != 0;
  f.body = r.bytes(len);
  f.ok = true;
  return f;
}

RelayFn ip_fragment_relay(RelayStats* stats) {
  return [stats](PacketBytes bytes, std::size_t egress_mtu) {
    if (stats != nullptr) ++stats->packets_in;
    std::vector<PacketBytes> out;
    if (bytes.size() <= egress_mtu) {
      out.push_back(std::move(bytes));
      if (stats != nullptr) ++stats->packets_out;
      return out;
    }
    const DecodedIpFragment f = decode_ip_fragment(bytes);
    if (!f.ok) {
      if (stats != nullptr) ++stats->parse_failures;
      return out;  // not refragmentable: drop
    }
    const std::size_t body_per = egress_mtu - kIpFragHeaderBytes;
    std::size_t off = 0;
    while (off < f.body.size()) {
      const std::size_t n = std::min(body_per, f.body.size() - off);
      const bool last_piece = off + n == f.body.size();
      const bool mf = f.more_fragments || !last_piece;
      out.push_back(encode_ip_fragment(
          f.dgram_id, f.offset + static_cast<std::uint32_t>(off),
          f.stream_base, mf, f.body.subspan(off, n)));
      off += n;
      if (stats != nullptr) {
        ++stats->packets_out;
        if (!last_piece) ++stats->splits;
      }
    }
    return out;
  };
}

// --------------------------------------------------------------- sender

IpFragTransportSender::IpFragTransportSender(Simulator& sim,
                                             IpSenderConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      rto_(cfg_.rto, cfg_.retransmit_timeout) {
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    MetricsRegistry& reg = *cfg_.obs->metrics;
    m_.datagrams_sent = &reg.counter("ip_sender.datagrams_sent");
    m_.retransmissions = &reg.counter("ip_sender.retransmissions");
    m_.gave_up = &reg.counter("ip_sender.gave_up");
    m_.packets_sent = &reg.counter("ip_sender.packets_sent");
    m_.bytes_sent = &reg.counter("ip_sender.bytes_sent");
  }
}

void IpFragTransportSender::send_stream(
    std::span<const std::uint8_t> stream) {
  started_ = true;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t n = std::min(cfg_.tpdu_bytes, stream.size() - pos);
    Pending p;
    p.stream_base = static_cast<std::uint32_t>(pos);
    p.datagram.assign(stream.begin() + static_cast<std::ptrdiff_t>(pos),
                      stream.begin() + static_cast<std::ptrdiff_t>(pos + n));
    // CRC-32 over the ordered datagram, appended as a trailer. This is
    // the crux of the baseline: the check value is order-DEPENDENT, so
    // it cannot be verified until physical reassembly completes.
    const std::uint32_t crc = crc32(p.datagram);
    ByteWriter w(p.datagram);
    w.u32(crc);

    const std::uint32_t id = next_id_++;
    auto [it, inserted] = outstanding_.emplace(id, std::move(p));
    ++stats_.datagrams_sent;
    obs_add(m_.datagrams_sent);
    transmit(id, it->second);
    pos += n;
  }
}

void IpFragTransportSender::transmit(std::uint32_t id, Pending& p) {
  ++p.attempts;
  p.last_sent = sim_.now();
  if (p.attempts > 1) p.retransmitted = true;
  const std::size_t body_per = cfg_.mtu - kIpFragHeaderBytes;
  std::size_t off = 0;
  while (off < p.datagram.size()) {
    const std::size_t n = std::min(body_per, p.datagram.size() - off);
    const bool mf = off + n < p.datagram.size();
    auto pkt = encode_ip_fragment(
        id, static_cast<std::uint32_t>(off), p.stream_base, mf,
        std::span<const std::uint8_t>(p.datagram).subspan(off, n));
    stats_.bytes_sent += pkt.size();
    ++stats_.packets_sent;
    obs_add(m_.packets_sent);
    obs_add(m_.bytes_sent, pkt.size());
    if (cfg_.send_packet) cfg_.send_packet(std::move(pkt));
    off += n;
  }
  arm_timer(id);
}

void IpFragTransportSender::arm_timer(std::uint32_t id) {
  const SimTime armed_at = sim_.now();
  const SimTime timeout =
      cfg_.rto.adaptive ? rto_.rto() : cfg_.retransmit_timeout;
  sim_.schedule_in(timeout, [this, id, armed_at] {
    auto it = outstanding_.find(id);
    if (it == outstanding_.end()) return;
    if (it->second.last_sent > armed_at) return;
    if (it->second.attempts > cfg_.max_retransmits) {
      ++stats_.gave_up;
      obs_add(m_.gave_up);
      outstanding_.erase(it);
      return;
    }
    rto_.on_timeout();
    ++stats_.retransmissions;
    obs_add(m_.retransmissions);
    transmit(id, it->second);
  });
}

void IpFragTransportSender::on_packet(SimPacket pkt) {
  if (pkt.bytes.size() != 5) return;
  const std::uint8_t kind = pkt.bytes[0];
  ByteReader r(pkt.bytes);
  r.u8();
  const std::uint32_t id = r.u32();
  auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  if (kind == 'A') {
    rto_.on_sample(sim_.now() - it->second.last_sent,
                   it->second.retransmitted);
    ++stats_.datagrams_acked;
    outstanding_.erase(it);
  } else if (kind == 'N') {
    if (it->second.attempts > cfg_.max_retransmits) {
      ++stats_.gave_up;
      obs_add(m_.gave_up);
      outstanding_.erase(it);
      return;
    }
    ++stats_.retransmissions;
    obs_add(m_.retransmissions);
    transmit(id, it->second);
  }
}

// ------------------------------------------------------------- receiver

IpFragTransportReceiver::IpFragTransportReceiver(Simulator& sim,
                                                 IpReceiverConfig cfg)
    : sim_(sim),
      cfg_(std::move(cfg)),
      pool_(cfg_.reassembly_pool_bytes),
      app_buffer_(cfg_.app_buffer_bytes, 0) {
  if (cfg_.obs != nullptr && cfg_.obs->metrics != nullptr) {
    MetricsRegistry& reg = *cfg_.obs->metrics;
    m_.fragments = &reg.counter("ip_receiver.fragments");
    m_.malformed = &reg.counter("ip_receiver.malformed");
    m_.datagrams_ok = &reg.counter("ip_receiver.datagrams_ok");
    m_.datagrams_bad_crc = &reg.counter("ip_receiver.datagrams_bad_crc");
    m_.bus_bytes = &reg.counter("ip_receiver.bus_bytes");
    m_.bytes_delivered = &reg.counter("ip_receiver.bytes_delivered");
    m_.pool_lockups = &reg.gauge("ip_receiver.pool_lockups");
    m_.pool_frags_dropped = &reg.gauge("ip_receiver.pool_frags_dropped");
    m_.delivery_latency = &reg.histogram("ip_receiver.delivery_latency_ns");
  }
}

void IpFragTransportReceiver::on_packet(SimPacket pkt) {
  ++stats_.fragments;
  obs_add(m_.fragments);
  const DecodedIpFragment f = decode_ip_fragment(pkt.bytes);
  if (!f.ok) {
    ++stats_.malformed;
    obs_add(m_.malformed);
    return;
  }
  stream_base_.emplace(f.dgram_id, f.stream_base);
  auto [fit, _] = first_fragment_at_.emplace(f.dgram_id, pkt.created_at);
  fit->second = std::min(fit->second, pkt.created_at);

  IpFragment frag;
  frag.datagram_id = f.dgram_id;
  frag.offset = f.offset;
  frag.data.assign(f.body.begin(), f.body.end());
  frag.more_fragments = f.more_fragments;

  const IpReassemblyOutcome outcome = pool_.offer(frag);
  // Every buffered byte crosses the bus into the pool.
  if (outcome == IpReassemblyOutcome::kStored ||
      outcome == IpReassemblyOutcome::kCompleted) {
    stats_.bus_bytes += frag.data.size();
    obs_add(m_.bus_bytes, frag.data.size());
  }
  if (outcome != IpReassemblyOutcome::kCompleted) {
    if (pool_.stats().lockup_events > stats_.pool_lockups) {
      stats_.pool_lockups = pool_.stats().lockup_events;
    }
    obs_set(m_.pool_lockups,
            static_cast<std::int64_t>(pool_.stats().lockup_events));
    obs_set(m_.pool_frags_dropped,
            static_cast<std::int64_t>(
                pool_.stats().fragments_dropped_no_space));
    return;
  }

  auto datagram = pool_.take_completed(f.dgram_id);
  if (!datagram) return;
  // Datagram = payload + 4-byte CRC trailer.
  if (datagram->size() < 4) {
    ++stats_.datagrams_bad_crc;
    obs_add(m_.datagrams_bad_crc);
    return;
  }
  const std::size_t payload_len = datagram->size() - 4;
  const std::span<const std::uint8_t> whole(*datagram);
  ByteReader tr(whole.subspan(payload_len));
  const std::uint32_t expect = tr.u32();
  const std::uint32_t actual = crc32(whole.subspan(0, payload_len));

  const std::uint32_t base = stream_base_[f.dgram_id];
  if (actual != expect) {
    ++stats_.datagrams_bad_crc;
    obs_add(m_.datagrams_bad_crc);
    if (cfg_.send_control) {
      std::vector<std::uint8_t> nak;
      ByteWriter w(nak);
      w.u8('N');
      w.u32(f.dgram_id);
      cfg_.send_control(std::move(nak));
    }
    return;
  }

  // Placement: the second bus crossing for every byte.
  if (base + payload_len <= app_buffer_.size()) {
    std::copy(datagram->begin(),
              datagram->begin() + static_cast<std::ptrdiff_t>(payload_len),
              app_buffer_.begin() + base);
    stats_.bus_bytes += payload_len;
    bytes_delivered_ += payload_len;
    obs_add(m_.bus_bytes, payload_len);
    obs_add(m_.bytes_delivered, payload_len);
  }
  ++stats_.datagrams_ok;
  obs_add(m_.datagrams_ok);
  const double latency =
      static_cast<double>(sim_.now() - first_fragment_at_[f.dgram_id]);
  // One latency sample per 4-byte element, comparable with the chunk
  // receiver's per-element samples.
  obs_observe(m_.delivery_latency, latency, payload_len / 4);
  for (std::size_t i = 0; i < payload_len / 4; ++i) {
    stats_.delivery_latency_ns.push_back(latency);
  }
  if (cfg_.send_control) {
    std::vector<std::uint8_t> ack;
    ByteWriter w(ack);
    w.u8('A');
    w.u32(f.dgram_id);
    cfg_.send_control(std::move(ack));
  }
}

}  // namespace chunknet
