// Conventional IP-fragmentation transport — the end-to-end baseline
// chunks are compared against (paper §3.2, §3.3).
//
// The sender cuts the stream into TPDU-sized datagrams, protects each
// with a CRC-32 trailer (computed over the ordered datagram — CRC
// *requires* order), and fragments datagrams to the first-hop MTU.
// Routers may fragment further (inter-network fragmentation) but never
// combine ("IP fragmentation never combines fragments in the network").
// The receiver must buffer fragments in a physical reassembly pool;
// only when a datagram completes can the CRC be verified and the data
// placed — so every byte crosses the bus twice, delivery latency is
// gated on the slowest fragment, and the pool can lock up (§3.3).
//
// Wire format of one fragment (all big-endian):
//   magic 'I' (1) | flags (1: bit0 MF) | dgram id (4) | offset (4) |
//   stream base of dgram (4) | payload len (2) | payload
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "src/netsim/router.hpp"
#include "src/netsim/simulator.hpp"
#include "src/reassembly/ip_reassembly.hpp"
#include "src/transport/rto.hpp"

namespace chunknet {

inline constexpr std::uint8_t kIpFragMagic = 'I';
inline constexpr std::size_t kIpFragHeaderBytes = 16;

/// One serialized fragment.
std::vector<std::uint8_t> encode_ip_fragment(std::uint32_t dgram_id,
                                             std::uint32_t offset,
                                             std::uint32_t stream_base,
                                             bool more_fragments,
                                             std::span<const std::uint8_t> body);

struct DecodedIpFragment {
  bool ok{false};
  std::uint32_t dgram_id{0};
  std::uint32_t offset{0};
  std::uint32_t stream_base{0};
  bool more_fragments{true};
  std::span<const std::uint8_t> body;
};

DecodedIpFragment decode_ip_fragment(std::span<const std::uint8_t> bytes);

/// Router relay: re-fragments fragments that exceed the egress MTU.
/// Never merges (per IP semantics).
RelayFn ip_fragment_relay(RelayStats* stats = nullptr);

struct IpSenderConfig {
  std::size_t tpdu_bytes{8192};  ///< datagram size (CRC-protected unit)
  std::size_t mtu{1500};
  SimTime retransmit_timeout{50 * kMillisecond};
  int max_retransmits{8};
  /// Adaptive RTO (Jacobson/Karn); `retransmit_timeout` seeds it.
  RtoConfig rto{};
  std::function<void(std::vector<std::uint8_t>)> send_packet;
  /// Observability (optional). Metric names prefixed "ip_sender.".
  ObsContext* obs{nullptr};
};

/// Sender: datagram = payload + CRC-32 trailer, fragmented to MTU.
/// Retransmission is whole-datagram ("if a single fragment is lost,
/// then an entire TPDU is retransmitted" — [KENT 87] via §3).
class IpFragTransportSender final : public PacketSink {
 public:
  IpFragTransportSender(Simulator& sim, IpSenderConfig cfg);

  void send_stream(std::span<const std::uint8_t> stream);

  /// Feedback: 5-byte ACK/NAK bodies ('A'|'N' + dgram id).
  void on_packet(SimPacket pkt) override;

  /// Every datagram was positively acknowledged (giving up is failure,
  /// not success — see finished()/failed()).
  bool all_acked() const { return finished() && !failed(); }
  bool finished() const { return outstanding_.empty() && started_; }
  bool failed() const { return stats_.gave_up > 0; }

  const RtoEstimator& rto() const { return rto_; }

  struct Stats {
    std::uint64_t datagrams_sent{0};
    std::uint64_t datagrams_acked{0};
    std::uint64_t retransmissions{0};
    std::uint64_t gave_up{0};
    std::uint64_t packets_sent{0};
    std::uint64_t bytes_sent{0};
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    std::vector<std::uint8_t> datagram;  ///< payload + CRC trailer
    std::uint32_t stream_base{0};
    int attempts{0};
    SimTime last_sent{0};
    bool retransmitted{false};  ///< Karn: ACK RTT sample is ambiguous
  };
  void transmit(std::uint32_t id, Pending& p);
  void arm_timer(std::uint32_t id);

  struct ObsHandles {
    Counter* datagrams_sent{nullptr};
    Counter* retransmissions{nullptr};
    Counter* gave_up{nullptr};
    Counter* packets_sent{nullptr};
    Counter* bytes_sent{nullptr};
  };

  Simulator& sim_;
  IpSenderConfig cfg_;
  RtoEstimator rto_;
  ObsHandles m_;
  std::map<std::uint32_t, Pending> outstanding_;
  std::uint32_t next_id_{1};
  bool started_{false};
  Stats stats_;
};

struct IpReceiverConfig {
  std::size_t app_buffer_bytes{1 << 20};
  std::size_t reassembly_pool_bytes{1 << 18};
  /// Sends an ACK/NAK body back toward the sender.
  std::function<void(std::vector<std::uint8_t>)> send_control;
  /// Observability (optional). Metric names prefixed "ip_receiver.".
  ObsContext* obs{nullptr};
};

/// Receiver: physical reassembly, then CRC verification, then placement.
class IpFragTransportReceiver final : public PacketSink {
 public:
  IpFragTransportReceiver(Simulator& sim, IpReceiverConfig cfg);

  void on_packet(SimPacket pkt) override;

  std::span<const std::uint8_t> app_data() const { return app_buffer_; }
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }

  struct Stats {
    std::uint64_t fragments{0};
    std::uint64_t malformed{0};
    std::uint64_t datagrams_ok{0};
    std::uint64_t datagrams_bad_crc{0};
    std::uint64_t bus_bytes{0};
    std::uint64_t pool_lockups{0};
    std::vector<double> delivery_latency_ns;
  };
  const Stats& stats() const { return stats_; }
  const IpReassemblyBuffer& pool() const { return pool_; }

 private:
  struct ObsHandles {
    Counter* fragments{nullptr};
    Counter* malformed{nullptr};
    Counter* datagrams_ok{nullptr};
    Counter* datagrams_bad_crc{nullptr};
    Counter* bus_bytes{nullptr};
    Counter* bytes_delivered{nullptr};
    Gauge* pool_lockups{nullptr};
    Gauge* pool_frags_dropped{nullptr};
    Histogram* delivery_latency{nullptr};
  };

  Simulator& sim_;
  IpReceiverConfig cfg_;
  ObsHandles m_;
  IpReassemblyBuffer pool_;
  std::map<std::uint32_t, std::uint32_t> stream_base_;  ///< dgram → base
  std::map<std::uint32_t, SimTime> first_fragment_at_;
  std::vector<std::uint8_t> app_buffer_;
  std::uint64_t bytes_delivered_{0};
  Stats stats_;
};

}  // namespace chunknet
